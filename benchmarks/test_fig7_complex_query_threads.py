"""Figure 7: complex (10-attribute) query rate vs threads (single host).

Paper: direct rates fall ~10× from the 100 k database to the 1 M / 5 M
databases; through the web service the drop is >50% for larger sizes.
The mechanism is the cost of matching all ten user-defined attributes —
candidate sets grow with database size.
"""

from repro.bench import print_series, sweep_figure7


def test_figure7_complex_query_rate_vs_threads(benchmark, config):
    rows = benchmark.pedantic(
        lambda: sweep_figure7(config), rounds=1, iterations=1
    )
    print_series(
        "Figure 7: Complex Query Rate with Varying Threads (Single Client Host)",
        "threads",
        rows,
    )
    assert all(r["rate"] > 0 for r in rows)

    # Core shape: complex-query throughput degrades with database size.
    by_size = {}
    for row in rows:
        if row["mode"] == "direct":
            by_size.setdefault(row["db_size"], []).append(row["rate"])
    sizes = sorted(by_size)
    small_peak = max(by_size[sizes[0]])
    large_peak = max(by_size[sizes[-1]])
    print(f"direct complex-query degradation small->large: "
          f"{small_peak / large_peak:.1f}x (paper: ~10x)")
    assert large_peak < small_peak, (
        "complex queries must slow down as the database grows"
    )
