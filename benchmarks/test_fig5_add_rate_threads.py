"""Figure 5: add rate vs number of threads on a single client host.

Paper series: three database sizes, with and without the web service.
Expected shape: direct adds roughly flat in DB size (mild decline at the
largest size); web-service adds several times lower and flat in DB size.
"""

from repro.bench import print_series, sweep_figure5
from repro.bench.report import shape_checks


def test_figure5_add_rate_vs_threads(benchmark, config):
    rows = benchmark.pedantic(
        lambda: sweep_figure5(config), rounds=1, iterations=1
    )
    print_series(
        "Figure 5: Add Rate on MCS with Varying Threads (Single Client Host)",
        "threads",
        rows,
    )
    checks = shape_checks(rows)
    print(f"direct/soap peak-rate ratio: {checks.get('direct_over_soap_peak', 0):.1f}x "
          "(paper: ~4.8x)")
    assert rows, "sweep produced no data"
    assert all(r["rate"] > 0 for r in rows)
    # Core claim of the figure: the web-service stack is the bottleneck.
    assert checks.get("direct_over_soap_peak", 0) > 1.5
