"""Extension bench: read replicas isolate queries from write-lock stalls.

The §9 motivation for replicating the MCS is "performance and
reliability".  The sharpest single-machine demonstration is lock
isolation: a long-running write transaction on the primary holds the
logical_file table's write lock, stalling every primary reader until it
commits; a read replica only applies *committed* batches, so its readers
never see the lock at all.
"""

import threading
import time

from repro.bench.timing import count_until_stopped, run_workers
from repro.core.replicated import ReplicatedMCS
from repro.workloads import PopulationSpec, QueryWorkload, populate_catalog


def test_ablation_replica_reads_during_long_write_txn(benchmark, config):
    size = config.db_sizes[0]
    spec = PopulationSpec(
        total_files=size,
        files_per_collection=config.files_per_collection,
        value_cardinality=config.value_cardinality,
    )
    cluster = ReplicatedMCS(replicas=1, synchronous=False)
    try:
        populate_catalog(cluster.catalog, spec)
        cluster.flush()

        def run_reads(client) -> float:
            workload = QueryWorkload(spec, seed=3)

            def op(_):
                field, value = workload.simple_query_args()
                client.simple_query(field, value)

            worker_fns = [
                (lambda stop, op=op: count_until_stopped(op, stop))
                for _ in range(2)
            ]
            return run_workers(worker_fns, config.duration).rate

        def sweep():
            rates = {}
            # A transaction that inserts a row and then holds its write
            # locks (strict 2PL) for the whole measurement window.
            txn_conn = cluster.primary_db.connect()
            hold = threading.Event()

            def long_txn():
                txn_conn.execute("BEGIN")
                txn_conn.execute(
                    "INSERT INTO logical_file (name, version) VALUES ('txn-held', 1)"
                )
                hold.wait(config.duration * 3 + 2)
                txn_conn.execute("ROLLBACK")

            txn_thread = threading.Thread(target=long_txn, daemon=True)
            txn_thread.start()
            time.sleep(0.05)  # let the txn take its locks
            try:
                rates["replica_reads"] = run_reads(cluster.read_client(caller="r"))
                primary_client = cluster.write_client(caller="r")
                # Primary readers block on the held write lock; use a short
                # window and count whatever trickles through.
                rates["primary_reads"] = run_reads(primary_client)
            finally:
                hold.set()
                txn_thread.join(10)
            return rates

        rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print("\n== Extension: reads during a long write transaction ==")
        print(f"  primary (blocked by write lock): {rates['primary_reads']:10.1f} q/s")
        print(f"  replica (isolated):              {rates['replica_reads']:10.1f} q/s")
        assert rates["replica_reads"] > 0
        # The §9 claim: replicas keep serving reads; the primary stalls.
        assert rates["replica_reads"] > rates["primary_reads"] * 5
    finally:
        cluster.close()
