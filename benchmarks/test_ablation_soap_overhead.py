"""Ablation: decompose the web-service penalty.

The paper attributes the MCS slowdown to "web service overhead" as one
lump.  Our transport stack lets us split it:

* direct          — no protocol work at all;
* loopback codec  — full SOAP XML encode/decode, no socket;
* soap (HTTP)     — codec plus a real TCP round trip and HTTP framing.

codec/direct shows the serialization share; soap/codec the socket share.
"""

from repro.bench.driver import BenchEnvironment, run_closed_loop
from repro.bench.sweeps import get_environment
from repro.core.client import MCSClient
from repro.soap.transport import LoopbackCodecTransport


def _run_codec_mode(env: BenchEnvironment, op_name: str, threads: int, duration: float):
    from repro.bench.timing import count_until_stopped, run_workers

    clients = [
        MCSClient(LoopbackCodecTransport(env.service.handle), caller="bench")
        for _ in range(threads)
    ]
    factory = getattr(env, op_name)
    worker_fns = []
    for idx, client in enumerate(clients):
        op = factory(client, f"codec{idx}")
        worker_fns.append(lambda stop, op=op: count_until_stopped(op, stop))
    return run_workers(worker_fns, duration)


def _run_raw_http(env: BenchEnvironment, op_name: str, threads: int, duration: float):
    """HTTP without the simulated WAN latency: the true socket cost."""
    from repro.bench.timing import count_until_stopped, run_workers
    from repro.soap.transport import HttpTransport

    host, port = env.server.endpoint
    clients = [
        MCSClient(HttpTransport(host, port, simulated_latency_s=0.0), caller="bench")
        for _ in range(threads)
    ]
    factory = getattr(env, op_name)
    worker_fns = []
    for idx, client in enumerate(clients):
        op = factory(client, f"raw{idx}")
        worker_fns.append(lambda stop, op=op: count_until_stopped(op, stop))
    try:
        return run_workers(worker_fns, duration)
    finally:
        for client in clients:
            client.close()


def test_ablation_soap_overhead_decomposition(benchmark, config):
    env = get_environment(config, config.db_sizes[0])
    threads, duration = 4, config.duration

    def sweep():
        rates = {}
        rates["direct"] = run_closed_loop(
            env, "direct", env.simple_query_op, threads, duration
        ).rate
        rates["codec"] = _run_codec_mode(env, "simple_query_op", threads, duration).rate
        rates["soap"] = _run_raw_http(env, "simple_query_op", threads, duration).rate
        return rates

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n== Ablation: web-service overhead decomposition (simple queries) ==")
    for mode in ("direct", "codec", "soap"):
        print(f"  {mode:>6}: {rates[mode]:10.1f} q/s")
    codec_share = rates["direct"] / rates["codec"] if rates["codec"] else 0
    socket_share = rates["codec"] / rates["soap"] if rates["soap"] else 0
    print(f"  codec penalty:  {codec_share:.2f}x   socket penalty: {socket_share:.2f}x")
    assert rates["direct"] > rates["codec"] > 0
    assert rates["codec"] > rates["soap"] > 0
