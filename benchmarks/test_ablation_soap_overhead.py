"""Ablation: decompose the web-service penalty.

The paper attributes the MCS slowdown to "web service overhead" as one
lump.  Our transport stack lets us split it:

* direct          — no protocol work at all;
* loopback codec  — full SOAP XML encode/decode, no socket;
* soap (HTTP)     — codec plus a real TCP round trip and HTTP framing.

codec/direct shows the serialization share; soap/codec the socket share.

The decomposition is cross-checked against the observability layer: the
``mcs_soap_codec_seconds`` histograms time every envelope encode/decode
(identically on the loopback and server paths), and
``mcs_soap_request_seconds`` times server-side processing — so the
codec share measured by instrumentation must agree with the share the
rate deltas imply, and server-side processing must fit strictly inside
the measured round trip.
"""

from repro.bench.driver import BenchEnvironment, run_closed_loop
from repro.bench.report import obs_breakdown
from repro.bench.sweeps import get_environment
from repro.core.client import MCSClient
from repro.obs.metrics import get_registry
from repro.soap.transport import LoopbackCodecTransport

_CODEC_OPS = (
    "encode_request",
    "decode_request",
    "encode_response",
    "decode_response",
)


def _run_codec_mode(env: BenchEnvironment, op_name: str, threads: int, duration: float):
    from repro.bench.timing import count_until_stopped, run_workers

    clients = [
        MCSClient(LoopbackCodecTransport(env.service.handle), caller="bench")
        for _ in range(threads)
    ]
    factory = getattr(env, op_name)
    worker_fns = []
    for idx, client in enumerate(clients):
        op = factory(client, f"codec{idx}")
        worker_fns.append(lambda stop, op=op: count_until_stopped(op, stop))
    return run_workers(worker_fns, duration)


def _run_raw_http(env: BenchEnvironment, op_name: str, threads: int, duration: float):
    """HTTP without the simulated WAN latency: the true socket cost."""
    from repro.bench.timing import count_until_stopped, run_workers
    from repro.soap.transport import HttpTransport

    host, port = env.server.endpoint
    clients = [
        MCSClient(HttpTransport(host, port, simulated_latency_s=0.0), caller="bench")
        for _ in range(threads)
    ]
    factory = getattr(env, op_name)
    worker_fns = []
    for idx, client in enumerate(clients):
        op = factory(client, f"raw{idx}")
        worker_fns.append(lambda stop, op=op: count_until_stopped(op, stop))
    try:
        return run_workers(worker_fns, duration)
    finally:
        for client in clients:
            client.close()


def _mean(snapshot: dict, family: str, **labels) -> float:
    """Mean of one histogram series from a registry snapshot (0 if empty)."""
    for entry in snapshot.get(family, {}).get("series", ()):
        if entry["labels"] == labels and entry["count"]:
            return entry["sum"] / entry["count"]
    return 0.0


def test_ablation_soap_overhead_decomposition(benchmark, config):
    env = get_environment(config, config.db_sizes[0])
    # Single-threaded on purpose: the obs cross-check compares wall-time
    # deltas with instrumented timings, and GIL interleaving across
    # workers would inflate the former but not the latter.
    threads, duration = 1, config.duration
    registry = get_registry()

    def sweep():
        registry.reset()
        rates = {}
        rates["direct"] = run_closed_loop(
            env, "direct", env.simple_query_op, threads, duration
        ).rate
        rates["codec"] = _run_codec_mode(env, "simple_query_op", threads, duration).rate
        rates["soap"] = _run_raw_http(env, "simple_query_op", threads, duration).rate
        return rates

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    snapshot = registry.snapshot()
    breakdown = obs_breakdown(snapshot)
    benchmark.extra_info["obs_breakdown"] = breakdown

    print("\n== Ablation: web-service overhead decomposition (simple queries) ==")
    for mode in ("direct", "codec", "soap"):
        print(f"  {mode:>6}: {rates[mode]:10.1f} q/s")
    codec_share = rates["direct"] / rates["codec"] if rates["codec"] else 0
    socket_share = rates["codec"] / rates["soap"] if rates["soap"] else 0
    print(f"  codec penalty:  {codec_share:.2f}x   socket penalty: {socket_share:.2f}x")
    assert rates["direct"] > rates["codec"] > 0
    assert rates["codec"] > rates["soap"] > 0

    # -- obs cross-check: serialization share ------------------------------
    # The rate delta between loopback-codec and direct is, per call, the
    # cost of four envelope codec passes.  The codec histograms time those
    # passes directly; both measurements must agree.
    per_op_direct = 1.0 / rates["direct"]
    per_op_codec = 1.0 / rates["codec"]
    per_op_soap = 1.0 / rates["soap"]
    delta_codec = per_op_codec - per_op_direct
    obs_codec_per_call = sum(
        _mean(snapshot, "mcs_soap_codec_seconds", op=op) for op in _CODEC_OPS
    )
    print(
        f"  codec per call: obs {obs_codec_per_call * 1e6:8.1f}us"
        f"   rate-delta {delta_codec * 1e6:8.1f}us"
    )
    assert obs_codec_per_call > 0, "codec histograms never fired"
    ratio = obs_codec_per_call / delta_codec
    assert 0.3 <= ratio <= 1.3, (
        f"obs-measured codec time ({obs_codec_per_call * 1e6:.1f}us/call) "
        f"disagrees with the codec-vs-direct rate delta "
        f"({delta_codec * 1e6:.1f}us/call) by {ratio:.2f}x"
    )

    # -- obs cross-check: socket share -------------------------------------
    # Server-side processing (decode + dispatch + encode, timed by
    # mcs_soap_request_seconds) is a strict subset of the full round
    # trip; what it leaves unexplained is HTTP framing + TCP — which must
    # be a real, positive share and must contain at least the server's
    # own decode/encode passes.
    server_mean = _mean(snapshot, "mcs_soap_request_seconds", operation="query")
    print(
        f"  soap per call:  {per_op_soap * 1e6:8.1f}us"
        f"   server-side obs {server_mean * 1e6:8.1f}us"
    )
    assert server_mean > 0, "server request histogram never fired"
    assert server_mean < per_op_soap, (
        "server-side processing cannot exceed the measured round trip"
    )
    server_codec = (
        _mean(snapshot, "mcs_soap_codec_seconds", op="decode_request")
        + _mean(snapshot, "mcs_soap_codec_seconds", op="encode_response")
    )
    assert server_mean > server_codec, (
        "server-side request time must contain its codec passes"
    )
