"""Ablation: relational backend vs native XML backend (§9 redesign).

The paper's authors were "studying whether a native XML database would
provide better functionality than a relational database backend; however,
the performance of open source XML databases is not currently sufficient
to support the query rates required by ESG applications."  This bench
loads the same §7 workload into both backends and compares rates,
reproducing that conclusion.
"""

from repro.bench.sweeps import get_environment
from repro.bench.timing import count_until_stopped, run_workers
from repro.core.xmlbackend import XmlMetadataBackend
from repro.workloads import PopulationSpec, QueryWorkload, attribute_values_for


def _measure(op, threads: int, duration: float) -> float:
    worker_fns = [
        (lambda stop, op=op: count_until_stopped(op, stop)) for _ in range(threads)
    ]
    return run_workers(worker_fns, duration).rate


def test_ablation_relational_vs_xml_backend(benchmark, config):
    size = config.db_sizes[0]
    spec = PopulationSpec(
        total_files=size,
        files_per_collection=config.files_per_collection,
        value_cardinality=config.value_cardinality,
    )
    env = get_environment(config, size)

    xml = XmlMetadataBackend()
    for index in range(spec.total_files):
        xml.create_file(
            spec.file_name(index),
            data_type="binary",
            attributes=attribute_values_for(index, spec),
        )

    def sweep():
        rates = {}
        client = env.make_client("direct")

        rel_wl = QueryWorkload(spec, seed=5)

        def rel_simple(_):
            field, value = rel_wl.simple_query_args()
            client.simple_query(field, value)

        def rel_complex(_):
            client.query_files_by_attributes(rel_wl.complex_query_conditions(10))

        xml_wl = QueryWorkload(spec, seed=5)

        def xml_simple(_):
            _, value = xml_wl.simple_query_args()
            xml.simple_query(value)

        def xml_complex(_):
            xml.query_files_by_attributes(xml_wl.complex_query_conditions(10))

        rates["relational_simple"] = _measure(rel_simple, 2, config.duration)
        rates["xml_simple"] = _measure(xml_simple, 2, config.duration)
        rates["relational_complex"] = _measure(rel_complex, 2, config.duration)
        rates["xml_complex"] = _measure(xml_complex, 2, config.duration)
        return rates

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n== Ablation: relational vs native-XML metadata backend ==")
    print(f"  simple queries:  relational {rates['relational_simple']:10.1f} q/s   "
          f"xml {rates['xml_simple']:10.1f} q/s")
    print(f"  complex queries: relational {rates['relational_complex']:10.1f} q/s   "
          f"xml {rates['xml_complex']:10.1f} q/s")
    ratio = (
        rates["relational_complex"] / rates["xml_complex"]
        if rates["xml_complex"]
        else float("inf")
    )
    print(f"  relational advantage on complex queries: {ratio:.1f}x "
          "(the paper's §9 finding: XML backends too slow)")
    assert all(rate > 0 for rate in rates.values())
    # The paper's conclusion: the XML backend cannot sustain the
    # relational backend's complex-query rate.
    assert rates["relational_complex"] > rates["xml_complex"]
