"""Figure 9: simple query rate vs number of client hosts.

Paper: direct rate rises strongly with hosts (≈2000 → ≈6800 q/s at 6
hosts); the web-service rate rises from ~40 to ~280 q/s at 10 hosts;
database size does not affect simple queries.
"""

from repro.bench import print_series, sweep_figure9


def test_figure9_simple_query_rate_vs_hosts(benchmark, config):
    rows = benchmark.pedantic(
        lambda: sweep_figure9(config), rounds=1, iterations=1
    )
    print_series(
        "Figure 9: Simple Query Rate with Varying Number of Client Hosts",
        "hosts",
        rows,
    )
    assert all(r["rate"] > 0 for r in rows)

    # Shape: soap rate grows with hosts before any plateau.
    soap = [r for r in rows if r["mode"] == "soap"]
    for size in {r["db_size"] for r in soap}:
        series = sorted((r["x"], r["rate"]) for r in soap if r["db_size"] == size)
        assert max(rate for _, rate in series) >= series[0][1], (
            "aggregate simple-query rate should not fall below the "
            "single-host rate"
        )
