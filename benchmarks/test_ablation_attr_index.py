"""Ablation: value of the (attr_id, value) indexes for complex queries.

DESIGN.md calls out the EAV access-path choice; this bench measures the
complex-query rate with the attribute-value indexes present vs dropped
(forcing scans), on the smallest database.
"""

from repro.bench.driver import BenchEnvironment, run_closed_loop
from repro.workloads import PopulationSpec

_VALUE_INDEXES = ("av_string", "av_int", "av_float", "av_date", "av_time",
                  "av_datetime", "av_object")


def test_ablation_attribute_value_indexes(benchmark, config):
    # Private environment (middle DB size — the index advantage grows
    # with database size): we mutate its physical schema.
    env = BenchEnvironment(
        PopulationSpec(
            total_files=config.db_sizes[1],
            files_per_collection=config.files_per_collection,
            value_cardinality=config.value_cardinality,
        )
    )
    try:
        def sweep():
            rates = {}
            rates["indexed"] = run_closed_loop(
                env, "direct", env.complex_query_op, threads=2,
                duration=config.duration,
            ).rate
            conn = env.catalog.db.connect()
            for name in _VALUE_INDEXES:
                conn.execute(f"DROP INDEX IF EXISTS {name} ON attribute_value")
            rates["unindexed"] = run_closed_loop(
                env, "direct", env.complex_query_op, threads=2,
                duration=config.duration,
            ).rate
            return rates

        rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print("\n== Ablation: attribute-value indexes (complex queries) ==")
        print(f"  indexed:   {rates['indexed']:10.1f} q/s")
        print(f"  unindexed: {rates['unindexed']:10.1f} q/s")
        speedup = rates["indexed"] / rates["unindexed"] if rates["unindexed"] else 0
        print(f"  index speedup: {speedup:.1f}x")
        assert rates["indexed"] > rates["unindexed"] > 0
    finally:
        env.close()
