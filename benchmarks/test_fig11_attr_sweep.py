"""Figure 11: complex query rate (direct) vs number of attributes.

Paper: as the number of matched attributes rises from 1 to 10, the MySQL
rate drops by ~3× for the 100 k database and ~4× for the larger ones.
"""

from repro.bench import print_series, sweep_figure11


def test_figure11_complex_query_vs_attribute_count(benchmark, config):
    rows = benchmark.pedantic(
        lambda: sweep_figure11(config), rounds=1, iterations=1
    )
    print_series(
        "Figure 11: Complex Query Rate as the Number of Attributes Varies "
        "(no web service)",
        "attributes",
        rows,
    )
    assert all(r["rate"] > 0 for r in rows)

    for size in sorted({r["db_size"] for r in rows}):
        series = sorted(
            (r["x"], r["rate"]) for r in rows if r["db_size"] == size
        )
        one_attr = series[0][1]
        ten_attr = series[-1][1]
        print(f"db={size}: 1-attr {one_attr:.0f}/s -> 10-attr {ten_attr:.0f}/s "
              f"({one_attr / ten_attr:.1f}x drop; paper: 3-4x)")
        assert ten_attr < one_attr, (
            f"db={size}: rate must fall as attribute count rises"
        )
