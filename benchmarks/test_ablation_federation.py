"""Extension bench: federated catalogs — index routing and scatter cost.

Two workloads against the §9 federated design, with the same data loaded
into one monolithic catalog for comparison:

* **site-scoped queries** — conditions whose values exist in exactly one
  local catalog (each site hosts a different science run).  The index
  node routes the query to 1 of N catalogs: no scatter cost, and each
  catalog is N× smaller than the monolith.
* **global queries** — conditions matching data at every site.  The
  federation pays N subqueries; this is the scatter overhead the paper's
  design accepts for administrative scalability.
"""

from repro.bench.timing import count_until_stopped, run_workers
from repro.core import MetadataCatalog
from repro.federation import FederatedMCS, LocalMCS, MCSIndexNode
from repro.ligo import generate_products
from repro.ligo.ontology import LIGO_ATTRIBUTES

N_SITES = 4
FILES_PER_SITE = 400


def _register(catalog: MetadataCatalog) -> None:
    from repro.core.errors import DuplicateObjectError

    for name, (value_type, description) in LIGO_ATTRIBUTES.items():
        try:
            catalog.define_attribute(name, value_type, description=description)
        except DuplicateObjectError:
            pass


def _measure(op, duration: float) -> float:
    worker_fns = [
        (lambda stop, op=op: count_until_stopped(op, stop)) for _ in range(2)
    ]
    return run_workers(worker_fns, duration).rate


def test_ablation_federated_routing(benchmark, config):
    runs = [f"S{n + 1}" for n in range(N_SITES)]

    mono = MetadataCatalog()
    _register(mono)
    members = {}
    for n, run in enumerate(runs):
        member = LocalMCS(f"site-{n}")
        _register(member.catalog)
        for product in generate_products(FILES_PER_SITE, seed=n, run=run):
            name = f"{run}.{product.logical_name}"
            mono.create_file(name, data_type="gwf", attributes=product.attributes)
            member.catalog.create_file(
                name, data_type="gwf", attributes=product.attributes
            )
        members[f"site-{n}"] = member
    index = MCSIndexNode(timeout=3600)
    federation = FederatedMCS(index, members)
    federation.refresh_all()

    site_scoped = {"run": "S2", "interferometer": "H1",
                   "data_product": "pulsar_search"}
    global_query = {"interferometer": "H1", "data_product": "pulsar_search"}

    def sweep():
        rates = {}
        rates["mono_scoped"] = _measure(
            lambda _: mono.query_files_by_attributes(site_scoped), config.duration
        )
        before = federation.subqueries_issued
        rates["fed_scoped"] = _measure(
            lambda _: federation.query_files_by_attributes(site_scoped),
            config.duration,
        )
        scoped_calls = federation.subqueries_issued - before
        rates["scoped_fanout"] = scoped_calls and scoped_calls / max(
            1, int(rates["fed_scoped"] * config.duration)
        )
        rates["mono_global"] = _measure(
            lambda _: mono.query_files_by_attributes(global_query), config.duration
        )
        rates["fed_global"] = _measure(
            lambda _: federation.query_files_by_attributes(global_query),
            config.duration,
        )
        return rates

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n== Extension: federated routing vs monolithic catalog ==")
    print(f"  site-scoped query:  monolithic {rates['mono_scoped']:8.1f} q/s   "
          f"federated {rates['fed_scoped']:8.1f} q/s "
          f"(~{rates['scoped_fanout']:.1f} subqueries/query)")
    print(f"  global query:       monolithic {rates['mono_global']:8.1f} q/s   "
          f"federated {rates['fed_global']:8.1f} q/s "
          f"(scatter to {N_SITES} sites)")
    assert all(
        rates[k] > 0 for k in ("mono_scoped", "fed_scoped", "mono_global", "fed_global")
    )
    # Routing claim: the index prunes site-scoped queries to ~1 subquery.
    assert rates["scoped_fanout"] <= 1.5
