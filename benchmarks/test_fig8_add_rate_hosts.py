"""Figure 8: add rate vs number of client hosts, 4 threads each.

Paper: a single host achieves ~46 adds/s through the web service; with up
to 6 hosts the aggregate rises to ~80 adds/s — i.e. one host cannot
saturate the MCS add path.
"""

from repro.bench import print_series, sweep_figure8


def test_figure8_add_rate_vs_hosts(benchmark, config):
    rows = benchmark.pedantic(
        lambda: sweep_figure8(config), rounds=1, iterations=1
    )
    print_series(
        "Figure 8: Add Rate with Varying Number of Hosts (4 Threads Each)",
        "hosts",
        rows,
    )
    assert all(r["rate"] > 0 for r in rows)

    # Shape: the aggregate soap add rate with several hosts exceeds the
    # single-host rate (a single host cannot saturate the server).
    soap = [r for r in rows if r["mode"] == "soap"]
    sizes = {r["db_size"] for r in soap}
    grew = 0
    for size in sizes:
        series = sorted(
            (r["x"], r["rate"]) for r in soap if r["db_size"] == size
        )
        if max(rate for _, rate in series[1:]) > series[0][1]:
            grew += 1
    assert grew >= 1, "multi-host aggregate add rate never exceeded single host"
