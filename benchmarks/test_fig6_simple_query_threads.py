"""Figure 6: simple query rate vs number of threads (single host).

Paper: MySQL-direct peaks over 2300 q/s; through the web service the rate
drops roughly an order of magnitude; database size has little effect.
"""

from repro.bench import print_series, sweep_figure6
from repro.bench.report import shape_checks


def test_figure6_simple_query_rate_vs_threads(benchmark, config):
    rows = benchmark.pedantic(
        lambda: sweep_figure6(config), rounds=1, iterations=1
    )
    print_series(
        "Figure 6: Simple Query Rate with Varying Threads (Single Client Host)",
        "threads",
        rows,
    )
    checks = shape_checks(rows)
    print(f"direct/soap peak ratio: {checks.get('direct_over_soap_peak', 0):.1f}x "
          "(paper: ~19x)")
    assert all(r["rate"] > 0 for r in rows)
    assert checks.get("direct_over_soap_peak", 0) > 2.0

    # DB size has little effect on simple (indexed) queries: for each
    # mode the largest DB achieves at least a third of the smallest's rate.
    for mode in ("direct", "soap"):
        by_size = {}
        for row in rows:
            if row["mode"] == mode:
                by_size.setdefault(row["db_size"], []).append(row["rate"])
        sizes = sorted(by_size)
        small_peak = max(by_size[sizes[0]])
        large_peak = max(by_size[sizes[-1]])
        assert large_peak > small_peak / 3, (
            f"{mode}: simple queries should be ~flat in DB size "
            f"({small_peak:.0f} -> {large_peak:.0f})"
        )
