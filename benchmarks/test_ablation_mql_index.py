"""Ablation: attribute secondary indexes under the MQL executor.

The equivalence lane (``tests/mql``) proves the ``index`` and ``scan``
strategies return identical answers; this bench proves the indexes are
worth their write-path maintenance.  The same conjunctive MQL statements
run with the strategy pinned to ``index`` (set-intersection probes over
the ``av_*`` secondary indexes) and to ``scan`` (Python predicate
evaluation over every EAV row), across the figure-11 attribute-count
axis.  Acceptance: at the largest attribute count the indexed series is
at least 3x the scan series.
"""

from repro.bench.sweeps import mql_index_summary, sweep_mql_index_ablation


def test_ablation_mql_secondary_indexes(benchmark, config):
    def sweep():
        rows = sweep_mql_index_ablation(config, db_sizes=config.db_sizes[1:2])
        return rows, mql_index_summary(rows)

    rows, summary = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n== Ablation: MQL secondary indexes (conjunctive queries) ==")
    for count in sorted({row["x"] for row in rows}):
        by = {
            row["strategy"]: row["rate"] for row in rows if row["x"] == count
        }
        ratio = by["index"] / by["scan"] if by.get("scan") else 0.0
        print(
            f"  {count:2d} attrs: index {by.get('index', 0.0):10.1f} q/s   "
            f"scan {by.get('scan', 0.0):10.1f} q/s   ({ratio:.1f}x)"
        )
    print(
        f"  headline: {summary['speedup']:.1f}x at "
        f"{summary['attribute_count']} attributes"
    )
    assert summary["index_rate"] > 0 and summary["scan_rate"] > 0
    assert summary["speedup"] >= 3.0, (
        f"indexed MQL only {summary['speedup']:.2f}x scan at "
        f"{summary['attribute_count']} attributes"
    )
