"""Ablation: span-machinery overhead on the SOAP hot path.

Distributed tracing only earns its keep if recording spans and stamping
the TraceParent header costs almost nothing per request.  Same SOAP
repeated-query workload over a zero-simulated-latency link, tracing off
vs on (metrics stay enabled both ways, so the delta is spans alone).
Target: under 3% at peak throughput; the CI assertion is looser (10%)
to absorb shared-runner noise, with the exact figure printed for the
bench report.
"""

from repro.bench import print_series, sweep_tracing_ablation


def test_ablation_tracing(benchmark, config):
    rows = benchmark.pedantic(
        lambda: sweep_tracing_ablation(config), rounds=1, iterations=1
    )
    print_series(
        "Ablation: Repeated Complex Query Rate, Tracing On vs Off",
        "threads",
        rows,
    )
    assert all(r["rate"] > 0 for r in rows)

    # Peak throughput per (db_size, tracing) across the thread axis.
    peak: dict[tuple, float] = {}
    for row in rows:
        key = (row["db_size"], row["tracing"])
        peak[key] = max(peak.get(key, 0.0), row["rate"])
    for size in sorted({s for s, _ in peak}):
        off, on = peak[(size, False)], peak[(size, True)]
        overhead = (off - on) / off * 100.0
        print(
            f"db={size}: untraced {off:.0f}/s vs traced {on:.0f}/s "
            f"({overhead:+.1f}% overhead)"
        )

    largest = max(s for s, _ in peak)
    assert peak[(largest, True)] >= 0.90 * peak[(largest, False)], (
        "span recording must cost <10% on the SOAP hot path "
        "(<3% target; see printed overhead)"
    )
