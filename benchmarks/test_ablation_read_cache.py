"""Ablation: the strict-consistency read cache on the query hot path.

The paper's evaluation (Figures 6/7) is dominated by repeated queries
over slowly-changing metadata.  This bench runs the repeated
complex-query workload (a small pool of 10-attribute queries, cycled)
with the generation-stamped cache enabled and disabled; the ratio is
what caching buys while still honoring the paper's strict-consistency
contract (§4: a query always reflects the latest state).
"""

from repro.bench import print_series, sweep_cache_ablation


def test_ablation_read_cache(benchmark, config):
    rows = benchmark.pedantic(
        lambda: sweep_cache_ablation(config), rounds=1, iterations=1
    )
    print_series(
        "Ablation: Repeated Complex Query Rate, Read Cache On vs Off",
        "threads",
        rows,
    )
    assert all(r["rate"] > 0 for r in rows)

    # Peak throughput per (db_size, cache) across the thread axis.
    peak: dict[tuple, float] = {}
    for row in rows:
        key = (row["db_size"], row["cache"])
        peak[key] = max(peak.get(key, 0.0), row["rate"])
    for size in sorted({s for s, _ in peak}):
        on, off = peak[(size, True)], peak[(size, False)]
        print(f"db={size}: cache on {on:.0f}/s vs off {off:.0f}/s "
              f"({on / off:.1f}x)")

    # The acceptance bar: >= 3x on the largest database, where the
    # uncached EAV join is most expensive.
    largest = max(s for s, _ in peak)
    assert peak[(largest, True)] >= 3.0 * peak[(largest, False)], (
        "read cache must speed up repeated complex queries >= 3x"
    )
