"""Ablation: resilience-layer overhead on the fault-free hot path.

The retry/deadline/breaker wrapper exists for the failure path; this
bench makes sure the *success* path pays almost nothing for it.  Same
in-process repeated-query workload, raw DirectTransport vs the full
ResilientTransport stack, no faults active — the ratio is the pure
bookkeeping cost (breaker admission, deadline checks, token minting on
writes).  Target: under 2% on the query-dominated workload; the CI
assertion is looser (10%) to absorb shared-runner noise, with the exact
figure printed for the bench report.
"""

from repro.bench import print_series, sweep_resilience_ablation


def test_ablation_resilience(benchmark, config):
    rows = benchmark.pedantic(
        lambda: sweep_resilience_ablation(config), rounds=1, iterations=1
    )
    print_series(
        "Ablation: Repeated Complex Query Rate, Resilience Layer On vs Off",
        "threads",
        rows,
    )
    assert all(r["rate"] > 0 for r in rows)

    # Peak throughput per (db_size, resilience) across the thread axis.
    peak: dict[tuple, float] = {}
    for row in rows:
        key = (row["db_size"], row["resilience"])
        peak[key] = max(peak.get(key, 0.0), row["rate"])
    for size in sorted({s for s, _ in peak}):
        raw, wrapped = peak[(size, False)], peak[(size, True)]
        overhead = (raw - wrapped) / raw * 100.0
        print(
            f"db={size}: raw {raw:.0f}/s vs resilient {wrapped:.0f}/s "
            f"({overhead:+.1f}% overhead)"
        )

    largest = max(s for s, _ in peak)
    assert peak[(largest, True)] >= 0.90 * peak[(largest, False)], (
        "resilience layer must cost <10% on the fault-free hot path "
        "(<2% target; see printed overhead)"
    )
