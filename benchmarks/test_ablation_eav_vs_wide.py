"""Ablation: EAV attribute storage vs a wide per-application table.

The MCS stores user-defined attributes in an entity-attribute-value
table (extensible, but 10-way joins for complex queries).  The obvious
alternative — one wide table with a column per attribute, as a
non-extensible schema would use — answers the same conjunctive query
with a single indexed scan.  This bench quantifies what extensibility
costs, the trade-off behind the ESG observations in §6.2.
"""

from repro.bench.timing import count_until_stopped, run_workers
from repro.bench.sweeps import get_environment
from repro.db import Database
from repro.workloads import (
    STANDARD_ATTRIBUTES,
    PopulationSpec,
    QueryWorkload,
    attribute_values_for,
)


def _build_wide_db(spec: PopulationSpec) -> Database:
    db = Database()
    conn = db.connect()
    columns = ", ".join(
        f"{name} {'STRING' if t == 'string' else 'INTEGER' if t == 'int' else 'FLOAT' if t == 'float' else 'DATE' if t == 'date' else 'DATETIME'}"
        for name, t in STANDARD_ATTRIBUTES
    )
    conn.execute(
        f"CREATE TABLE wide (id INTEGER PRIMARY KEY AUTOINCREMENT, "
        f"name STRING NOT NULL, {columns})"
    )
    conn.execute("CREATE INDEX wide_first ON wide (wl_str_a)")
    names = [n for n, _ in STANDARD_ATTRIBUTES]
    placeholders = ", ".join("?" for _ in range(len(names) + 1))
    sql = f"INSERT INTO wide (name, {', '.join(names)}) VALUES ({placeholders})"
    for index in range(spec.total_files):
        values = attribute_values_for(index, spec)
        conn.execute(sql, (spec.file_name(index), *[values[n] for n in names]))
    return db


def _measure(op, threads: int, duration: float) -> float:
    worker_fns = [
        (lambda stop, op=op: count_until_stopped(op, stop)) for _ in range(threads)
    ]
    return run_workers(worker_fns, duration).rate


def test_ablation_eav_vs_wide_table(benchmark, config):
    size = config.db_sizes[0]
    spec = PopulationSpec(
        total_files=size,
        files_per_collection=config.files_per_collection,
        value_cardinality=config.value_cardinality,
    )
    env = get_environment(config, size)
    wide_db = _build_wide_db(spec)
    wide_conn_pool = [wide_db.connect() for _ in range(2)]
    names = [n for n, _ in STANDARD_ATTRIBUTES]
    wide_sql = "SELECT name FROM wide WHERE " + " AND ".join(
        f"{n} = ?" for n in names
    )

    def sweep():
        rates = {}
        client = env.make_client("direct")
        workload = QueryWorkload(spec, seed=77)

        def eav_op(_):
            client.query_files_by_attributes(workload.complex_query_conditions(10))

        rates["eav"] = _measure(eav_op, threads=2, duration=config.duration)

        wide_workload = QueryWorkload(spec, seed=77)
        counter = [0]

        def wide_op(_):
            conditions = wide_workload.complex_query_conditions(10)
            conn = wide_conn_pool[counter[0] % len(wide_conn_pool)]
            counter[0] += 1
            conn.execute(wide_sql, tuple(conditions[n] for n in names)).fetchall()

        rates["wide"] = _measure(wide_op, threads=1, duration=config.duration)
        return rates

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n== Ablation: EAV vs wide-table attribute storage (10-attr query) ==")
    print(f"  EAV (extensible):      {rates['eav']:10.1f} q/s")
    print(f"  wide (fixed schema):   {rates['wide']:10.1f} q/s")
    ratio = rates["wide"] / rates["eav"] if rates["eav"] else 0
    print(f"  extensibility cost: {ratio:.1f}x")
    assert rates["eav"] > 0 and rates["wide"] > 0
