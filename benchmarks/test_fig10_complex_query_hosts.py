"""Figure 10: complex query rate vs number of client hosts.

Paper: best rates at the smallest database (100 k); performance degrades
with database size because of the attribute-space search, mirroring the
single-host complex-query behaviour.
"""

from repro.bench import print_series, sweep_figure10


def test_figure10_complex_query_rate_vs_hosts(benchmark, config):
    rows = benchmark.pedantic(
        lambda: sweep_figure10(config), rounds=1, iterations=1
    )
    print_series(
        "Figure 10: Complex Query Rate with Varying Number of Hosts",
        "hosts",
        rows,
    )
    assert all(r["rate"] > 0 for r in rows)

    # Shape: at every host count, the smallest database is fastest for
    # direct complex queries (compare peaks to tolerate noise).
    direct = [r for r in rows if r["mode"] == "direct"]
    sizes = sorted({r["db_size"] for r in direct})
    small_peak = max(r["rate"] for r in direct if r["db_size"] == sizes[0])
    large_peak = max(r["rate"] for r in direct if r["db_size"] == sizes[-1])
    assert small_peak > large_peak
