"""Ablation: per-request cost of GSI authentication and authorization.

§7 benchmarks an open service; production deployments would verify a GSI
token (certificate chain + signature) and evaluate ACLs per request.
This bench measures simple-query throughput across policy levels:

* open        — no authentication, no authorization (the §7 setup);
* service ACL — caller string + one service-level ACL check;
* GSI         — token signing (client) + chain verification (server)
                + service-level ACL check.
"""

from repro.bench.sweeps import get_environment
from repro.bench.timing import count_until_stopped, run_workers
from repro.core import MCSClient, MCSService, ObjectType
from repro.security import (
    CertificateAuthority,
    DistinguishedName,
    GSIContext,
    Permission,
)
from repro.security.gsi import create_proxy
from repro.workloads import QueryWorkload


def _measure(make_client, env, duration: float, threads: int = 2) -> float:
    clients = [make_client() for _ in range(threads)]
    worker_fns = []
    for idx, client in enumerate(clients):
        workload = QueryWorkload(env.spec, seed=idx)

        def op(_, client=client, workload=workload):
            field, value = workload.simple_query_args()
            client.simple_query(field, value)

        worker_fns.append(lambda stop, op=op: count_until_stopped(op, stop))
    return run_workers(worker_fns, duration).rate


def test_ablation_gsi_authentication_cost(benchmark, config):
    env = get_environment(config, config.db_sizes[0])
    catalog = env.catalog

    ca = CertificateAuthority(key_bits=256)
    user = ca.issue_credential(DistinguishedName.make("Bench User"), key_bits=256)
    proxy = create_proxy(user, key_bits=256)
    server_cred = ca.issue_credential(DistinguishedName.make("MCS"), key_bits=256)
    server_ctx = GSIContext(server_cred, trust_anchors=[ca.certificate])

    open_service = MCSService(catalog, granularity="none")
    acl_service = MCSService(catalog, granularity="service")
    gsi_service = MCSService(
        catalog, granularity="service", gsi_context=server_ctx
    )
    for principal in ("/O=Grid/CN=bench", str(user.subject)):
        catalog.set_permissions(ObjectType.SERVICE, None, principal, Permission.all())

    def open_client():
        return MCSClient.in_process(open_service, caller="/O=Grid/CN=bench")

    def acl_client():
        return MCSClient.in_process(acl_service, caller="/O=Grid/CN=bench")

    def gsi_client():
        client = MCSClient.in_process(gsi_service)
        client._gsi = GSIContext(proxy)
        return client

    def sweep():
        return {
            "open": _measure(open_client, env, config.duration),
            "service_acl": _measure(acl_client, env, config.duration),
            "gsi": _measure(gsi_client, env, config.duration),
        }

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n== Ablation: authentication/authorization cost (simple queries) ==")
    for mode in ("open", "service_acl", "gsi"):
        print(f"  {mode:>11}: {rates[mode]:10.1f} q/s")
    acl_cost = rates["open"] / rates["service_acl"] if rates["service_acl"] else 0
    gsi_cost = rates["open"] / rates["gsi"] if rates["gsi"] else 0
    print(f"  ACL check cost: {acl_cost:.2f}x    full GSI cost: {gsi_cost:.2f}x")
    assert rates["open"] >= rates["service_acl"] > 0
    assert rates["service_acl"] >= rates["gsi"] > 0
