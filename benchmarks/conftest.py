"""Shared configuration for the figure-reproduction benchmarks.

Populated catalogs are cached per database size (see
``repro.bench.sweeps.get_environment``) so the whole suite pays each
population exactly once.  Scale everything with ``MCS_BENCH_SCALE``
(e.g. ``MCS_BENCH_SCALE=5`` for databases 5× larger).
"""

import pytest

from repro.bench import BenchConfig
from repro.bench.sweeps import clear_environments


@pytest.fixture(scope="session")
def config():
    return BenchConfig()


@pytest.fixture(scope="session", autouse=True)
def _teardown_environments():
    yield
    clear_environments()
