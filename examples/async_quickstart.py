#!/usr/bin/env python3
"""Async quickstart: the asyncio front end and the coroutine client.

Stands up :class:`AsyncSoapServer` — one event loop multiplexing every
connection, catalog work on a bounded thread pool — and drives it with
:class:`AsyncMCSClient`, whose surface mirrors ``MCSClient`` call for
call.  Both are configured through the same :class:`ClientConfig` value
the sync client takes.

    python examples/async_quickstart.py
"""

import asyncio

from repro.aserve import AsyncSoapServer
from repro.core import AsyncMCSClient, ClientConfig, MCSService, ObjectQuery
from repro.resilience import RetryPolicy

CONFIG = ClientConfig(
    caller="/O=Grid/OU=Demo/CN=Alice",
    retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.01),
    pool_size=4,  # concurrent coroutines share this many keep-alive sockets
)


async def publish_and_discover(endpoint) -> None:
    async with AsyncMCSClient.connect(*endpoint, CONFIG) as client:
        await client.define_attribute("run_number", "int")
        await client.create_collection("demo-async")

        # Coroutines overlap on the wire: the pipelined front end keeps
        # every publish in flight at once.
        await asyncio.gather(
            *(
                client.create_logical_file(
                    f"sensor-run{run:03d}.dat",
                    collection="demo-async",
                    attributes={"run_number": run},
                )
                for run in range(1, 6)
            )
        )
        print("published:", sorted(await client.list_collection("demo-async")))

        # Batched round trips still work — the async bulk context
        # resolves its handles when the block exits.
        async with client.bulk() as batch:
            handles = [
                batch.call("get_logical_file", name=f"sensor-run{run:03d}.dat")
                for run in (1, 3)
            ]
        print("bulk fetch:", [h.result["name"] for h in handles])

        late = await client.query(
            ObjectQuery().where("run_number", ">=", 3).order_by("name")
        )
        print("late runs:", late)


def main() -> None:
    service = MCSService()
    with AsyncSoapServer(
        service.handle, fault_mapper=service.fault_mapper
    ) as server:
        asyncio.run(publish_and_discover(server.endpoint))


if __name__ == "__main__":
    main()
