#!/usr/bin/env python3
"""The §9 future-work design: federated metadata catalogs.

Several self-consistent local MCS instances push periodic soft-state
summaries to an aggregating index node; clients query the index to find
candidate catalogs, then issue subqueries only to those — the same
pattern Giggle uses for replica location.

    python examples/federated_mcs.py
"""

from repro.core import ObjectQuery
from repro.federation import FederatedMCS, LocalMCS, MCSIndexNode
from repro.ligo import generate_products, register_ligo_attributes


def _equality_query(conditions: dict) -> ObjectQuery:
    query = ObjectQuery()
    for attr, value in conditions.items():
        query.where(attr, "=", value)
    return query


def main() -> None:
    # -- Three sites, each with its own complete MCS -------------------------
    members = {}
    for site, seed in (("caltech", 1), ("mit", 2), ("uwm", 3)):
        member = LocalMCS(site)
        register_ligo_attributes(member.client)
        for product in generate_products(50, seed=seed):
            member.client.create_logical_file(
                f"{site}.{product.logical_name}",
                data_type="gwf",
                attributes=product.attributes,
            )
        members[site] = member
        print(f"{site}: {member.client.stats()['files']} files published locally")

    # -- Index node + federation client ----------------------------------------
    index = MCSIndexNode(timeout=300.0)
    federation = FederatedMCS(index, members)
    federation.refresh_all()
    print(f"index node aggregates {index.total_files()} files "
          f"from {len(index.known_catalogs())} catalogs")

    # -- Federated discovery -----------------------------------------------------
    for request in (
        {"interferometer": "H1", "data_product": "pulsar_search"},
        {"interferometer": "L1", "run": "S1"},
        {"data_product": "frequency_spectrum"},
    ):
        before = federation.subqueries_issued
        results = federation.query(_equality_query(request))
        issued = federation.subqueries_issued - before
        total = sum(len(v) for v in results.values())
        print(
            f"query {request}: {total} files from {sorted(results)} "
            f"({issued} subqueries — index pruned "
            f"{len(members) - issued} catalog(s))" if issued < len(members)
            else f"query {request}: {total} files from {sorted(results)} "
                 f"({issued} subqueries)"
        )

    # -- Soft state: an unrefreshed catalog ages out ------------------------------
    fast_index = MCSIndexNode(timeout=0.0)  # everything expires immediately
    stale_fed = FederatedMCS(fast_index, members)
    stale_fed.refresh_all()
    results = stale_fed.query(ObjectQuery().where("interferometer", "=", "H1"))
    print(f"with expired soft state the index returns no candidates: {results}")


if __name__ == "__main__":
    main()
