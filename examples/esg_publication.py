#!/usr/bin/env python3
"""The §6.2 scenario: loading Earth System Grid metadata into the MCS.

ESG climate metadata follows the netCDF convention, travels as XML, and
is complemented with Dublin Core elements.  The script generates
synthetic climate-model datasets, renders them as XML, shreds them into
MCS user-defined attributes, and demonstrates the discovery queries ESG
scientists ran.

    python examples/esg_publication.py
"""

import datetime as dt

from repro.core import MCSClient, MCSService, ObjectQuery
from repro.esg import ESGShredder, generate_dataset


def main() -> None:
    service = MCSService()
    client = MCSClient.in_process(service, caller="/O=Grid/OU=ESG/CN=Loader")
    shredder = ESGShredder(client, use_dublin_core=True)

    # -- Generate & shred XML metadata documents ---------------------------
    datasets = [generate_dataset(i, seed=2003) for i in range(40)]
    for dataset in datasets:
        xml = dataset.to_xml()          # the form ESG actually shipped
        shredder.shred_xml(xml)
    print(f"shredded {len(datasets)} netCDF XML metadata documents into the MCS")

    defs = client.list_attribute_defs()
    print(f"attribute definitions now in the schema: {len(defs)} "
          f"({sum(1 for d in defs if d.name.startswith('dc_'))} Dublin Core)")

    # -- Discovery the way ESG scientists used it ---------------------------
    ccsm = client.query(ObjectQuery().where("esg_model", "=", "CCSM2"))
    print(f"CCSM2 datasets: {len(ccsm)}")
    for name in ccsm[:3]:
        attrs = client.get_attributes("file", name)
        print(f"  {name}: experiment={attrs['esg_experiment']} "
              f"years={attrs['esg_years_simulated']}")

    long_runs = client.query(
        ObjectQuery()
        .where("esg_years_simulated", ">=", 50)
        .where("esg_resolution_degrees", "<=", 1.0)
    )
    print(f"high-resolution long runs: {len(long_runs)}")

    with_temp = client.query(ObjectQuery().where("var_TS", "=", 1))
    print(f"datasets carrying surface temperature (TS): {len(with_temp)}")

    # Dublin Core cross-cutting query
    recent = client.query(
        ObjectQuery().where("dc_date", ">=", dt.date(1950, 1, 1))
    )
    print(f"datasets starting after 1950 (via dc_date): {len(recent)}")

    # -- Collections mirror the model taxonomy ------------------------------
    for model in ("CCSM2", "PCM", "HadCM3"):
        try:
            members = client.list_collection(f"esg-{model}")
            print(f"collection esg-{model}: {len(members)} datasets")
        except Exception:
            pass

    print("catalog stats:", client.stats())


if __name__ == "__main__":
    main()
