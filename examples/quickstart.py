#!/usr/bin/env python3
"""Quickstart: publish metadata, discover data, annotate, trace provenance.

Runs a Metadata Catalog Service fully in-process, then the same operations
over SOAP/HTTP, demonstrating the whole public API surface in one script.

    python examples/quickstart.py
"""

import datetime as dt

from repro.core import ClientConfig, MCSClient, MCSService, ObjectQuery
from repro.soap import SoapServer


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Stand up an MCS and a client (in-process: no SOAP, no sockets).
    # ------------------------------------------------------------------
    service = MCSService()
    client = MCSClient.in_process(service, caller="/O=Grid/OU=Demo/CN=Alice")

    # ------------------------------------------------------------------
    # 2. Extend the schema with application attributes (§5 extensibility).
    # ------------------------------------------------------------------
    client.define_attribute("experiment", "string", description="campaign name")
    client.define_attribute("temperature_k", "float")
    client.define_attribute("run_number", "int")
    client.define_attribute("observed_on", "date")

    # ------------------------------------------------------------------
    # 3. Publish: collections group files and carry authorization scope.
    # ------------------------------------------------------------------
    client.create_collection("demo-2003", description="demo campaign")
    for run in range(1, 6):
        client.create_logical_file(
            f"sensor-run{run:03d}.dat",
            data_type="binary",
            collection="demo-2003",
            attributes={
                "experiment": "calibration" if run % 2 else "science",
                "temperature_k": 270.0 + run,
                "run_number": run,
                "observed_on": dt.date(2003, 11, run),
            },
        )
    print("published:", client.list_collection("demo-2003"))

    # ------------------------------------------------------------------
    # 4. Discover by attributes — the core MCS operation.
    # ------------------------------------------------------------------
    science = client.query(
        ObjectQuery().where("experiment", "=", "science").order_by("name")
    )
    print("science runs:", science)

    warm = client.query(ObjectQuery().where("temperature_k", ">", 272.5))
    print("warm runs:", warm)

    ranged = client.query(
        ObjectQuery()
        .where("observed_on", "between", (dt.date(2003, 11, 2), dt.date(2003, 11, 4)))
        .where_field("data_type", "=", "binary")
    )
    print("observed Nov 2-4:", ranged)

    # ------------------------------------------------------------------
    # 5. Views: personal groupings without authorization effect.
    # ------------------------------------------------------------------
    client.create_view("alice-favourites", description="runs worth a second look")
    client.add_to_view("alice-favourites", files=science[:2])
    print("view members:", [m["name"] for m in client.list_view("alice-favourites")])

    # ------------------------------------------------------------------
    # 6. Annotations and provenance.
    # ------------------------------------------------------------------
    target = science[0]
    client.annotate("file", target, "spike at t=120s — check the sensor")
    client.add_transformation(target, "calibrated with pipeline v2.1")
    print("annotations:", [a["text"] for a in client.get_annotations("file", target)])
    print("history:", [t["description"] for t in client.get_transformations(target)])

    # ------------------------------------------------------------------
    # 7. Versioning and the valid flag.
    # ------------------------------------------------------------------
    client.create_logical_file(target, version=2, data_type="binary")
    print("versions of", target, "->", client.list_versions(target))
    client.modify_logical_file(target, version=1, valid=False)
    print("v1 valid?", client.get_logical_file(target, version=1)["valid"])

    # ------------------------------------------------------------------
    # 8. The same service over SOAP/HTTP (the paper's deployment model).
    # ------------------------------------------------------------------
    with SoapServer(service.handle, fault_mapper=service.fault_mapper) as server:
        config = ClientConfig(caller="/O=Grid/CN=Bob", timeout_s=10.0)
        remote = MCSClient.connect(*server.endpoint, config)
        print("over SOAP:",
              remote.query(ObjectQuery().where("experiment", "=", "science")))
        print("stats:", remote.stats())
        remote.close()


if __name__ == "__main__":
    main()
