#!/usr/bin/env python3
"""Tour of the extension features beyond the paper's core: replication,
containers, master-copy consistency, EXPLAIN, and the XML backend.

Each section corresponds to something the paper mentions and defers
(§3 containers and master copies, §9 replication and XML backends) or a
tooling affordance a production catalog would grow (plan inspection).

    python examples/advanced_features.py
"""

from repro.consistency import ConsistencyManager, ReplicaState
from repro.container import ContainerService
from repro.core import MCSClient, MCSService, ObjectQuery
from repro.core.replicated import ReplicatedMCS
from repro.core.xmlbackend import XmlMetadataBackend
from repro.gridftp import GridFTPServer, StorageSite
from repro.rls import LocalReplicaCatalog, ReplicaLocationIndex, RLSClient


def replication_demo() -> None:
    print("== Replicated MCS (§9): one primary, two read replicas ==")
    cluster = ReplicatedMCS(replicas=2, synchronous=True)
    try:
        writer = cluster.write_client(caller="/O=Grid/CN=Publisher")
        writer.define_attribute("band", "float")
        for i in range(5):
            writer.create_logical_file(f"rep-{i}.dat", attributes={"band": 10.0 * i})
        for index in range(cluster.replica_count):
            reader = cluster.replica_client(index)
            hits = reader.query(ObjectQuery().where("band", ">=", 30.0))
            print(f"  replica {index} sees {hits} (lag={cluster.lag()[index]})")
        promoted = cluster.promote(0)
        print(f"  promoted replica 0; it now accepts writes: "
              f"{promoted.write_client().stats()['files']} files")
    finally:
        cluster.close()


def container_demo() -> None:
    print("\n== Container service (§3/§5): small files shipped as one unit ==")
    site = StorageSite("archive", wan_bandwidth_mbps=100, latency_ms=40)
    remote = StorageSite("compute", wan_bandwidth_mbps=100, latency_ms=40)
    gridftp = GridFTPServer({"archive": site, "compute": remote})
    containers = ContainerService("cont-svc")
    containers.add_site(site)
    containers.add_site(remote)
    mcs = MCSClient.in_process(MCSService(), caller="/O=Grid/CN=Archiver")

    members = {f"event-{i:04d}.dat": bytes([i % 256]) * 256 for i in range(100)}
    containers.publish_container(mcs, "archive", "run-77", members)
    record = mcs.get_logical_file("event-0042.dat")
    print(f"  event-0042.dat: container_id={record['container_id']} "
          f"service={record['container_service']}")

    loose = sum(
        gridftp.transfer(f"gsiftp://archive/x{i}", f"gsiftp://compute/x{i}").simulated_seconds
        for i in range(0)  # (not transferring loose copies; estimate below)
    )
    one = gridftp.transfer(
        "gsiftp://archive/containers/run-77.mcsc",
        "gsiftp://compute/containers/run-77.mcsc",
    )
    per_file_overhead = 0.05 + 0.08  # handshake + RTT per small transfer
    print(f"  single container transfer: {one.simulated_seconds:.2f}s simulated "
          f"(vs ~{100 * per_file_overhead:.0f}s for 100 loose transfers)")
    payload = containers.fetch_logical_file(mcs, "compute", "event-0042.dat")
    print(f"  extracted event-0042.dat at compute site: {len(payload)} bytes")


def consistency_demo() -> None:
    print("\n== Master-copy consistency (§3): update, audit, repair ==")
    mcs = MCSClient.in_process(MCSService(), caller="/O=Grid/CN=Curator")
    sites = {n: StorageSite(n) for n in ("primary", "mirror-1", "mirror-2")}
    gridftp = GridFTPServer(sites)
    lrcs = {f"lrc-{n}": LocalReplicaCatalog(f"lrc-{n}") for n in sites}
    rls = RLSClient(ReplicaLocationIndex(), lrcs)
    manager = ConsistencyManager(mcs, rls, gridftp)

    mcs.create_logical_file("catalogue.fits")
    for name, site in sites.items():
        site.store("catalogue.fits", b"epoch-1")
        lrcs[f"lrc-{name}"].add_mapping("catalogue.fits", site.url_for("catalogue.fits"))
    rls.refresh_all()
    manager.designate_master("catalogue.fits", "gsiftp://primary/catalogue.fits")

    manager.update_master("catalogue.fits", b"epoch-2", propagate=False,
                          note="astrometric recalibration")
    stale = [a.url for a in manager.audit("catalogue.fits")
             if a.state is ReplicaState.STALE]
    print(f"  after unpropagated update, stale replicas: {stale}")
    print(f"  repair() refreshed {manager.repair('catalogue.fits')} replicas")
    states = {a.url.split('//')[1].split('/')[0]: a.state.value
              for a in manager.audit("catalogue.fits")}
    print(f"  final states: {states}")


def explain_demo() -> None:
    print("\n== EXPLAIN: how attribute queries execute ==")
    service = MCSService()
    client = MCSClient.in_process(service, caller="/O=Grid/CN=DBA")
    client.define_attribute("model", "string")
    client.define_attribute("year", "int")
    for i in range(10):
        client.create_logical_file(
            f"ds-{i}", attributes={"model": f"M{i % 3}", "year": 1990 + i}
        )
    query = ObjectQuery().where("model", "=", "M1").where("year", ">=", 1995)
    for line in service.catalog.explain_query(query):
        print(f"  {line}")
    print(f"  -> {client.query(query)}")


def xml_backend_demo() -> None:
    print("\n== Native XML backend (§9): functional, slower on complex queries ==")
    backend = XmlMetadataBackend()
    for i in range(20):
        backend.create_file(
            f"x-{i}", attributes={"model": f"M{i % 3}", "year": 1990 + i}
        )
    hits = backend.query(
        ObjectQuery().where("model", "=", "M1").where("year", "=", 1994)
    )
    print(f"  XPath-backed conjunctive query: {hits}")
    print("  (see benchmarks/test_ablation_xml_backend.py for the rate gap)")


if __name__ == "__main__":
    replication_demo()
    container_demo()
    consistency_demo()
    explain_demo()
    xml_backend_demo()
