#!/usr/bin/env python3
"""The §6.1 scenario: Pegasus plans a LIGO pulsar search against the MCS.

1. Raw interferometer frames are published (MCS metadata + RLS replicas).
2. A user requests data with particular metadata attributes; Pegasus
   queries the MCS to find matching logical files.
3. Pegasus plans the pulsar-search workflow, inserts transfers, runs it
   on simulated Grid sites, and registers derived data products (time
   series, frequency spectra, pulsar-search results) back into the MCS.
4. A second, overlapping request shows workflow *reduction*: existing
   products are discovered in the MCS and not recomputed.

    python examples/ligo_pegasus_workflow.py
"""

from repro.core import MCSClient, MCSService, ObjectQuery
from repro.gridftp import GridFTPServer, StorageSite
from repro.ligo import generate_products, pulsar_search_workflow, register_ligo_attributes
from repro.pegasus import PegasusPlanner, WorkflowExecutor
from repro.rls import LocalReplicaCatalog, ReplicaLocationIndex, RLSClient


def main() -> None:
    # -- Grid fabric: three sites, their replica catalogs, one index -------
    sites = {
        "caltech": StorageSite("caltech", wan_bandwidth_mbps=622, latency_ms=12),
        "isi": StorageSite("isi", wan_bandwidth_mbps=1000, latency_ms=8),
        "uwm": StorageSite("uwm", wan_bandwidth_mbps=155, latency_ms=35),
    }
    gridftp = GridFTPServer(sites)
    lrcs = {f"lrc-{name}": LocalReplicaCatalog(f"lrc-{name}") for name in sites}
    rls = RLSClient(ReplicaLocationIndex(), lrcs)

    service = MCSService()
    mcs = MCSClient.in_process(service, caller="/O=Grid/OU=LIGO/CN=Pegasus")
    register_ligo_attributes(mcs)
    print("registered the 23 LIGO user-defined attributes")

    # -- Publication: raw S1 frames live at Caltech -------------------------
    raw_products = [p for p in generate_products(40, seed=7)
                    if p.attributes["data_product"] == "time_series"][:6]
    for product in raw_products:
        sites["caltech"].store(product.logical_name, b"\0" * 4096)
        mcs.create_logical_file(
            product.logical_name, data_type="gwf", attributes=product.attributes
        )
        lrcs["lrc-caltech"].add_mapping(
            product.logical_name, f"gsiftp://caltech/{product.logical_name}"
        )
    rls.refresh_all()
    print(f"published {len(raw_products)} raw frame files at caltech")

    # -- Discovery: the user asks for H1 time series ------------------------
    request = {"interferometer": "H1", "data_product": "time_series"}
    query = ObjectQuery()
    for attr, value in request.items():
        query.where(attr, "=", value)
    frames = mcs.query(query)
    print(f"MCS discovery for {request}: {len(frames)} matching frames")
    if not frames:
        # fall back to everything raw we published
        frames = [p.logical_name for p in raw_products]

    # -- Planning + execution ------------------------------------------------
    planner = PegasusPlanner(mcs, rls, sites=list(sites))
    workflow = pulsar_search_workflow(frames, search_id="ps-s1-0001",
                                      band=(100.0, 150.0))
    plan = planner.plan(workflow)
    print(f"concrete plan: {plan.counts()} (pruned: {len(plan.pruned_jobs)})")

    executor = WorkflowExecutor(
        mcs, rls, gridftp, lrc_for_site={name: f"lrc-{name}" for name in sites}
    )
    report = executor.execute(plan)
    print(
        f"executed {len(report.executed)} jobs, registered "
        f"{len(report.registered_files)} derived products, "
        f"{report.bytes_transferred} bytes moved, "
        f"{report.simulated_seconds:.1f} simulated seconds"
    )

    # -- Derived products are now discoverable -------------------------------
    results = mcs.query(
        ObjectQuery()
        .where("data_product", "=", "pulsar_search")
        .where("pulsar_search_id", "=", "ps-s1-0001")
    )
    print("pulsar search results in MCS:", results)
    for name in results:
        print("  provenance:", [t["description"] for t in mcs.get_transformations(name)])
        print("  replicas:", rls.lookup(name))

    # -- Reduction: replanning finds everything materialized ------------------
    replanned = planner.plan(workflow)
    print(
        f"replanning the same search: {sum(replanned.counts().values())} jobs "
        f"({len(replanned.pruned_jobs)} pruned by MCS/RLS discovery)"
    )


if __name__ == "__main__":
    main()
