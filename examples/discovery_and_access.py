#!/usr/bin/env python3
"""Figure 2 end-to-end: attribute discovery → replica lookup → GridFTP.

The paper's canonical usage scenario, with GSI authentication and
per-object authorization enforced along the way:

  (1) the client queries the Metadata Service for data sets with
      particular attribute values,
  (2) the MCS returns matching logical names,
  (3) the client queries the Replica Location Service,
  (4) the RLS returns physical locations,
  (5) the client selects a replica and contacts the storage system,
  (6) the data comes back over (simulated) GridFTP.

    python examples/discovery_and_access.py
"""

from repro.core import MCSClient, MCSService, ObjectQuery, ObjectType
from repro.gridftp import GridFTPServer, StorageSite
from repro.rls import LocalReplicaCatalog, ReplicaLocationIndex, RLSClient
from repro.security import (
    CertificateAuthority,
    DistinguishedName,
    GSIContext,
    Permission,
)
from repro.security.gsi import create_proxy
from repro.soap import SoapServer


def main() -> None:
    # -- Grid security: a CA, a user credential, a proxy --------------------
    ca = CertificateAuthority(key_bits=256)
    alice = ca.issue_credential(
        DistinguishedName.make("Alice", unit="ISI"), key_bits=256
    )
    proxy = create_proxy(alice, key_bits=256)
    print(f"issued proxy credential for {proxy.subject}")

    server_cred = ca.issue_credential(DistinguishedName.make("MCS"), key_bits=256)
    server_ctx = GSIContext(server_cred, trust_anchors=[ca.certificate])

    # -- MCS with object-granularity authorization ----------------------------
    service = MCSService(gsi_context=server_ctx, granularity="object")
    admin_cred = ca.issue_credential(DistinguishedName.make("Admin"), key_bits=256)
    admin_dn = str(admin_cred.subject)
    service.catalog.set_permissions(
        ObjectType.SERVICE, None, admin_dn, Permission.all()
    )
    admin = MCSClient.in_process(service)
    admin._gsi = GSIContext(admin_cred)

    # -- Storage fabric + RLS --------------------------------------------------
    sites = {
        "ncar": StorageSite("ncar", wan_bandwidth_mbps=622, latency_ms=25),
        "llnl": StorageSite("llnl", wan_bandwidth_mbps=1000, latency_ms=15),
    }
    gridftp = GridFTPServer(sites)
    lrcs = {f"lrc-{n}": LocalReplicaCatalog(f"lrc-{n}") for n in sites}
    rls = RLSClient(ReplicaLocationIndex(), lrcs)

    # -- Publication (admin): climate files, replicated at two sites -----------
    admin.define_attribute("variable", "string")
    admin.define_attribute("year", "int")
    admin.create_collection("climate-2003")
    for year in (2001, 2002, 2003):
        name = f"precip-{year}.nc"
        content = f"precipitation data {year}".encode() * 64
        for site_name, site in sites.items():
            site.store(name, content)
            lrcs[f"lrc-{site_name}"].add_mapping(name, site.url_for(name))
        admin.create_logical_file(
            name,
            data_type="netcdf",
            collection="climate-2003",
            attributes={"variable": "precipitation", "year": year},
        )
    rls.refresh_all()
    # Grant Alice READ on the whole collection: the union rule (§5) makes
    # every member file readable.
    # Service-level READ lets Alice issue queries at all; the collection
    # grant (union rule, §5) then opens every member file's record.
    service.catalog.set_permissions(
        ObjectType.SERVICE, None, str(alice.subject), Permission.READ
    )
    service.catalog.set_permissions(
        ObjectType.COLLECTION, "climate-2003", str(alice.subject), Permission.READ
    )
    print("published 3 files, replicated at ncar and llnl; granted Alice READ")

    # -- (1)-(2): attribute discovery over SOAP with GSI ------------------------
    with SoapServer(service.handle, fault_mapper=service.fault_mapper) as soap:
        client = MCSClient.connect(*soap.endpoint)
        client._gsi = GSIContext(proxy)

        names = client.query(
            ObjectQuery().where("variable", "=", "precipitation")
        )
        print(f"(1)-(2) MCS discovery: {names}")

        target = names[-1]
        record = client.get_logical_file(target)
        print(f"        chose {target} (created by {record['creator']})")

        # -- (3)-(4): replica lookup -------------------------------------------
        replicas = rls.lookup(target)
        print(f"(3)-(4) RLS replicas: {replicas}")

        # -- (5)-(6): replica selection + transfer -------------------------------
        # pick the site with the highest bandwidth
        best_url = max(
            (url for urls in replicas.values() for url in urls),
            key=lambda u: sites[u.split("/")[2]].wan_bandwidth_mbps,
        )
        content, result = gridftp.fetch(best_url, streams=8)
        print(
            f"(5)-(6) fetched {result.size_bytes} bytes from {best_url} "
            f"in {result.simulated_seconds * 1000:.1f} simulated ms "
            f"({result.throughput_mbps:.0f} Mbit/s with {result.streams} streams)"
        )
        print(f"        checksum {result.checksum[:16]}...")
        client.close()


if __name__ == "__main__":
    main()
