"""LIGO integration (§6.1).

"To support LIGO application-specific metadata, we added 23 user-defined
attributes to the pre-defined attributes provided by the MCS schema."
This package carries that ontology and a synthetic workload generator for
LIGO-like data products (time series, frequency spectra, pulsar-search
results).
"""

from repro.ligo.ontology import LIGO_ATTRIBUTES, register_ligo_attributes
from repro.ligo.workload import LigoProduct, generate_products, pulsar_search_workflow

__all__ = [
    "LIGO_ATTRIBUTES",
    "register_ligo_attributes",
    "LigoProduct",
    "generate_products",
    "pulsar_search_workflow",
]
