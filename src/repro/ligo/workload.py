"""Synthetic LIGO data products and a pulsar-search workflow builder."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.ligo.ontology import LIGO_ATTRIBUTES
from repro.pegasus.abstract import AbstractJob, AbstractWorkflow

GPS_S1_START = 714150013  # LIGO S1 run start, GPS seconds (Aug 23 2002)
_IFOS = ("H1", "H2", "L1")
_PRODUCTS = ("time_series", "frequency_spectrum", "pulsar_search")


@dataclass
class LigoProduct:
    """One LIGO data product with its full 23-attribute metadata record."""

    logical_name: str
    attributes: dict[str, Any] = field(default_factory=dict)


def generate_products(
    count: int,
    seed: int = 0,
    run: str = "S1",
) -> list[LigoProduct]:
    """Deterministic LIGO-like products with all 23 attributes filled."""
    rng = random.Random(seed)
    out: list[LigoProduct] = []
    for index in range(count):
        ifo = rng.choice(_IFOS)
        product = rng.choice(_PRODUCTS)
        start = GPS_S1_START + index * 256
        duration = rng.choice((64, 128, 256))
        band_low = float(rng.choice((40, 60, 100, 150)))
        name = f"{ifo}-{product}-{start}-{duration}.gwf"
        attributes: dict[str, Any] = {
            "interferometer": ifo,
            "site": "LHO" if ifo.startswith("H") else "LLO",
            "frame_type": "RDS" if product == "time_series" else "SFT",
            "data_product": product,
            "channel": f"{ifo}:LSC-AS_Q",
            "run": run,
            "gps_start_time": start,
            "gps_end_time": start + duration,
            "duration": duration,
            "frequency_band_low": band_low,
            "frequency_band_high": band_low + 50.0,
            "sample_rate": rng.choice((2048, 4096, 16384)),
            "calibration_version": f"V{rng.randrange(1, 4)}",
            "data_quality": rng.choice(("science", "injection", "noisy")),
            "science_mode": 1 if rng.random() < 0.9 else 0,
            "locked": 1,
            "pipeline_version": "LDAS-0.9",
            "analysis_group": "pulsar" if product == "pulsar_search" else "burst",
            "pulsar_search_id": f"ps-{index:06d}" if product == "pulsar_search" else "none",
            "snr_threshold": round(rng.uniform(5.0, 9.0), 2),
            "template_bank": rng.choice(("tb-iso", "tb-galactic")),
            "injection_type": rng.choice(("none", "none", "none", "software")),
            "segment_id": index // 16,
        }
        assert set(attributes) == set(LIGO_ATTRIBUTES)
        out.append(LigoProduct(name, attributes))
    return out


def pulsar_search_workflow(
    raw_inputs: list[str],
    search_id: str = "ps-000001",
    band: tuple[float, float] = (100.0, 150.0),
) -> AbstractWorkflow:
    """Build the canonical LIGO analysis chain as an abstract workflow.

    raw frames → (per-frame) short Fourier transform → band extraction →
    pulsar search over all bands.  This is the workflow shape Pegasus
    planned for LIGO in §6.1.
    """
    workflow = AbstractWorkflow(f"pulsar-search-{search_id}")
    band_files: list[str] = []
    for index, raw in enumerate(raw_inputs):
        sft = f"{search_id}-sft-{index:04d}.sft"
        workflow.add_job(
            AbstractJob(
                id=f"sft-{index:04d}",
                transformation="ComputeSFT",
                inputs=(raw,),
                outputs=(sft,),
                parameters={"window": "tukey"},
                output_metadata={
                    sft: {
                        "data_product": "frequency_spectrum",
                        "pulsar_search_id": search_id,
                    }
                },
                runtime_seconds=30.0,
            )
        )
        band_file = f"{search_id}-band-{index:04d}.dat"
        band_files.append(band_file)
        workflow.add_job(
            AbstractJob(
                id=f"band-{index:04d}",
                transformation="ExtractBand",
                inputs=(sft,),
                outputs=(band_file,),
                parameters={"low": band[0], "high": band[1]},
                output_metadata={
                    band_file: {
                        "data_product": "frequency_spectrum",
                        "frequency_band_low": band[0],
                        "frequency_band_high": band[1],
                        "pulsar_search_id": search_id,
                    }
                },
                runtime_seconds=10.0,
            )
        )
    result = f"{search_id}-result.xml"
    workflow.add_job(
        AbstractJob(
            id="search",
            transformation="PulsarSearch",
            inputs=tuple(band_files),
            outputs=(result,),
            parameters={"search_id": search_id},
            output_metadata={
                result: {
                    "data_product": "pulsar_search",
                    "pulsar_search_id": search_id,
                    "frequency_band_low": band[0],
                    "frequency_band_high": band[1],
                }
            },
            runtime_seconds=120.0,
        )
    )
    return workflow
