"""The LIGO metadata ontology: 23 user-defined MCS attributes.

Attribute names follow LIGO/LDAS conventions (interferometers, GPS time
ranges, frame types, pulsar-search parameters).  The count is exactly the
23 the paper reports adding for the LIGO integration.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.errors import DuplicateObjectError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.client import MCSClient

#: name -> (value type, description)
LIGO_ATTRIBUTES: dict[str, tuple[str, str]] = {
    "interferometer": ("string", "detector: H1, H2 or L1"),
    "site": ("string", "observatory site: LHO or LLO"),
    "frame_type": ("string", "frame data classification (R, RDS, SFT...)"),
    "data_product": ("string", "time_series | frequency_spectrum | pulsar_search"),
    "channel": ("string", "recorded channel name"),
    "run": ("string", "science run identifier (S1, S2, ...)"),
    "gps_start_time": ("int", "start of data span, GPS seconds"),
    "gps_end_time": ("int", "end of data span, GPS seconds"),
    "duration": ("int", "span length in seconds"),
    "frequency_band_low": ("float", "lower bound of the analyzed band, Hz"),
    "frequency_band_high": ("float", "upper bound of the analyzed band, Hz"),
    "sample_rate": ("int", "samples per second"),
    "calibration_version": ("string", "calibration pipeline version"),
    "data_quality": ("string", "data-quality category"),
    "science_mode": ("int", "1 when the detector was in science mode"),
    "locked": ("int", "1 when the interferometer held lock"),
    "pipeline_version": ("string", "analysis pipeline version"),
    "analysis_group": ("string", "working group owning the product"),
    "pulsar_search_id": ("string", "identifier of the pulsar search job"),
    "snr_threshold": ("float", "signal-to-noise cut used in the search"),
    "template_bank": ("string", "waveform template bank identifier"),
    "injection_type": ("string", "none | hardware | software"),
    "segment_id": ("int", "science segment serial number"),
}

assert len(LIGO_ATTRIBUTES) == 23, "the paper's LIGO integration defines 23"


def register_ligo_attributes(client: "MCSClient") -> int:
    """Define every LIGO attribute in the MCS; returns how many were new."""
    created = 0
    for name, (value_type, description) in LIGO_ATTRIBUTES.items():
        try:
            client.define_attribute(name, value_type, description=description)
            created += 1
        except DuplicateObjectError:
            pass
    return created
