"""A bounded, thread-safe LRU map.

Values are opaque to the LRU; the generation-stamping that makes entries
safely shareable lives in :mod:`repro.cache.catalog_cache`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Generic, Hashable, Optional, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """Least-recently-used mapping with a fixed capacity."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("LRU capacity must be positive")
        self.capacity = capacity
        self._guard = threading.Lock()
        self._entries: "OrderedDict[K, V]" = OrderedDict()
        self.evictions = 0

    def get(self, key: K) -> Optional[V]:
        with self._guard:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
            return value

    def put(self, key: K, value: V) -> None:
        with self._guard:
            self._entries[key] = value
            self._entries.move_to_end(key)
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def discard(self, key: K) -> None:
        with self._guard:
            self._entries.pop(key, None)

    def clear(self) -> None:
        with self._guard:
            self._entries.clear()

    def __len__(self) -> int:
        with self._guard:
            return len(self._entries)
