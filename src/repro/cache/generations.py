"""Per-table generation counters: the cache invalidation primitive.

Every table has a monotonically increasing generation.  Readers snapshot
the generations of the tables a result depends on *before* executing the
read and stamp the cached entry with that snapshot; a lookup only hits
while the stamped snapshot still equals the current one.  The engine
bumps generations at commit time, while the committing transaction still
holds its write locks, so:

* a write that committed can never be shadowed by a hit (the bump
  precedes the lock release that makes the new data readable);
* a writer racing a reader costs at most one spurious miss (the entry
  is stored with a pre-write snapshot and never hits afterwards) —
  never a stale hit.
"""

from __future__ import annotations

import threading
from typing import Iterable

from repro.obs.metrics import counter as _obs_counter

_INVALIDATIONS = _obs_counter(
    "mcs_cache_invalidations_total",
    "Generation bumps published at commit time, per table",
    labels=("table",),
)


class GenerationMap:
    """Thread-safe map of table name → generation counter.

    Unknown tables implicitly have generation 0, so snapshots taken
    before a table's first committed write validate correctly against
    it.
    """

    def __init__(self) -> None:
        self._guard = threading.Lock()
        self._generations: dict[str, int] = {}

    def get(self, table: str) -> int:
        with self._guard:
            return self._generations.get(table, 0)

    def snapshot(self, tables: Iterable[str]) -> tuple[int, ...]:
        """Current generations of *tables*, in iteration order."""
        with self._guard:
            generations = self._generations
            return tuple(generations.get(t, 0) for t in tables)

    def bump(self, tables: Iterable[str]) -> None:
        """Advance the generation of every table in *tables*.

        Called by the engine after a commit is durable but before its
        write locks are released (see ``Connection._commit_txn``).
        """
        bumped: list[str] = []
        with self._guard:
            generations = self._generations
            for table in tables:
                generations[table] = generations.get(table, 0) + 1
                bumped.append(table)
        for table in bumped:
            _INVALIDATIONS.labels(table).inc()

    def as_dict(self) -> dict[str, int]:
        with self._guard:
            return dict(self._generations)
