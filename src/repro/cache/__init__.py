"""Strict-consistency read caching for the catalog hot path.

The subsystem has three pieces:

* :class:`~repro.cache.generations.GenerationMap` — one monotonic
  counter per table, bumped by the engine when a transaction *commits*
  a write to that table (and only then);
* :class:`~repro.cache.lru.LRUCache` — a bounded, thread-safe LRU used
  for query results;
* :class:`~repro.cache.catalog_cache.CatalogCache` — the catalog-facing
  facade stamping every entry with a generation snapshot so a committed
  write atomically invalidates every dependent entry.

The invalidation protocol is documented in ``docs/INTERNALS.md``.
"""

from repro.cache.catalog_cache import CatalogCache, LookupToken
from repro.cache.generations import GenerationMap
from repro.cache.lru import LRUCache

__all__ = ["CatalogCache", "GenerationMap", "LRUCache", "LookupToken"]
