"""Catalog-facing cache facade: generation-stamped lookups.

Three caches ride the catalog hot path:

* **attr_def** — attribute-definition lookups (every ``set_attributes``
  and every user-attribute query touches ``attribute_def``);
* **object** — logical name → database id resolution;
* **query** — compiled :class:`~repro.core.query.ObjectQuery` results,
  keyed by (sql, params) in a bounded LRU.

Every entry is stamped with a snapshot of the generations of the tables
the result depends on, taken *before* the underlying read executes.  A
lookup hits only while that snapshot is still current, so a committed
write to any dependent table invalidates the entry atomically (the
engine bumps generations before releasing write locks — see
:mod:`repro.cache.generations` for the strictness argument).

Mid-transaction rule: a connection inside an explicit transaction that
has already written table T must neither hit nor populate the shared
cache for results depending on T — its own uncommitted writes are
visible to it but to nobody else.  Reads of tables the transaction has
*not* written stay cacheable (e.g. ``attribute_def`` inside a bulk
attribute load), which keeps bulk ingest fast.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Hashable, Optional, Tuple

from repro.cache.generations import GenerationMap
from repro.cache.lru import LRUCache
from repro.obs.metrics import counter as _obs_counter, gauge as _obs_gauge

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.engine import Connection, Database

_REQUESTS = _obs_counter(
    "mcs_cache_requests_total",
    "Cache lookups by cache and outcome (hit / miss / bypass)",
    labels=("cache", "outcome"),
)
_HIT_RATIO = _obs_gauge(
    "mcs_cache_hit_ratio",
    "hits / (hits + misses) since process start, per cache",
    labels=("cache",),
)

_GAUGE_REFRESH_MASK = 1023  # refresh the ratio gauge every 1024 lookups


class _Entry:
    """One cached value plus the generation snapshot it was read under."""

    __slots__ = ("tables", "generations", "value")

    def __init__(
        self,
        tables: Tuple[str, ...],
        generations: Tuple[int, ...],
        value: Any,
    ) -> None:
        self.tables = tables
        self.generations = generations
        self.value = value


class LookupToken:
    """Result of a cache lookup.

    ``hit`` carries the value; a miss carries everything needed to
    publish the freshly-read value with the pre-read snapshot (call
    :meth:`store`).  A bypassed lookup stores nothing.
    """

    __slots__ = ("hit", "value", "_store", "_key", "_tables", "_generations")

    def __init__(
        self,
        hit: bool,
        value: Any = None,
        store: Optional[LRUCache[Any, _Entry]] = None,
        key: Optional[Hashable] = None,
        tables: Tuple[str, ...] = (),
        generations: Tuple[int, ...] = (),
    ) -> None:
        self.hit = hit
        self.value = value
        self._store = store
        self._key = key
        self._tables = tables
        self._generations = generations

    def store(self, value: Any) -> None:
        """Publish *value* under the snapshot taken before the read."""
        if self._store is None:
            return
        self._store.put(self._key, _Entry(self._tables, self._generations, value))


class _CacheStats:
    """Racy per-cache counters — lost updates only skew the ratio gauge."""

    __slots__ = ("hits", "misses", "bypasses", "_hit_child", "_miss_child",
                 "_bypass_child", "_ratio_child")

    def __init__(self, name: str) -> None:
        self.hits = 0
        self.misses = 0
        self.bypasses = 0
        self._hit_child = _REQUESTS.labels(name, "hit")
        self._miss_child = _REQUESTS.labels(name, "miss")
        self._bypass_child = _REQUESTS.labels(name, "bypass")
        self._ratio_child = _HIT_RATIO.labels(name)

    def hit(self) -> None:
        self.hits += 1
        self._hit_child.inc()
        self._maybe_refresh_gauge()

    def miss(self) -> None:
        self.misses += 1
        self._miss_child.inc()
        self._maybe_refresh_gauge()

    def bypass(self) -> None:
        self.bypasses += 1
        self._bypass_child.inc()

    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return (self.hits / total) if total else 0.0

    def refresh_gauge(self) -> None:
        self._ratio_child.set(self.hit_ratio())

    def _maybe_refresh_gauge(self) -> None:
        if (self.hits + self.misses) & _GAUGE_REFRESH_MASK == 0:
            self.refresh_gauge()


class CatalogCache:
    """Generation-stamped read caches for one :class:`MetadataCatalog`.

    The cache shares its :class:`GenerationMap` with the catalog's
    :class:`~repro.db.engine.Database`, so commits on *any* connection
    of that database (including replication apply) invalidate entries.
    ``enabled`` may be flipped at runtime (the bench ablation axis);
    disabling bypasses lookups and stores but keeps entries, which
    revalidate against current generations when re-enabled.
    """

    def __init__(
        self,
        database: "Database",
        enabled: bool = True,
        query_capacity: int = 1024,
        object_capacity: int = 4096,
        attr_capacity: int = 1024,
    ) -> None:
        self.enabled = enabled
        self.generations: GenerationMap = database.generations
        self._attr_defs: LRUCache[Any, _Entry] = LRUCache(attr_capacity)
        self._objects: LRUCache[Any, _Entry] = LRUCache(object_capacity)
        self._queries: LRUCache[Any, _Entry] = LRUCache(query_capacity)
        self._stats = {
            "attr_def": _CacheStats("attr_def"),
            "object": _CacheStats("object"),
            "query": _CacheStats("query"),
        }
        self._stats_guard = threading.Lock()

    # -- generic lookup machinery -------------------------------------------

    def _lookup(
        self,
        cache_name: str,
        store: LRUCache[Any, _Entry],
        conn: Optional["Connection"],
        key: Hashable,
        tables: Tuple[str, ...],
        generations: Optional[Tuple[int, ...]] = None,
    ) -> LookupToken:
        stats = self._stats[cache_name]
        if not self.enabled or self._must_bypass(conn, tables):
            stats.bypass()
            return LookupToken(hit=False)
        if generations is None:
            generations = self.generations.snapshot(tables)
        try:
            entry = store.get(key)
        except TypeError:  # unhashable key component
            stats.bypass()
            return LookupToken(hit=False)
        if (
            entry is not None
            and entry.tables == tables
            and entry.generations == generations
        ):
            stats.hit()
            return LookupToken(hit=True, value=entry.value)
        stats.miss()
        return LookupToken(
            hit=False,
            store=store,
            key=key,
            tables=tables,
            generations=generations,
        )

    @staticmethod
    def _must_bypass(conn: Optional["Connection"], tables: Tuple[str, ...]) -> bool:
        """True when *conn* is mid-transaction with writes to *tables*.

        Its uncommitted rows are visible to it (same connection) but must
        not leak into — or be shadowed by — the shared cache.
        """
        if conn is None or not conn.in_transaction:
            return False
        written = conn.transaction_written_tables
        if not written:
            return False
        return any(t in written for t in tables)

    # -- the three caches ----------------------------------------------------

    def lookup_attr_def(self, conn: Optional["Connection"], name: str) -> LookupToken:
        return self._lookup("attr_def", self._attr_defs, conn, name, ("attribute_def",))

    def lookup_object_id(
        self,
        conn: Optional["Connection"],
        table: str,
        name: str,
        version: Optional[int],
    ) -> LookupToken:
        return self._lookup(
            "object", self._objects, conn, (table, name, version), (table,)
        )

    def lookup_query(
        self,
        conn: Optional["Connection"],
        key: Hashable,
        tables: Tuple[str, ...],
        generations: Optional[Tuple[int, ...]] = None,
    ) -> LookupToken:
        """Query-result lookup.

        Pass ``generations`` captured *before* compiling the query when
        compilation itself reads the catalog (it resolves collection
        ids): a snapshot taken afterwards could stamp a result computed
        from pre-commit state with post-commit generations.
        """
        return self._lookup(
            "query", self._queries, conn, key, tables, generations=generations
        )

    # -- management ----------------------------------------------------------

    def clear(self) -> None:
        self._attr_defs.clear()
        self._objects.clear()
        self._queries.clear()

    def stats(self) -> dict[str, Any]:
        """Per-cache counters for ``mcs stats`` and ``op_stats``."""
        out: dict[str, Any] = {"enabled": self.enabled}
        sizes = {
            "attr_def": self._attr_defs,
            "object": self._objects,
            "query": self._queries,
        }
        for name, stats in self._stats.items():
            stats.refresh_gauge()
            store = sizes[name]
            out[name] = {
                "hits": stats.hits,
                "misses": stats.misses,
                "bypasses": stats.bypasses,
                "hit_ratio": round(stats.hit_ratio(), 4),
                "entries": len(store),
                "evictions": store.evictions,
            }
        return out
