"""Deterministic, seedable fault injection.

A :class:`FaultPlan` is an ordered list of :class:`FaultRule` s; each
rule matches injection sites by ``(layer, op)`` fnmatch patterns and
injects one fault *kind* at a given rate.  Sites threaded through the
tree call :func:`check` with their layer/op; when a plan is active and a
rule fires, the returned :class:`Injection` tells the site what to do.

Layers wired in this tree:

==============  ==========================================  ==========
layer           site                                        op
==============  ==========================================  ==========
soap.direct     DirectTransport.call / call_bulk            method
soap.loopback   LoopbackCodecTransport.call / call_bulk     method
soap.http       HttpTransport.call / call_bulk              method
soap.server     SoapServer dispatch                         method
repl.ship       Replica batch apply (before any row lands)  replica
rls.update      PeriodicUpdater.tick                        updater
fed.query       FederatedMCS per-member subquery            catalog id
==============  ==========================================  ==========

Kinds: ``error`` (TransportError), ``timeout`` (TransportError after the
rule's latency), ``latency`` (sleep, then proceed), ``torn`` (truncate
the response bytes → client-side EncodingError), ``lost_reply`` (the
operation executes but the reply is dropped — the canonical duplicate-
write hazard), and ``fault`` (a SOAP fault envelope with the rule's
code).

Determinism: every rule draws from its own :class:`random.Random` seeded
from ``(plan.seed, rule index)``, and draws happen under the plan lock in
call order — a single-threaded workload replays the exact same fault
sequence for a given seed.

Activation: :func:`install` / the :func:`active` context manager /
``REPRO_FAULTS=<spec>`` in the environment (parsed at import; see
:meth:`FaultPlan.parse` for the grammar).
"""

from __future__ import annotations

import fnmatch
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from random import Random
from typing import Iterator, Optional, Sequence

from repro.obs import trace as _trace
from repro.obs.metrics import counter as _obs_counter

KINDS = ("error", "timeout", "latency", "torn", "lost_reply", "fault")

_FAULTS_INJECTED = _obs_counter(
    "mcs_faults_injected_total",
    "Faults injected by the repro.faults engine",
    labels=("layer", "kind"),
)


@dataclass
class FaultRule:
    """One injection rule: where (layer/op patterns), what (kind), how often."""

    layer: str
    op: str = "*"
    kind: str = "error"
    rate: float = 1.0
    latency_ms: float = 10.0
    code: str = "Server.Unavailable"
    times: Optional[int] = None  # stop after this many injections
    after: int = 0  # skip the first N matching calls

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; one of {KINDS}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be within [0, 1]")
        if self.times is not None and self.times < 0:
            raise ValueError("times must be >= 0")
        if self.after < 0:
            raise ValueError("after must be >= 0")

    def matches(self, layer: str, op: str) -> bool:
        return fnmatch.fnmatchcase(layer, self.layer) and fnmatch.fnmatchcase(
            op, self.op
        )


class Injection:
    """A fault decision handed to an injection site."""

    __slots__ = ("kind", "rule", "layer", "op")

    def __init__(self, kind: str, rule: FaultRule, layer: str, op: str) -> None:
        self.kind = kind
        self.rule = rule
        self.layer = layer
        self.op = op

    def _message(self) -> str:
        return f"injected {self.kind} at {self.layer}:{self.op}"

    def pre(self) -> None:
        """Apply before the call runs: raise, sleep, or arm a post effect.

        ``torn`` and ``lost_reply`` are post-call effects (the operation
        must execute first); the site applies them via :meth:`tear` or by
        raising after the call.
        """
        # Lazy import: repro.faults must be importable before repro.soap
        # finishes initialising (transports import this module).
        from repro.soap.envelope import SoapFault
        from repro.soap.errors import TransportError

        if self.kind == "latency":
            time.sleep(self.rule.latency_ms / 1000.0)
        elif self.kind == "error":
            raise TransportError(self._message())
        elif self.kind == "timeout":
            time.sleep(self.rule.latency_ms / 1000.0)
            raise TransportError(self._message())
        elif self.kind == "fault":
            raise SoapFault(self.rule.code, self._message())

    async def pre_async(self) -> None:
        """:meth:`pre` for coroutine injection sites.

        Identical semantics, but latency is spent in ``asyncio.sleep``
        so an injected delay parks one task instead of stalling the
        event loop (and every other connection on it).
        """
        import asyncio

        from repro.soap.envelope import SoapFault
        from repro.soap.errors import TransportError

        if self.kind == "latency":
            await asyncio.sleep(self.rule.latency_ms / 1000.0)
        elif self.kind == "error":
            raise TransportError(self._message())
        elif self.kind == "timeout":
            await asyncio.sleep(self.rule.latency_ms / 1000.0)
            raise TransportError(self._message())
        elif self.kind == "fault":
            raise SoapFault(self.rule.code, self._message())

    def fail(self) -> None:
        """Apply at a non-envelope site (replication, RLS, federation):
        every failing kind degrades to an exception, latency to a sleep."""
        from repro.soap.envelope import SoapFault
        from repro.soap.errors import TransportError

        if self.kind == "latency":
            time.sleep(self.rule.latency_ms / 1000.0)
        elif self.kind == "fault":
            raise SoapFault(self.rule.code, self._message())
        elif self.kind == "timeout":
            time.sleep(self.rule.latency_ms / 1000.0)
            raise TransportError(self._message())
        else:  # error, torn, lost_reply
            raise TransportError(self._message())

    def raise_as_fault(self) -> None:
        """Apply inside server dispatch: surface as a SOAP fault envelope
        (``Server.Unavailable`` by default, which clients may retry)."""
        from repro.soap.envelope import SoapFault

        if self.kind == "latency":
            time.sleep(self.rule.latency_ms / 1000.0)
            return
        if self.kind == "timeout":
            time.sleep(self.rule.latency_ms / 1000.0)
        raise SoapFault(self.rule.code, self._message())

    def tear(self, body: bytes) -> bytes:
        """Truncate a response body (the ``torn`` kind)."""
        return body[: max(1, len(body) // 2)]


class FaultPlan:
    """An activatable set of rules with deterministic per-rule randomness."""

    def __init__(self, rules: Sequence[FaultRule], seed: int = 0) -> None:
        self.rules = list(rules)
        self.seed = seed
        self._lock = threading.Lock()
        self._rngs = [Random(hash((seed, i))) for i in range(len(self.rules))]
        self._seen = [0] * len(self.rules)
        self._hits = [0] * len(self.rules)
        self._events: list[str] = []

    def decide(self, layer: str, op: str) -> Optional[Injection]:
        """First matching rule that fires wins; None means run clean."""
        for i, rule in enumerate(self.rules):
            if not rule.matches(layer, op):
                continue
            with self._lock:
                self._seen[i] += 1
                if self._seen[i] <= rule.after:
                    continue
                if rule.times is not None and self._hits[i] >= rule.times:
                    continue
                if rule.rate < 1.0 and self._rngs[i].random() >= rule.rate:
                    continue
                self._hits[i] += 1
                fid = f"{layer}:{op}#{self._hits[i]}"
                self._events.append(fid)
            _FAULTS_INJECTED.labels(layer, rule.kind).inc()
            _trace.annotate(f"fault {fid} kind={rule.kind}")
            return Injection(rule.kind, rule, layer, op)
        return None

    @property
    def injected(self) -> int:
        """Total injections so far, across all rules."""
        with self._lock:
            return sum(self._hits)

    @property
    def events(self) -> list[str]:
        """Every fault id injected so far, in injection order.

        The ids are the same strings stamped onto span annotations
        (``fault <id> kind=<kind>``), so a chaos test can assert that
        each injected fault is visible in the assembled trace.
        """
        with self._lock:
            return list(self._events)

    def reset(self) -> None:
        """Rewind counters and RNG streams to the freshly-parsed state."""
        with self._lock:
            self._rngs = [Random(hash((self.seed, i))) for i in range(len(self.rules))]
            self._seen = [0] * len(self.rules)
            self._hits = [0] * len(self.rules)
            self._events = []

    def active(self):
        """Context manager installing this plan for the dynamic extent."""
        return active(self)

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` spec grammar::

            spec   := clause (";" clause)*
            clause := "seed=" int
                    | site "=" kind ["@" rate] ("," key "=" value)*
            site   := layer-pattern [":" op-pattern]

        Keys: ``ms`` (latency/timeout milliseconds), ``code`` (fault
        code), ``times``, ``after``.  Example::

            seed=7;soap.http:*=error@0.05;repl.ship=latency,ms=2
        """
        seed = 0
        rules: list[FaultRule] = []
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            site, _, rhs = clause.partition("=")
            site = site.strip()
            rhs = rhs.strip()
            if not rhs:
                raise ValueError(f"malformed fault clause {clause!r}")
            if site == "seed":
                seed = int(rhs)
                continue
            layer, _, op = site.partition(":")
            kind_part, *options = rhs.split(",")
            kind, _, rate_part = kind_part.partition("@")
            kwargs: dict = {
                "layer": layer.strip(),
                "op": op.strip() or "*",
                "kind": kind.strip(),
            }
            if rate_part:
                kwargs["rate"] = float(rate_part)
            for option in options:
                key, _, value = option.partition("=")
                key = key.strip()
                value = value.strip()
                if key == "ms":
                    kwargs["latency_ms"] = float(value)
                elif key == "code":
                    kwargs["code"] = value
                elif key == "times":
                    kwargs["times"] = int(value)
                elif key == "after":
                    kwargs["after"] = int(value)
                else:
                    raise ValueError(f"unknown fault option {key!r} in {clause!r}")
            rules.append(FaultRule(**kwargs))
        return cls(rules, seed=seed)


# -- activation --------------------------------------------------------------

_ACTIVE: Optional[FaultPlan] = None


def install(plan: Optional[FaultPlan]) -> None:
    """Make *plan* the process-wide active plan (None deactivates)."""
    global _ACTIVE
    _ACTIVE = plan


def uninstall() -> None:
    install(None)


def get_active() -> Optional[FaultPlan]:
    return _ACTIVE


def check(layer: str, op: str) -> Optional[Injection]:
    """The one call every injection site makes; near-free when inactive."""
    plan = _ACTIVE
    if plan is None:
        return None
    return plan.decide(layer, op)


@contextmanager
def active(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Activate *plan* for a ``with`` block, restoring the previous plan."""
    previous = _ACTIVE
    install(plan)
    try:
        yield plan
    finally:
        install(previous)


def install_from_env(environ=None) -> Optional[FaultPlan]:
    """Activate a plan from ``REPRO_FAULTS``, if set; returns it."""
    import os

    spec = (environ if environ is not None else os.environ).get("REPRO_FAULTS")
    if not spec:
        return None
    plan = FaultPlan.parse(spec)
    install(plan)
    return plan
