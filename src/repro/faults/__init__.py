"""repro.faults: deterministic, seedable fault injection.

See :mod:`repro.faults.plan` for the engine and the spec grammar, and
``INTERNALS.md`` for the layer/op table.  Importing this package honours
the ``REPRO_FAULTS`` environment hook.
"""

from repro.faults.plan import (
    KINDS,
    FaultPlan,
    FaultRule,
    Injection,
    active,
    check,
    get_active,
    install,
    install_from_env,
    uninstall,
)

__all__ = [
    "KINDS",
    "FaultPlan",
    "FaultRule",
    "Injection",
    "active",
    "check",
    "get_active",
    "install",
    "install_from_env",
    "uninstall",
]

install_from_env()
