"""Pytest fixtures for fault injection (the chaos lane's entry point).

Load from a conftest with ``pytest_plugins = ["repro.faults.pytest_plugin"]``
or import the fixtures directly.
"""

from __future__ import annotations

from typing import Iterator, Union

import pytest

from repro.faults.plan import FaultPlan, active


@pytest.fixture()
def fault_plan() -> Iterator:
    """Factory fixture: parse/activate a plan for the test's duration.

    Usage::

        def test_something(fault_plan):
            plan = fault_plan("seed=7;soap.http:*=error@0.05")
            ...  # faults active until the test ends
    """
    stack = []

    def _activate(spec_or_plan: Union[str, FaultPlan]) -> FaultPlan:
        plan = (
            FaultPlan.parse(spec_or_plan)
            if isinstance(spec_or_plan, str)
            else spec_or_plan
        )
        manager = active(plan)
        manager.__enter__()
        stack.append(manager)
        return plan

    yield _activate
    while stack:
        stack.pop().__exit__(None, None, None)


@pytest.fixture()
def no_faults() -> Iterator[None]:
    """Guarantee a clean run even if REPRO_FAULTS leaked into the env."""
    from repro.faults import plan as _plan

    previous = _plan.get_active()
    _plan.uninstall()
    yield
    _plan.install(previous)
