"""Executes concrete workflows against the simulated Grid.

Compute jobs synthesize output content at their site; transfer jobs run
through the GridFTP simulator; registration jobs publish metadata to the
MCS (with the job's per-output user attributes and a provenance record)
and replica locations to the RLS.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from repro.core.client import MCSClient
from repro.core.errors import DuplicateObjectError
from repro.gridftp.transfer import GridFTPServer
from repro.pegasus.planner import ConcreteJob, ConcreteWorkflow
from repro.rls.client import RLSClient


@dataclass
class ExecutionReport:
    """What happened during one workflow run."""

    workflow: str
    executed: list[str] = field(default_factory=list)
    simulated_seconds: float = 0.0
    bytes_transferred: int = 0
    registered_files: list[str] = field(default_factory=list)

    def count(self, kind: str) -> int:
        return sum(1 for job_id in self.executed if job_id.startswith(kind + ":"))


class WorkflowExecutor:
    """Runs jobs in topological order over the simulated substrate."""

    def __init__(
        self,
        mcs: MCSClient,
        rls: RLSClient,
        gridftp: GridFTPServer,
        lrc_for_site: Optional[dict[str, str]] = None,
    ) -> None:
        self.mcs = mcs
        self.rls = rls
        self.gridftp = gridftp
        # site name -> lrc id registering that site's replicas
        self.lrc_for_site = lrc_for_site or {}

    def execute(self, workflow: ConcreteWorkflow) -> ExecutionReport:
        report = ExecutionReport(workflow=workflow.name)
        for job in workflow.execution_order():
            if job.kind == "compute":
                self._run_compute(job, report)
            elif job.kind == "transfer":
                self._run_transfer(job, report)
            elif job.kind == "register":
                self._run_register(job, report)
            report.executed.append(job.id)
        return report

    # -- job kinds ----------------------------------------------------------

    def _run_compute(self, job: ConcreteJob, report: ExecutionReport) -> None:
        site = self.gridftp.sites[job.site]
        for logical in job.logical_outputs:
            seed = f"{job.transformation}:{logical}".encode()
            block = hashlib.sha256(seed).digest()
            size = max(1, job.output_size_bytes)
            content = (block * (size // len(block) + 1))[:size]
            site.store(logical, content)
        report.simulated_seconds += job.runtime_seconds

    def _run_transfer(self, job: ConcreteJob, report: ExecutionReport) -> None:
        result = self.gridftp.transfer(job.source_url, job.dest_url)
        report.simulated_seconds += result.simulated_seconds
        report.bytes_transferred += result.size_bytes

    def _run_register(self, job: ConcreteJob, report: ExecutionReport) -> None:
        site_name = job.site
        lrc_id = self.lrc_for_site.get(site_name)
        for logical in job.logical_outputs:
            metadata = job.output_metadata.get(logical, {})
            try:
                self.mcs.create_logical_file(
                    logical,
                    data_type="derived",
                    attributes=metadata or None,
                )
            except DuplicateObjectError:
                if metadata:
                    self.mcs.set_attributes("file", logical, metadata)
            self.mcs.add_transformation(
                logical,
                f"produced by {job.abstract_id} at {site_name}",
            )
            if lrc_id is not None and lrc_id in self.rls.lrcs:
                self.rls.lrcs[lrc_id].add_mapping(
                    logical, f"gsiftp://{site_name}/{logical}"
                )
            report.registered_files.append(logical)
        self.rls.refresh_all()
