"""The planner: abstract workflow → executable concrete workflow.

Mirrors the Pegasus behaviour the paper describes (§6.1):

1. **Discovery** — for every logical file the workflow would produce, ask
   the MCS whether a valid materialization already exists and the RLS
   whether a replica is reachable; if both, the producing job (and any
   job only needed for it) is pruned — *workflow reduction*.
2. **Site mapping** — each surviving compute job is assigned to a site
   (round-robin by default; pluggable).
3. **Data staging** — for every input not already at the chosen site, a
   transfer job is inserted (replica selected through the RLS).
4. **Registration** — each compute job is followed by a registration job
   that publishes its outputs' metadata to the MCS and location to the RLS.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.core.client import MCSClient
from repro.core.query import ObjectQuery
from repro.pegasus.abstract import AbstractJob, AbstractWorkflow
from repro.pegasus.dag import DAG
from repro.rls.client import RLSClient


@dataclass
class ConcreteJob:
    """One schedulable job in the concrete workflow."""

    id: str
    kind: str  # "compute" | "transfer" | "register"
    site: Optional[str] = None
    transformation: Optional[str] = None
    abstract_id: Optional[str] = None
    source_url: Optional[str] = None
    dest_url: Optional[str] = None
    logical_outputs: tuple[str, ...] = ()
    output_metadata: dict[str, dict[str, Any]] = field(default_factory=dict)
    runtime_seconds: float = 0.0
    output_size_bytes: int = 0


@dataclass
class ConcreteWorkflow:
    """Concrete jobs plus their execution DAG and planning statistics."""

    name: str
    jobs: dict[str, ConcreteJob]
    dag: DAG
    reused_files: dict[str, str]      # logical name -> chosen replica URL
    pruned_jobs: tuple[str, ...]      # abstract job ids removed by reuse

    def execution_order(self) -> list[ConcreteJob]:
        return [self.jobs[job_id] for job_id in self.dag.topological_order()]

    def counts(self) -> dict[str, int]:
        out = {"compute": 0, "transfer": 0, "register": 0}
        for job in self.jobs.values():
            out[job.kind] += 1
        return out


class PegasusPlanner:
    """Plans abstract workflows against an MCS + RLS + site list."""

    def __init__(
        self,
        mcs: MCSClient,
        rls: RLSClient,
        sites: Sequence[str],
        site_selector: Optional[Callable[[AbstractJob, Sequence[str]], str]] = None,
    ) -> None:
        if not sites:
            raise ValueError("at least one execution site is required")
        self.mcs = mcs
        self.rls = rls
        self.sites = list(sites)
        self._site_selector = site_selector
        self._round_robin = itertools.cycle(self.sites)

    # -- discovery ----------------------------------------------------------

    def discover_existing(self, workflow: AbstractWorkflow) -> dict[str, str]:
        """Logical outputs that already exist (valid in MCS + replica in RLS).

        Returns {logical name: replica URL}.
        """
        out: dict[str, str] = {}
        for job in workflow.jobs.values():
            for logical in job.outputs:
                try:
                    record = self.mcs.get_logical_file(logical)
                except Exception:
                    continue
                if not record.get("valid", False):
                    continue
                replica = self.rls.best_replica(logical)
                if replica is not None:
                    out[logical] = replica
        return out

    def query_data_products(self, conditions: dict[str, Any]) -> list[str]:
        """Attribute-based discovery, as Pegasus issues on user requests."""
        query = ObjectQuery()
        for attr, value in conditions.items():
            query.where(attr, "=", value)
        return self.mcs.query(query)

    # -- reduction -------------------------------------------------------------

    @staticmethod
    def reduce_workflow(
        workflow: AbstractWorkflow, existing: dict[str, str]
    ) -> tuple[set[str], set[str]]:
        """Jobs to run and jobs pruned, given already-materialized files.

        A job is prunable when *all* of its outputs already exist; pruning
        cascades: a job needed only to feed pruned jobs is pruned too.
        """
        dag = workflow.dependency_dag()
        prunable = {
            job.id
            for job in workflow.jobs.values()
            if job.outputs and all(o in existing for o in job.outputs)
        }
        # Cascade upstream: an ancestor is pruned if every path from it
        # leads only into pruned jobs (its outputs unused elsewhere).
        changed = True
        while changed:
            changed = False
            for job in workflow.jobs.values():
                if job.id in prunable:
                    continue
                succs = dag.successors(job.id)
                if succs and succs <= prunable:
                    # outputs only feed pruned jobs; also not final outputs
                    if not (set(job.outputs) & workflow.final_outputs()):
                        prunable.add(job.id)
                        changed = True
        keep = set(workflow.jobs) - prunable
        return keep, prunable

    # -- full planning pass -------------------------------------------------------

    def plan(self, workflow: AbstractWorkflow) -> ConcreteWorkflow:
        workflow.validate()
        existing = self.discover_existing(workflow)
        keep, pruned = self.reduce_workflow(workflow, existing)

        jobs: dict[str, ConcreteJob] = {}
        dag = DAG()
        produced_at: dict[str, tuple[str, str]] = {}  # logical -> (job id, site)

        abstract_dag = workflow.dependency_dag()
        order = [j for j in abstract_dag.topological_order() if j in keep]

        for abstract_id in order:
            job = workflow.jobs[abstract_id]
            site = self._select_site(job)
            compute_id = f"compute:{abstract_id}"
            compute = ConcreteJob(
                id=compute_id,
                kind="compute",
                site=site,
                transformation=job.transformation,
                abstract_id=abstract_id,
                logical_outputs=job.outputs,
                output_metadata=job.output_metadata,
                runtime_seconds=job.runtime_seconds,
                output_size_bytes=job.output_size_bytes,
            )
            jobs[compute_id] = compute
            dag.add_node(compute_id)

            for logical in job.inputs:
                if logical in produced_at:
                    upstream_id, upstream_site = produced_at[logical]
                    if upstream_site == site:
                        dag.add_edge(upstream_id, compute_id)
                        continue
                    transfer_id = f"transfer:{logical}->{site}"
                    if transfer_id not in jobs:
                        jobs[transfer_id] = ConcreteJob(
                            id=transfer_id,
                            kind="transfer",
                            site=site,
                            source_url=f"gsiftp://{upstream_site}/{logical}",
                            dest_url=f"gsiftp://{site}/{logical}",
                        )
                        dag.add_edge(upstream_id, transfer_id)
                    dag.add_edge(transfer_id, compute_id)
                    continue
                # External or reused input: find a replica via the RLS.
                replica = existing.get(logical) or self.rls.best_replica(logical)
                if replica is None:
                    raise LookupError(
                        f"no replica of required input {logical!r} "
                        f"(and no job produces it)"
                    )
                if replica.startswith(f"gsiftp://{site}/"):
                    continue  # already local
                transfer_id = f"transfer:{logical}->{site}"
                if transfer_id not in jobs:
                    jobs[transfer_id] = ConcreteJob(
                        id=transfer_id,
                        kind="transfer",
                        site=site,
                        source_url=replica,
                        dest_url=f"gsiftp://{site}/{logical}",
                    )
                    dag.add_node(transfer_id)
                dag.add_edge(transfer_id, compute_id)

            register_id = f"register:{abstract_id}"
            jobs[register_id] = ConcreteJob(
                id=register_id,
                kind="register",
                site=site,
                abstract_id=abstract_id,
                logical_outputs=job.outputs,
                output_metadata=job.output_metadata,
            )
            dag.add_edge(compute_id, register_id)

            for logical in job.outputs:
                produced_at[logical] = (compute_id, site)

        return ConcreteWorkflow(
            name=workflow.name,
            jobs=jobs,
            dag=dag,
            reused_files=existing,
            pruned_jobs=tuple(sorted(pruned)),
        )

    def _select_site(self, job: AbstractJob) -> str:
        if self._site_selector is not None:
            return self._site_selector(job, self.sites)
        return next(self._round_robin)
