"""Pegasus-like workflow planning substrate.

Reproduces the MCS ↔ Pegasus interaction of §6.1: the planner receives an
abstract workflow (or a metadata request), queries the MCS to discover
already-materialized data products, prunes the jobs that would recompute
them (workflow *reduction*), maps the remainder onto Grid sites with
transfer jobs, and registers newly derived products back into the MCS and
the RLS.
"""

from repro.pegasus.dag import DAG, CycleDetectedError
from repro.pegasus.abstract import AbstractJob, AbstractWorkflow
from repro.pegasus.planner import ConcreteJob, ConcreteWorkflow, PegasusPlanner
from repro.pegasus.executor import WorkflowExecutor

__all__ = [
    "DAG",
    "CycleDetectedError",
    "AbstractJob",
    "AbstractWorkflow",
    "PegasusPlanner",
    "ConcreteJob",
    "ConcreteWorkflow",
    "WorkflowExecutor",
]
