"""Abstract workflows: transformations over logical files.

An abstract workflow names *what* to compute (transformations consuming
and producing logical files) without saying *where*; the planner binds it
to sites and data locations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from repro.pegasus.dag import DAG


@dataclass
class AbstractJob:
    """One transformation: logical inputs → logical outputs."""

    id: str
    transformation: str
    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()
    parameters: dict[str, Any] = field(default_factory=dict)
    output_metadata: dict[str, dict[str, Any]] = field(default_factory=dict)
    """Per-output user-attribute values to register in the MCS."""
    runtime_seconds: float = 1.0
    output_size_bytes: int = 1 << 20


class AbstractWorkflow:
    """A set of abstract jobs wired by logical-file data dependencies."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.jobs: dict[str, AbstractJob] = {}

    def add_job(self, job: AbstractJob) -> "AbstractWorkflow":
        if job.id in self.jobs:
            raise ValueError(f"duplicate job id {job.id!r}")
        for output in job.outputs:
            existing = self.producer_of(output)
            if existing is not None:
                raise ValueError(
                    f"logical file {output!r} produced by both "
                    f"{existing.id!r} and {job.id!r}"
                )
        self.jobs[job.id] = job
        return self

    def producer_of(self, logical_name: str) -> Optional[AbstractJob]:
        for job in self.jobs.values():
            if logical_name in job.outputs:
                return job
        return None

    def external_inputs(self) -> set[str]:
        """Logical files consumed but not produced by any job."""
        produced = {o for job in self.jobs.values() for o in job.outputs}
        consumed = {i for job in self.jobs.values() for i in job.inputs}
        return consumed - produced

    def final_outputs(self) -> set[str]:
        """Logical files produced but not consumed downstream."""
        produced = {o for job in self.jobs.values() for o in job.outputs}
        consumed = {i for job in self.jobs.values() for i in job.inputs}
        return produced - consumed

    def dependency_dag(self) -> DAG:
        """Job-level DAG implied by logical-file producer/consumer pairs."""
        dag = DAG()
        for job in self.jobs.values():
            dag.add_node(job.id)
        for job in self.jobs.values():
            for needed in job.inputs:
                producer = self.producer_of(needed)
                if producer is not None and producer.id != job.id:
                    dag.add_edge(producer.id, job.id)
        return dag

    def validate(self) -> None:
        """Raises on cyclic data dependencies."""
        self.dependency_dag().topological_order()
