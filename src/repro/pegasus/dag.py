"""A small directed acyclic graph with the operations planning needs."""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator


class CycleDetectedError(Exception):
    """An edge insertion or a topological sort found a cycle."""


class DAG:
    """Adjacency-set DAG over hashable node ids."""

    def __init__(self) -> None:
        self._succ: dict[Hashable, set[Hashable]] = {}
        self._pred: dict[Hashable, set[Hashable]] = {}

    # -- construction ------------------------------------------------------

    def add_node(self, node: Hashable) -> None:
        self._succ.setdefault(node, set())
        self._pred.setdefault(node, set())

    def add_edge(self, src: Hashable, dst: Hashable) -> None:
        """Insert src → dst, rejecting edges that would close a cycle."""
        self.add_node(src)
        self.add_node(dst)
        if src == dst or self.reaches(dst, src):
            raise CycleDetectedError(f"edge {src!r} -> {dst!r} creates a cycle")
        self._succ[src].add(dst)
        self._pred[dst].add(src)

    def remove_node(self, node: Hashable) -> None:
        for succ in self._succ.pop(node, set()):
            self._pred[succ].discard(node)
        for pred in self._pred.pop(node, set()):
            self._succ[pred].discard(node)

    # -- queries --------------------------------------------------------------

    def __contains__(self, node: Hashable) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def nodes(self) -> list:
        return list(self._succ)

    def successors(self, node: Hashable) -> set:
        return set(self._succ.get(node, ()))

    def predecessors(self, node: Hashable) -> set:
        return set(self._pred.get(node, ()))

    def roots(self) -> list:
        return [n for n, preds in self._pred.items() if not preds]

    def leaves(self) -> list:
        return [n for n, succs in self._succ.items() if not succs]

    def reaches(self, src: Hashable, dst: Hashable) -> bool:
        """True when dst is reachable from src."""
        if src not in self._succ:
            return False
        stack = [src]
        seen = set()
        while stack:
            node = stack.pop()
            if node == dst:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._succ.get(node, ()))
        return False

    def ancestors(self, node: Hashable) -> set:
        out: set = set()
        stack = list(self._pred.get(node, ()))
        while stack:
            current = stack.pop()
            if current in out:
                continue
            out.add(current)
            stack.extend(self._pred.get(current, ()))
        return out

    def descendants(self, node: Hashable) -> set:
        out: set = set()
        stack = list(self._succ.get(node, ()))
        while stack:
            current = stack.pop()
            if current in out:
                continue
            out.add(current)
            stack.extend(self._succ.get(current, ()))
        return out

    def topological_order(self) -> list:
        """Kahn's algorithm; raises CycleDetectedError on residual cycles."""
        in_degree = {node: len(preds) for node, preds in self._pred.items()}
        ready = [node for node, deg in in_degree.items() if deg == 0]
        out: list = []
        while ready:
            node = ready.pop()
            out.append(node)
            for succ in self._succ[node]:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    ready.append(succ)
        if len(out) != len(self._succ):
            raise CycleDetectedError("graph contains a cycle")
        return out

    def copy(self) -> "DAG":
        clone = DAG()
        clone._succ = {n: set(s) for n, s in self._succ.items()}
        clone._pred = {n: set(p) for n, p in self._pred.items()}
        return clone
