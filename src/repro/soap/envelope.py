"""SOAP envelopes: request/response framing and faults."""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Any, Optional

from repro.soap.errors import EncodingError
from repro.soap.xmlcodec import decode_value, encode_value

ENVELOPE_NS = "http://schemas.xmlsoap.org/soap/envelope/"


class SoapFault(Exception):
    """A SOAP fault: carries a machine-readable code and detail struct."""

    def __init__(self, code: str, message: str, detail: Optional[dict] = None) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.detail = detail or {}

    def __repr__(self) -> str:
        return f"SoapFault({self.code!r}, {self.message!r})"


def build_request(method: str, args: dict[str, Any]) -> bytes:
    """Serialize a method call to a SOAP request document."""
    envelope = ET.Element("Envelope", {"xmlns": ENVELOPE_NS})
    body = ET.SubElement(envelope, "Body")
    call = ET.SubElement(body, "Call")
    call.set("method", method)
    for name, value in args.items():
        arg = ET.SubElement(call, "arg")
        arg.set("name", name)
        encode_value(arg, value)
    return ET.tostring(envelope, encoding="utf-8")


def parse_request(data: bytes) -> tuple[str, dict[str, Any]]:
    """Parse a request document; returns (method, args)."""
    try:
        envelope = ET.fromstring(data)
    except ET.ParseError as exc:
        raise EncodingError(f"malformed request envelope: {exc}") from exc
    call = _find_in_body(envelope, "Call")
    method = call.get("method")
    if not method:
        raise EncodingError("request missing method name")
    args: dict[str, Any] = {}
    for arg in call:
        name = arg.get("name")
        if name is None or len(arg) != 1:
            raise EncodingError("malformed request argument")
        args[name] = decode_value(arg[0])
    return method, args


def build_response(result: Any) -> bytes:
    """Serialize a successful method result."""
    envelope = ET.Element("Envelope", {"xmlns": ENVELOPE_NS})
    body = ET.SubElement(envelope, "Body")
    response = ET.SubElement(body, "Response")
    encode_value(response, result, "result")
    return ET.tostring(envelope, encoding="utf-8")


def build_fault(fault: SoapFault) -> bytes:
    """Serialize a fault response."""
    envelope = ET.Element("Envelope", {"xmlns": ENVELOPE_NS})
    body = ET.SubElement(envelope, "Body")
    element = ET.SubElement(body, "Fault")
    element.set("code", fault.code)
    message = ET.SubElement(element, "message")
    message.text = fault.message
    encode_value(element, fault.detail, "detail")
    return ET.tostring(envelope, encoding="utf-8")


def parse_response(data: bytes) -> Any:
    """Parse a response; returns the result or raises the carried fault."""
    try:
        envelope = ET.fromstring(data)
    except ET.ParseError as exc:
        raise EncodingError(f"malformed response envelope: {exc}") from exc
    body = _body(envelope)
    for child in body:
        tag = _local(child.tag)
        if tag == "Response":
            if len(child) != 1:
                raise EncodingError("malformed response payload")
            return decode_value(child[0])
        if tag == "Fault":
            message = ""
            detail: dict = {}
            for sub in child:
                if _local(sub.tag) == "message":
                    message = sub.text or ""
                elif _local(sub.tag) == "detail":
                    detail = decode_value(sub)
            raise SoapFault(child.get("code", "Server"), message, detail)
    raise EncodingError("response carries neither Response nor Fault")


def _local(tag: str) -> str:
    return tag.rsplit("}", 1)[-1]


def _body(envelope: ET.Element) -> ET.Element:
    for child in envelope:
        if _local(child.tag) == "Body":
            return child
    raise EncodingError("envelope missing Body")


def _find_in_body(envelope: ET.Element, tag: str) -> ET.Element:
    body = _body(envelope)
    for child in body:
        if _local(child.tag) == tag:
            return child
    raise EncodingError(f"Body missing {tag}")
