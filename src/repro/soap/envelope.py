"""SOAP envelopes: request/response framing, headers, faults, and batches.

Requests may carry a ``<Header><RequestId>`` element: the client stamps
its current trace request id there and the server restores it into its
own context, so spans and log lines on both sides of the socket share
one correlation id (see :mod:`repro.obs.trace`).

Besides the one-call ``<Call>`` form, a request body may be a
``<BulkRequest>`` carrying N ``<Call>`` elements — N operations in one
HTTP round trip.  The matching ``<BulkResponse>`` carries one ``<Item>``
per operation, each either a result or an inline fault, so one bad item
never poisons the rest of the batch.

Every build/parse function feeds the ``mcs_soap_codec_seconds`` timing
histogram — the codec share of the paper's "web service overhead" — and
is measured identically whether reached through a real socket
(:class:`~repro.soap.transport.HttpTransport`) or the loopback codec
ablation transport.
"""

from __future__ import annotations

import time
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.obs.metrics import OBS, histogram as _obs_histogram
from repro.soap.errors import EncodingError
from repro.soap.xmlcodec import decode_value, encode_value

ENVELOPE_NS = "http://schemas.xmlsoap.org/soap/envelope/"

_CODEC_SECONDS = _obs_histogram(
    "mcs_soap_codec_seconds",
    "SOAP XML encode/decode time per envelope",
    labels=("op",),
)
_ENCODE_REQUEST = _CODEC_SECONDS.labels("encode_request")
_DECODE_REQUEST = _CODEC_SECONDS.labels("decode_request")
_ENCODE_RESPONSE = _CODEC_SECONDS.labels("encode_response")
_DECODE_RESPONSE = _CODEC_SECONDS.labels("decode_response")
_ENCODE_FAULT = _CODEC_SECONDS.labels("encode_fault")
_ENCODE_BULK_REQUEST = _CODEC_SECONDS.labels("encode_bulk_request")
_DECODE_BULK_REQUEST = _CODEC_SECONDS.labels("decode_bulk_request")
_ENCODE_BULK_RESPONSE = _CODEC_SECONDS.labels("encode_bulk_response")
_DECODE_BULK_RESPONSE = _CODEC_SECONDS.labels("decode_bulk_response")


class SoapFault(Exception):
    """A SOAP fault: carries a machine-readable code and detail struct."""

    def __init__(self, code: str, message: str, detail: Optional[dict] = None) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.detail = detail or {}

    def __repr__(self) -> str:
        return f"SoapFault({self.code!r}, {self.message!r})"


def _emit_header(
    envelope: ET.Element,
    request_id: Optional[str],
    header_fields: Optional[dict[str, str]],
) -> None:
    """Emit a ``<Header>`` when there is anything to carry.

    ``header_fields`` carries out-of-band per-request metadata — today
    the resilience layer's ``Deadline`` (remaining seconds budget) and
    ``IdempotencyKey`` (write-deduplication token) elements.
    """
    if request_id is None and not header_fields:
        return
    header = ET.SubElement(envelope, "Header")
    if request_id is not None:
        rid = ET.SubElement(header, "RequestId")
        rid.text = request_id
    for name, value in (header_fields or {}).items():
        element = ET.SubElement(header, name)
        element.text = value


def build_request(
    method: str,
    args: dict[str, Any],
    request_id: Optional[str] = None,
    header_fields: Optional[dict[str, str]] = None,
) -> bytes:
    """Serialize a method call to a SOAP request document.

    ``request_id``, when given, travels in a ``<Header><RequestId>``
    element for end-to-end trace correlation; ``header_fields`` adds
    further header elements (see :func:`_emit_header`).
    """
    start = time.perf_counter() if OBS.enabled else 0.0
    envelope = ET.Element("Envelope", {"xmlns": ENVELOPE_NS})
    _emit_header(envelope, request_id, header_fields)
    body = ET.SubElement(envelope, "Body")
    call = ET.SubElement(body, "Call")
    call.set("method", method)
    for name, value in args.items():
        arg = ET.SubElement(call, "arg")
        arg.set("name", name)
        encode_value(arg, value)
    out = ET.tostring(envelope, encoding="utf-8")
    if OBS.enabled:
        _ENCODE_REQUEST.observe(time.perf_counter() - start)
    return out


def parse_request_full(data: bytes) -> tuple[str, dict[str, Any], Optional[str]]:
    """Parse a request document; returns (method, args, request_id)."""
    start = time.perf_counter() if OBS.enabled else 0.0
    try:
        envelope = ET.fromstring(data)
    except ET.ParseError as exc:
        raise EncodingError(f"malformed request envelope: {exc}") from exc
    call = _find_in_body(envelope, "Call")
    method = call.get("method")
    if not method:
        raise EncodingError("request missing method name")
    args: dict[str, Any] = {}
    for arg in call:
        name = arg.get("name")
        if name is None or len(arg) != 1:
            raise EncodingError("malformed request argument")
        args[name] = decode_value(arg[0])
    request_id = _header_request_id(envelope)
    if OBS.enabled:
        _DECODE_REQUEST.observe(time.perf_counter() - start)
    return method, args, request_id


def parse_request(data: bytes) -> tuple[str, dict[str, Any]]:
    """Parse a request document; returns (method, args)."""
    method, args, _ = parse_request_full(data)
    return method, args


# --------------------------------------------------------------------------
# Bulk (multi-call) envelopes
# --------------------------------------------------------------------------


@dataclass
class BulkItem:
    """Per-operation outcome inside a bulk exchange.

    Exactly one of ``result`` (when ``ok``) or ``fault`` (when not) is
    meaningful; a failed item carries a full :class:`SoapFault` so the
    caller can surface the same typed error a single call would raise.
    """

    ok: bool
    result: Any = None
    fault: Optional[SoapFault] = None

    def unwrap(self) -> Any:
        """The result, or raise the carried fault."""
        if self.ok:
            return self.result
        assert self.fault is not None
        raise self.fault


@dataclass
class ParsedRequest:
    """A decoded request body: one call, or a batch of them."""

    calls: list[tuple[str, dict[str, Any]]] = field(default_factory=list)
    bulk: bool = False
    request_id: Optional[str] = None
    headers: dict[str, str] = field(default_factory=dict)


def build_bulk_request(
    operations: Sequence[tuple[str, dict[str, Any]]],
    request_id: Optional[str] = None,
    header_fields: Optional[dict[str, str]] = None,
) -> bytes:
    """Serialize N method calls into one ``<BulkRequest>`` document."""
    start = time.perf_counter() if OBS.enabled else 0.0
    envelope = ET.Element("Envelope", {"xmlns": ENVELOPE_NS})
    _emit_header(envelope, request_id, header_fields)
    body = ET.SubElement(envelope, "Body")
    bulk = ET.SubElement(body, "BulkRequest")
    for method, args in operations:
        call = ET.SubElement(bulk, "Call")
        call.set("method", method)
        for name, value in args.items():
            arg = ET.SubElement(call, "arg")
            arg.set("name", name)
            encode_value(arg, value)
    out = ET.tostring(envelope, encoding="utf-8")
    if OBS.enabled:
        _ENCODE_BULK_REQUEST.observe(time.perf_counter() - start)
    return out


def _parse_call(call: ET.Element) -> tuple[str, dict[str, Any]]:
    method = call.get("method")
    if not method:
        raise EncodingError("request missing method name")
    args: dict[str, Any] = {}
    for arg in call:
        name = arg.get("name")
        if name is None or len(arg) != 1:
            raise EncodingError("malformed request argument")
        args[name] = decode_value(arg[0])
    return method, args


def parse_any_request(data: bytes) -> ParsedRequest:
    """Parse a request that may be a single ``<Call>`` or a ``<BulkRequest>``."""
    start = time.perf_counter() if OBS.enabled else 0.0
    try:
        envelope = ET.fromstring(data)
    except ET.ParseError as exc:
        raise EncodingError(f"malformed request envelope: {exc}") from exc
    body = _body(envelope)
    request_id = _header_request_id(envelope)
    headers = _header_fields(envelope)
    for child in body:
        tag = _local(child.tag)
        if tag == "Call":
            parsed = ParsedRequest(
                calls=[_parse_call(child)],
                bulk=False,
                request_id=request_id,
                headers=headers,
            )
            if OBS.enabled:
                _DECODE_REQUEST.observe(time.perf_counter() - start)
            return parsed
        if tag == "BulkRequest":
            calls = []
            for sub in child:
                if _local(sub.tag) != "Call":
                    raise EncodingError(
                        f"BulkRequest carries unexpected element {_local(sub.tag)!r}"
                    )
                calls.append(_parse_call(sub))
            parsed = ParsedRequest(
                calls=calls, bulk=True, request_id=request_id, headers=headers
            )
            if OBS.enabled:
                _DECODE_BULK_REQUEST.observe(time.perf_counter() - start)
            return parsed
    raise EncodingError("Body missing Call")


def parse_bulk_request(
    data: bytes,
) -> tuple[list[tuple[str, dict[str, Any]]], Optional[str]]:
    """Parse a ``<BulkRequest>`` document; returns (operations, request_id)."""
    parsed = parse_any_request(data)
    if not parsed.bulk:
        raise EncodingError("expected a BulkRequest body")
    return parsed.calls, parsed.request_id


def build_bulk_response(
    items: Sequence[BulkItem],
    header_fields: Optional[dict[str, str]] = None,
) -> bytes:
    """Serialize per-operation outcomes into one ``<BulkResponse>``."""
    start = time.perf_counter() if OBS.enabled else 0.0
    envelope = ET.Element("Envelope", {"xmlns": ENVELOPE_NS})
    _emit_header(envelope, None, header_fields)
    body = ET.SubElement(envelope, "Body")
    bulk = ET.SubElement(body, "BulkResponse")
    for item in items:
        element = ET.SubElement(bulk, "Item")
        if item.ok:
            element.set("ok", "1")
            encode_value(element, item.result, "result")
        else:
            fault = item.fault if item.fault is not None else SoapFault("Server", "")
            element.set("ok", "0")
            element.set("code", fault.code)
            message = ET.SubElement(element, "message")
            message.text = fault.message
            encode_value(element, fault.detail, "detail")
    out = ET.tostring(envelope, encoding="utf-8")
    if OBS.enabled:
        _ENCODE_BULK_RESPONSE.observe(time.perf_counter() - start)
    return out


def parse_bulk_response(data: bytes) -> list[BulkItem]:
    """Parse a ``<BulkResponse>``; envelope-level faults are raised,
    per-item faults are returned inline (never raised)."""
    start = time.perf_counter() if OBS.enabled else 0.0
    try:
        envelope = ET.fromstring(data)
    except ET.ParseError as exc:
        raise EncodingError(f"malformed response envelope: {exc}") from exc
    body = _body(envelope)
    for child in body:
        tag = _local(child.tag)
        if tag == "BulkResponse":
            items = [_parse_bulk_item(sub) for sub in child]
            if OBS.enabled:
                _DECODE_BULK_RESPONSE.observe(time.perf_counter() - start)
            return items
        if tag == "Fault":
            raise _fault_from_element(child)
    raise EncodingError("response carries neither BulkResponse nor Fault")


def _parse_bulk_item(element: ET.Element) -> BulkItem:
    if _local(element.tag) != "Item":
        raise EncodingError(
            f"BulkResponse carries unexpected element {_local(element.tag)!r}"
        )
    ok = element.get("ok")
    if ok == "1":
        if len(element) != 1:
            raise EncodingError("malformed bulk item payload")
        return BulkItem(ok=True, result=decode_value(element[0]))
    if ok == "0":
        message = ""
        detail: dict = {}
        for sub in element:
            if _local(sub.tag) == "message":
                message = sub.text or ""
            elif _local(sub.tag) == "detail":
                detail = decode_value(sub)
        fault = SoapFault(element.get("code", "Server"), message, detail)
        return BulkItem(ok=False, fault=fault)
    raise EncodingError("bulk item missing ok flag")


def build_response(
    result: Any, header_fields: Optional[dict[str, str]] = None
) -> bytes:
    """Serialize a successful method result.

    ``header_fields`` lets the server echo per-request metadata back —
    notably the ``IdempotencyKey`` it deduplicated on.
    """
    start = time.perf_counter() if OBS.enabled else 0.0
    envelope = ET.Element("Envelope", {"xmlns": ENVELOPE_NS})
    _emit_header(envelope, None, header_fields)
    body = ET.SubElement(envelope, "Body")
    response = ET.SubElement(body, "Response")
    encode_value(response, result, "result")
    out = ET.tostring(envelope, encoding="utf-8")
    if OBS.enabled:
        _ENCODE_RESPONSE.observe(time.perf_counter() - start)
    return out


def build_fault(fault: SoapFault) -> bytes:
    """Serialize a fault response."""
    start = time.perf_counter() if OBS.enabled else 0.0
    envelope = ET.Element("Envelope", {"xmlns": ENVELOPE_NS})
    body = ET.SubElement(envelope, "Body")
    element = ET.SubElement(body, "Fault")
    element.set("code", fault.code)
    message = ET.SubElement(element, "message")
    message.text = fault.message
    encode_value(element, fault.detail, "detail")
    out = ET.tostring(envelope, encoding="utf-8")
    if OBS.enabled:
        _ENCODE_FAULT.observe(time.perf_counter() - start)
    return out


def parse_response(data: bytes) -> Any:
    """Parse a response; returns the result or raises the carried fault."""
    if not OBS.enabled:
        return _parse_response(data)
    start = time.perf_counter()
    try:
        return _parse_response(data)
    finally:
        _DECODE_RESPONSE.observe(time.perf_counter() - start)


def parse_response_full(data: bytes) -> tuple[Any, dict[str, str]]:
    """Like :func:`parse_response`, but also returns the response headers
    (e.g. the server's ``IdempotencyKey`` echo)."""
    try:
        envelope = ET.fromstring(data)
    except ET.ParseError as exc:
        raise EncodingError(f"malformed response envelope: {exc}") from exc
    return _parse_response(data), _header_fields(envelope)


def _parse_response(data: bytes) -> Any:
    try:
        envelope = ET.fromstring(data)
    except ET.ParseError as exc:
        raise EncodingError(f"malformed response envelope: {exc}") from exc
    body = _body(envelope)
    for child in body:
        tag = _local(child.tag)
        if tag == "Response":
            if len(child) != 1:
                raise EncodingError("malformed response payload")
            return decode_value(child[0])
        if tag == "Fault":
            raise _fault_from_element(child)
    raise EncodingError("response carries neither Response nor Fault")


def _fault_from_element(element: ET.Element) -> SoapFault:
    message = ""
    detail: dict = {}
    for sub in element:
        if _local(sub.tag) == "message":
            message = sub.text or ""
        elif _local(sub.tag) == "detail":
            detail = decode_value(sub)
    return SoapFault(element.get("code", "Server"), message, detail)


def _local(tag: str) -> str:
    return tag.rsplit("}", 1)[-1]


def _header_request_id(envelope: ET.Element) -> Optional[str]:
    for child in envelope:
        if _local(child.tag) == "Header":
            for sub in child:
                if _local(sub.tag) == "RequestId":
                    return sub.text
    return None


def _header_fields(envelope: ET.Element) -> dict[str, str]:
    """All header elements except RequestId, as ``{localname: text}``."""
    fields: dict[str, str] = {}
    for child in envelope:
        if _local(child.tag) == "Header":
            for sub in child:
                name = _local(sub.tag)
                if name != "RequestId":
                    fields[name] = sub.text or ""
    return fields


def _body(envelope: ET.Element) -> ET.Element:
    for child in envelope:
        if _local(child.tag) == "Body":
            return child
    raise EncodingError("envelope missing Body")


def _find_in_body(envelope: ET.Element, tag: str) -> ET.Element:
    body = _body(envelope)
    for child in body:
        if _local(child.tag) == tag:
            return child
    raise EncodingError(f"Body missing {tag}")
