"""Asyncio call transports — the coroutine twins of ``soap.transport``.

Same wire format, same fault-injection sites (``soap.http``,
``soap.direct``), same client metrics, so a chaos plan or a dashboard
cannot tell which client flavor produced the traffic.  The differences
are purely mechanical:

* :class:`AsyncHttpTransport` multiplexes over a small pool of
  keep-alive connections (``pool_size``) instead of one socket per
  transport — one async client object can carry many concurrent tasks;
* blocking waits become awaits: injected latency parks the task
  (``Injection.pre_async``), backoff and network reads yield the loop.

The resend rule mirrors the sync transport exactly: a request may be
resent only on the stale keep-alive race (server hung up an idle
connection before the request ran).  Never after a timeout or a torn
reply — those surface as :class:`TransportError` for the resilience
layer, which owns retries and idempotency keys.
"""

from __future__ import annotations

import asyncio
import contextvars
from typing import Any, Optional

from repro import faults as _faults
from repro.obs import trace as _trace
from repro.soap.envelope import BulkItem, build_bulk_request, build_request
from repro.soap.envelope import parse_bulk_response, parse_response
from repro.soap.transport import (
    _CLIENT_RECONNECTS,
    _CLIENT_REQUESTS,
    _CLIENT_REUSE,
    Handler,
    HttpTransport,
    Operations,
    _wire_header_fields,
    execute_bulk,
)


class _StaleConnection(Exception):
    """EOF before any response byte: the keep-alive race, safe to resend."""


class _PooledConn:
    __slots__ = ("reader", "writer")

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.reader = reader
        self.writer = writer


class AsyncDirectTransport:
    """In-process dispatch for the async client.

    The handler is synchronous and may block (locks, the DB engine,
    injected faults), so it runs on the loop's default executor — with
    the caller's :mod:`contextvars` context copied across, which is how
    deadline budgets and trace spans survive the thread hop.
    """

    def __init__(self, handler: Handler) -> None:
        self._handler = handler

    async def _run(self, fn: Any, *args: Any) -> Any:
        loop = asyncio.get_event_loop()
        ctx = contextvars.copy_context()
        return await loop.run_in_executor(None, lambda: ctx.run(fn, *args))

    async def call(self, method: str, args: dict[str, Any]) -> Any:
        inj = _faults.check("soap.direct", method)
        if inj is not None:
            await inj.pre_async()
        result = await self._run(self._handler, method, args)
        if inj is not None and inj.kind in ("torn", "lost_reply"):
            from repro.soap.errors import TransportError

            raise TransportError(f"injected {inj.kind} at soap.direct:{method}")
        return result

    async def call_bulk(self, operations: Operations) -> list[BulkItem]:
        inj = _faults.check("soap.direct", "__bulk__")
        if inj is not None:
            await inj.pre_async()
        items = await self._run(execute_bulk, self._handler, operations)
        if inj is not None and inj.kind in ("torn", "lost_reply"):
            from repro.soap.errors import TransportError

            raise TransportError(f"injected {inj.kind} at soap.direct:__bulk__")
        return items

    async def close(self) -> None:  # pragma: no cover - nothing to release
        pass


class AsyncHttpTransport:
    """SOAP over asyncio streams with a keep-alive connection pool."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        simulated_latency_s: float = 0.0,
        connect_timeout: Optional[float] = None,
        read_timeout: Optional[float] = None,
        pool_size: int = 2,
    ) -> None:
        self.host = host
        self.port = port
        self.connect_timeout = timeout if connect_timeout is None else connect_timeout
        self.read_timeout = timeout if read_timeout is None else read_timeout
        self.simulated_latency_s = simulated_latency_s
        self.pool_size = max(1, pool_size)
        self._idle: list[_PooledConn] = []
        # Created lazily so the transport can be constructed outside any
        # event loop and used inside one.
        self._sem: Optional[asyncio.Semaphore] = None
        self._closed = False

    # -- Transport protocol (async) -----------------------------------------

    async def call(self, method: str, args: dict[str, Any]) -> Any:
        inj = _faults.check("soap.http", method)
        if inj is not None:
            await inj.pre_async()
        payload = build_request(
            method, args, _trace.current_request_id(), _wire_header_fields()
        )
        body = await self._post(payload, method)
        if inj is not None:
            body = HttpTransport._post_injection(inj, method, body)
        return parse_response(body)

    async def call_bulk(self, operations: Operations) -> list[BulkItem]:
        inj = _faults.check("soap.http", "__bulk__")
        if inj is not None:
            await inj.pre_async()
        payload = build_bulk_request(
            operations, _trace.current_request_id(), _wire_header_fields()
        )
        body = await self._post(payload, "__bulk__")
        if inj is not None:
            body = HttpTransport._post_injection(inj, "__bulk__", body)
        return parse_bulk_response(body)

    async def close(self) -> None:
        self._closed = True
        while self._idle:
            self._discard(self._idle.pop())

    # -- pool management ----------------------------------------------------

    def _semaphore(self) -> asyncio.Semaphore:
        if self._sem is None:
            self._sem = asyncio.Semaphore(self.pool_size)
        return self._sem

    async def _dial(self) -> _PooledConn:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port),
            self.connect_timeout,
        )
        return _PooledConn(reader, writer)

    @staticmethod
    def _discard(conn: _PooledConn) -> None:
        try:
            conn.writer.close()
        except Exception:  # pragma: no cover - close is best-effort
            pass

    @staticmethod
    def _safe_to_resend(exc: Exception) -> bool:
        """Same rule as :meth:`HttpTransport._safe_to_resend`."""
        if isinstance(exc, _StaleConnection):
            return True
        if isinstance(exc, (TimeoutError, asyncio.IncompleteReadError)):
            return False
        return isinstance(
            exc,
            (ConnectionResetError, ConnectionAbortedError, BrokenPipeError),
        )

    # -- the request cycle ---------------------------------------------------

    async def _post(self, payload: bytes, soap_action: str) -> bytes:
        from repro.soap.errors import TransportError

        if self.simulated_latency_s > 0:
            await asyncio.sleep(self.simulated_latency_s)
        request = (
            f"POST /soap HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: text/xml; charset=utf-8\r\n"
            f"SOAPAction: {soap_action}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"\r\n"
        ).encode("latin-1") + payload
        _CLIENT_REQUESTS.inc()
        sem = self._semaphore()
        await sem.acquire()
        try:
            conn = self._idle.pop() if self._idle else None
            reused = conn is not None
            if conn is None:
                try:
                    conn = await self._dial()
                except (OSError, asyncio.TimeoutError) as exc:
                    raise TransportError(f"connect failed: {exc}") from exc
            try:
                status, body, keep = await self._roundtrip(conn, request)
            except (_StaleConnection, ConnectionError, OSError, EOFError) as exc:
                self._discard(conn)
                if not (reused and self._safe_to_resend(exc)):
                    raise TransportError(f"HTTP request failed: {exc}") from exc
                _CLIENT_RECONNECTS.inc()
                try:
                    conn = await self._dial()
                    status, body, keep = await self._roundtrip(conn, request)
                except (
                    _StaleConnection,
                    ConnectionError,
                    OSError,
                    EOFError,
                ) as exc2:
                    self._discard(conn)
                    raise TransportError(f"HTTP request failed: {exc2}") from exc2
            else:
                if reused:
                    _CLIENT_REUSE.inc()
            if keep and not self._closed and len(self._idle) < self.pool_size:
                self._idle.append(conn)
            else:
                self._discard(conn)
        finally:
            sem.release()
        if status not in (200, 500):
            raise TransportError(f"unexpected HTTP status {status}")
        return body

    async def _roundtrip(
        self, conn: _PooledConn, request: bytes
    ) -> tuple[int, bytes, bool]:
        from repro.soap.errors import TransportError

        conn.writer.write(request)
        await asyncio.wait_for(conn.writer.drain(), self.read_timeout)
        status_line = await asyncio.wait_for(
            conn.reader.readline(), self.read_timeout
        )
        if not status_line:
            raise _StaleConnection("server closed the keep-alive connection")
        parts = status_line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise TransportError(f"malformed status line {status_line!r}")
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = await asyncio.wait_for(
                conn.reader.readline(), self.read_timeout
            )
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                raise TransportError("connection closed mid-headers")
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length_raw = headers.get("content-length", "0")
        if not length_raw.isdigit():
            raise TransportError(f"malformed Content-Length {length_raw!r}")
        body = await asyncio.wait_for(
            conn.reader.readexactly(int(length_raw)), self.read_timeout
        )
        keep = headers.get("connection", "").lower() != "close"
        return status, body, keep
