"""WSDL document generation.

The paper notes "much of the client code was automatically generated from
the WSDL description of the service".  We generate an equivalent service
description from a :class:`ServiceDescription` and provide
:func:`generate_client_stubs`, which builds a dynamic proxy class whose
methods mirror the WSDL operations — the same workflow, minus javac.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Any, Callable

WSDL_NS = "http://schemas.xmlsoap.org/wsdl/"


@dataclass(frozen=True)
class OperationDef:
    """One service operation: name plus input parameter names."""

    name: str
    params: tuple[str, ...]
    doc: str = ""


@dataclass
class ServiceDescription:
    """A named service and its operations."""

    name: str
    operations: list[OperationDef] = field(default_factory=list)

    def add(self, name: str, params: tuple[str, ...], doc: str = "") -> None:
        self.operations.append(OperationDef(name, params, doc))

    def operation(self, name: str) -> OperationDef:
        for op in self.operations:
            if op.name == name:
                return op
        raise KeyError(name)


def generate_wsdl(service: ServiceDescription, endpoint: str = "") -> bytes:
    """Render the service description as a WSDL document."""
    definitions = ET.Element("definitions", {"xmlns": WSDL_NS, "name": service.name})
    port_type = ET.SubElement(definitions, "portType", {"name": f"{service.name}PortType"})
    for op in service.operations:
        operation = ET.SubElement(port_type, "operation", {"name": op.name})
        if op.doc:
            doc = ET.SubElement(operation, "documentation")
            doc.text = op.doc
        message = ET.SubElement(operation, "input")
        for param in op.params:
            ET.SubElement(message, "part", {"name": param})
        ET.SubElement(operation, "output")
    service_el = ET.SubElement(definitions, "service", {"name": service.name})
    port = ET.SubElement(service_el, "port", {"name": f"{service.name}Port"})
    if endpoint:
        ET.SubElement(port, "address", {"location": endpoint})
    return ET.tostring(definitions, encoding="utf-8")


def parse_wsdl(data: bytes) -> ServiceDescription:
    """Recover a :class:`ServiceDescription` from a WSDL document."""
    definitions = ET.fromstring(data)
    service = ServiceDescription(definitions.get("name", "Service"))
    for port_type in definitions:
        if not port_type.tag.endswith("portType"):
            continue
        for operation in port_type:
            name = operation.get("name", "")
            params: list[str] = []
            doc = ""
            for child in operation:
                if child.tag.endswith("documentation"):
                    doc = child.text or ""
                if child.tag.endswith("input"):
                    params = [part.get("name", "") for part in child]
            service.add(name, tuple(params), doc)
    return service


def generate_client_stubs(
    service: ServiceDescription,
    call: Callable[[str, dict[str, Any]], Any],
) -> Any:
    """Build a proxy object with one method per WSDL operation.

    Each generated method validates its keyword arguments against the
    operation's declared parameters, then forwards through *call*.
    """

    class _Stub:
        _service = service.name

    def make_method(op: OperationDef) -> Callable[..., Any]:
        def method(self, **kwargs: Any) -> Any:
            unknown = set(kwargs) - set(op.params)
            if unknown:
                raise TypeError(
                    f"{op.name}() got unexpected arguments {sorted(unknown)}"
                )
            return call(op.name, kwargs)

        method.__name__ = op.name
        method.__doc__ = op.doc or f"Invoke the {op.name} service operation."
        return method

    for op in service.operations:
        setattr(_Stub, op.name, make_method(op))
    _Stub.__name__ = f"{service.name}Stub"
    return _Stub()
