"""SOAP endpoint hosting: the shared dispatch path and the threaded server.

:class:`SoapDispatcher` is the transport-independent POST ``/soap``
pipeline — envelope parsing, idempotency replay, deadline restoration,
TraceParent adoption, fault mapping, SLO accounting — shared verbatim by
the thread-per-connection :class:`SoapServer` here and the asyncio front
end (:class:`repro.aserve.AsyncSoapServer`).  Hosting semantics (chaos
injection sites, obs metrics, span parenting) therefore hold unchanged
whichever front end terminates the connection.

:class:`SoapServer` keeps the servlet-container shape the paper measured:
one handler thread per connection (ThreadingHTTPServer) with a bounded
worker pool.  Application exceptions are mapped to SOAP faults;
registered fault mappers let services expose typed errors.

Observability: ``GET /metrics`` renders the process metrics registry in
Prometheus text format, every request feeds the ``mcs_soap_*`` metric
families, and the access log is emitted as DEBUG-level structured JSON
(see :mod:`repro.obs.log`) instead of raw stderr lines.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.parse
from collections import OrderedDict
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Optional

from repro import faults as _faults
from repro.obs import slo as _slo
from repro.obs import trace as _trace
from repro.resilience import context as _rctx
from repro.obs.log import get_logger
from repro.obs.metrics import (
    OBS,
    Counter,
    counter as _obs_counter,
    gauge as _obs_gauge,
    histogram as _obs_histogram,
    render_prometheus,
)
from repro.soap.envelope import (
    ParsedRequest,
    SoapFault,
    build_bulk_response,
    build_fault,
    build_response,
    parse_any_request,
)
from repro.soap.transport import execute_bulk
from repro.soap.wsdl import ServiceDescription, generate_wsdl

Handler = Callable[[str, dict[str, Any]], Any]
FaultMapper = Callable[[Exception], Optional[SoapFault]]
#: Optional fast-path envelope decoder: returns a ParsedRequest for the
#: shapes it understands, or None to fall back to the full XML parse.
Scanner = Callable[[bytes], Optional[ParsedRequest]]
#: Optional fast-path response encoder: returns pre-serialized bytes for
#: the result shapes it has templates for, or None for the generic path.
Responder = Callable[[Any], Optional[bytes]]


def _parse_budget(raw: Optional[str]) -> Optional[float]:
    """Decode the ``Deadline`` header (remaining seconds, as text)."""
    if raw is None:
        return None
    try:
        return max(float(raw), 0.0)
    except ValueError:
        return None

_log = get_logger("soap.server")

_REQUEST_SECONDS = _obs_histogram(
    "mcs_soap_request_seconds",
    "Server-side request latency (read to response write), per operation",
    labels=("operation",),
)
_SERVER_REQUESTS = _obs_counter(
    "mcs_soap_requests_total",
    "Requests handled by the SOAP server, including faults",
)
_SERVER_FAULTS = _obs_counter(
    "mcs_soap_faults_total", "Requests answered with a SOAP fault"
)
_QUEUE_DEPTH = _obs_gauge(
    "mcs_soap_queue_depth",
    "Requests currently waiting for a worker-pool slot",
)
_QUEUE_WAIT_SECONDS = _obs_histogram(
    "mcs_soap_queue_wait_seconds",
    "Time a request waited for a worker-pool slot (saturated pool only)",
)
_WORKER_SATURATION = _obs_counter(
    "mcs_soap_worker_saturation_total",
    "Requests that arrived while every worker-pool slot was busy",
)
# Count-scale buckets: a batch-size distribution, not a latency one.
_BULK_BATCH_SIZE = _obs_histogram(
    "mcs_soap_bulk_batch_size",
    "Operations carried per <BulkRequest> envelope",
    buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
)
_BULK_ITEMS = _obs_counter(
    "mcs_soap_bulk_items_total",
    "Per-item outcomes inside <BulkRequest> batches",
    labels=("status",),
)
_IDEM_REPLAYS = _obs_counter(
    "mcs_soap_idempotent_replays_total",
    "Requests answered from the idempotency cache (duplicate suppressed)",
)


@dataclass
class DispatchResult:
    """Outcome of one POST ``/soap`` dispatch, ready for HTTP framing."""

    status: int
    body: bytes
    method: str
    is_fault: bool
    request_id: Optional[str] = None


def collection_get(
    path: str,
    query: dict[str, list[str]],
    description: Optional[ServiceDescription] = None,
    endpoint: Optional[tuple[str, int]] = None,
) -> Optional[tuple[int, str, bytes]]:
    """Route the shared GET endpoints; returns ``(status, ctype, body)``.

    Both front ends expose the same collection surface — ``/metrics``,
    ``/spans``, ``/slo``, ``/healthz``, ``/readyz``, ``/profile`` and
    ``/wsdl`` — through this one router, so operators' scrape configs do
    not care which server terminates the socket.  Returns ``None`` for
    unknown paths (the caller answers 404).  May block (``/profile``
    samples for up to 30 s): run it on a worker thread, never an event
    loop.
    """
    if path == "/metrics":
        return (
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            render_prometheus().encode("utf-8"),
        )
    if path == "/spans":
        # The trace collection endpoint: this process's span ring,
        # filtered — what `mcs trace` scrapes from each process to
        # assemble the cross-process waterfall.
        spans = _trace.recent_spans(
            request_id=query.get("request_id", [None])[0],
            trace_id=query.get("trace_id", [None])[0],
            name=query.get("name", [None])[0],
        )
        return (
            200,
            "application/json; charset=utf-8",
            json.dumps(spans, default=str).encode("utf-8"),
        )
    if path == "/slo":
        return (
            200,
            "application/json; charset=utf-8",
            json.dumps(_slo.SLO.snapshot()).encode("utf-8"),
        )
    if path == "/healthz":
        # Liveness: answering at all is the check.
        return (200, "text/plain; charset=utf-8", b"ok\n")
    if path == "/readyz":
        ready = _slo.SLO.healthy()
        return (
            200 if ready else 503,
            "text/plain; charset=utf-8",
            b"ready\n" if ready else b"burn-rate breach\n",
        )
    if path == "/profile":
        try:
            seconds = float(query.get("seconds", ["0.5"])[0])
            interval = float(query.get("interval", ["0.005"])[0])
        except ValueError:
            return (400, "text/plain; charset=utf-8", b"bad query\n")
        from repro.obs.profiler import capture

        # Bounded: this worker thread blocks for the capture, so cap the
        # request at something a curl won't regret.
        profiler = capture(min(max(seconds, 0.0), 30.0), interval)
        return (
            200,
            "text/plain; charset=utf-8",
            (profiler.report() + "\n").encode("utf-8"),
        )
    if path == "/wsdl" and description is not None and endpoint is not None:
        host, port = endpoint
        body = generate_wsdl(
            description, endpoint=f"http://{host}:{port}/soap"
        )
        return (200, "text/xml; charset=utf-8", body)
    return None


class SoapDispatcher:
    """The transport-independent POST ``/soap`` pipeline.

    Owns everything about handling one request body that does not depend
    on how the bytes arrived: envelope decoding, trace/deadline context
    restoration, idempotency replay, bulk fan-out, fault mapping, and
    the request/SLO accounting.  The threaded and asyncio front ends both
    call :meth:`dispatch` from worker threads, so chaos and obs semantics
    are identical under either server.

    ``scanner`` / ``responder`` are the asyncio front end's hot-path
    hooks: a streaming envelope scanner that skips the full-tree XML
    parse for common request shapes, and pre-serialized response
    templates for hot operations.  Either may decline (return ``None``)
    and the generic codec path runs instead — they are accelerators, not
    a second protocol implementation.
    """

    def __init__(
        self,
        handler: Handler,
        fault_mapper: Optional[FaultMapper] = None,
        max_bulk_items: int = 1024,
        idempotency_cache_size: int = 1024,
        scanner: Optional[Scanner] = None,
        responder: Optional[Responder] = None,
    ) -> None:
        self._handler = handler
        self._fault_mapper = fault_mapper
        self.max_bulk_items = max_bulk_items
        # Sharded counters (lock-free increments merged on read) so
        # concurrent handler threads never race a shared int.
        self._requests_served = Counter()
        self._faults_served = Counter()
        # Idempotency-token → successful response bytes, LRU-bounded.
        # Only 200 responses are cached: a fault must not replay on
        # retry, or transient failures would become sticky.
        self._idem_cache: OrderedDict[str, bytes] = OrderedDict()
        self._idem_cache_size = idempotency_cache_size
        self._idem_lock = threading.Lock()
        self._scanner = scanner
        self._responder = responder

    # -- accounting ----------------------------------------------------------

    def count_request(self, fault: bool) -> None:
        _SERVER_REQUESTS.inc()
        self._requests_served.inc()
        if fault:
            _SERVER_FAULTS.inc()
            self._faults_served.inc()

    @property
    def requests_served(self) -> int:
        return self._requests_served.value

    @property
    def faults_served(self) -> int:
        return self._faults_served.value

    # -- idempotency cache ---------------------------------------------------

    def _idem_get(self, key: str) -> Optional[bytes]:
        with self._idem_lock:
            body = self._idem_cache.get(key)
            if body is not None:
                self._idem_cache.move_to_end(key)
            return body

    def _idem_put(self, key: str, body: bytes) -> None:
        with self._idem_lock:
            self._idem_cache[key] = body
            self._idem_cache.move_to_end(key)
            while len(self._idem_cache) > self._idem_cache_size:
                self._idem_cache.popitem(last=False)

    # -- the dispatch path ---------------------------------------------------

    def _parse(self, payload: bytes) -> ParsedRequest:
        if self._scanner is not None:
            parsed = self._scanner(payload)
            if parsed is not None:
                return parsed
        return parse_any_request(payload)

    def _encode_response(
        self, result: Any, echo: Optional[dict[str, str]]
    ) -> bytes:
        if self._responder is not None and echo is None:
            body = self._responder(result)
            if body is not None:
                return body
        return build_response(result, echo)

    def dispatch(
        self,
        payload: bytes,
        client: Optional[str] = None,
        start: Optional[float] = None,
    ) -> DispatchResult:
        """Run one request body through the full dispatch path.

        ``start`` lets the caller charge connection-level time (payload
        read, worker-pool queueing) to the request's latency histogram;
        when omitted the clock starts here.
        """
        if start is None:
            start = time.perf_counter() if OBS.enabled else 0.0
        method = "<malformed>"
        request_id: Optional[str] = None
        rid_token = None
        tp_token = None
        deadline_token = None
        is_fault = False
        slo_bad = False
        try:
            try:
                parsed = self._parse(payload)
                request_id = parsed.request_id
                if request_id is not None:
                    rid_token = _trace.set_request_id(request_id)
                # Adopt the caller's trace context so the dispatch span
                # below parents onto the client's call span — one
                # cross-process trace, not two disjoint trees.
                traceparent = parsed.headers.get("TraceParent")
                if traceparent is not None:
                    tp_token = _trace.set_remote_context(traceparent)
                method = "<bulk>" if parsed.bulk else parsed.calls[0][0]
                # Restore the caller's remaining budget into this
                # thread's context so dispatch (and execute_bulk between
                # items) can stop working once it lapses.
                budget = _parse_budget(parsed.headers.get("Deadline"))
                if budget is not None:
                    deadline_token = _rctx.push_budget(budget)
                with _trace.span("soap.server", method=method):
                    inj = _faults.check("soap.server", method)
                    if inj is not None:
                        inj.raise_as_fault()
                    idem_key = parsed.headers.get("IdempotencyKey")
                    replay = (
                        self._idem_get(idem_key)
                        if idem_key is not None
                        else None
                    )
                    if replay is not None:
                        _IDEM_REPLAYS.inc()
                        _trace.annotate("idempotent-replay")
                        body = replay
                    else:
                        if _rctx.expired():
                            raise SoapFault(
                                "Server.DeadlineExceeded",
                                f"deadline expired before {method!r} ran",
                            )
                        echo = (
                            {"IdempotencyKey": idem_key}
                            if idem_key is not None
                            else None
                        )
                        if parsed.bulk:
                            body = self._handle_bulk(parsed.calls, echo)
                        else:
                            ((method, args),) = parsed.calls
                            result = self._handler(method, args)
                            body = self._encode_response(result, echo)
                        if idem_key is not None:
                            self._idem_put(idem_key, body)
                status = 200
            except SoapFault as fault:
                body = build_fault(fault)
                status = 500
                is_fault = True
                # Application faults (MCS.*: not-found, duplicate,
                # permission...) are the caller's problem, not the
                # service failing — they spend no error budget.
                slo_bad = not fault.code.startswith("MCS.")
            except Exception as exc:  # noqa: BLE001 - fault boundary
                fault = self.map_fault(exc)
                body = build_fault(fault)
                status = 500
                is_fault = True
                slo_bad = not fault.code.startswith("MCS.")
        finally:
            if deadline_token is not None:
                _rctx.reset_deadline(deadline_token)
            if tp_token is not None:
                _trace.reset_remote_context(tp_token)
            if rid_token is not None:
                _trace.reset_request_id(rid_token)
        self.count_request(fault=is_fault)
        if OBS.enabled:
            elapsed = time.perf_counter() - start
            _REQUEST_SECONDS.labels(method).observe(elapsed)
            _slo.SLO.record(method, elapsed, ok=not slo_bad)
            if _log.isEnabledFor(10):  # logging.DEBUG
                _log.debug(
                    "soap.request",
                    extra={
                        "operation": method,
                        "status": status,
                        "duration_ms": round(elapsed * 1000, 3),
                        "rid": request_id,
                        "client": client,
                    },
                )
        return DispatchResult(
            status=status,
            body=body,
            method=method,
            is_fault=is_fault,
            request_id=request_id,
        )

    def _handle_bulk(
        self,
        calls: list[tuple[str, dict[str, Any]]],
        header_fields: Optional[dict[str, str]] = None,
    ) -> bytes:
        """Run a ``<BulkRequest>`` batch; per-item faults stay inline.

        Raises :class:`SoapFault` (an envelope-level fault, HTTP 500) only
        for batch-shape problems — an oversized batch — never for an
        individual operation failing.
        """
        if len(calls) > self.max_bulk_items:
            raise SoapFault(
                "Client.BatchTooLarge",
                f"batch of {len(calls)} operations exceeds "
                f"max_bulk_items={self.max_bulk_items}",
            )
        if OBS.enabled:
            _BULK_BATCH_SIZE.observe(len(calls))
        items = execute_bulk(self._handler, calls, self.map_fault)
        if OBS.enabled:
            ok = sum(1 for item in items if item.ok)
            if ok:
                _BULK_ITEMS.labels("ok").inc(ok)
            if len(items) - ok:
                _BULK_ITEMS.labels("fault").inc(len(items) - ok)
        return build_bulk_response(items, header_fields)

    def map_fault(self, exc: Exception) -> SoapFault:
        if self._fault_mapper is not None:
            mapped = self._fault_mapper(exc)
            if mapped is not None:
                return mapped
        # Shared fault table (lazy: the soap layer must import without
        # repro.core so the packages initialise in either order).
        from repro.core.errors import fault_code_for

        code = fault_code_for(exc)
        if code is not None:
            return SoapFault(code, str(exc))
        return SoapFault("Server", f"{type(exc).__name__}: {exc}")


class SoapServer:
    """Hosts one dispatch handler at ``POST /soap`` (WSDL at ``GET /wsdl``,
    metrics at ``GET /metrics``)."""

    def __init__(
        self,
        handler: Handler,
        host: str = "127.0.0.1",
        port: int = 0,
        description: Optional[ServiceDescription] = None,
        fault_mapper: Optional[FaultMapper] = None,
        max_workers: int = 4,
        max_bulk_items: int = 1024,
        idempotency_cache_size: int = 1024,
    ) -> None:
        self._description = description
        self._dispatcher = SoapDispatcher(
            handler,
            fault_mapper=fault_mapper,
            max_bulk_items=max_bulk_items,
            idempotency_cache_size=idempotency_cache_size,
        )
        # Bounded worker pool, like a servlet container's maxThreads: one
        # thread per connection still reads the request, but at most
        # max_workers requests are *processed* concurrently.  (Unbounded
        # concurrency degrades badly under the GIL on multicore hosts.)
        self._worker_slots = threading.Semaphore(max_workers)

        outer = self

        class _RequestHandler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"
            # Small request/response pairs suffer the Nagle + delayed-ACK
            # interaction (~40 ms/request) unless TCP_NODELAY is set.
            disable_nagle_algorithm = True

            def log_message(self, fmt: str, *args: Any) -> None:
                # Route the stock access log to the structured logger at
                # DEBUG instead of silencing it (or spamming stderr).
                _log.debug(
                    fmt % args if args else fmt,
                    extra={"client": self.address_string()},
                )

            def do_POST(self) -> None:
                if self.path != "/soap":
                    outer._dispatcher.count_request(fault=False)
                    self.send_error(404)
                    return
                start = time.perf_counter() if OBS.enabled else 0.0
                length = int(self.headers.get("Content-Length", "0"))
                payload = self.rfile.read(length)
                if not outer._worker_slots.acquire(blocking=False):
                    _WORKER_SATURATION.inc()
                    _QUEUE_DEPTH.inc()
                    wait_start = time.perf_counter() if OBS.enabled else 0.0
                    outer._worker_slots.acquire()
                    _QUEUE_DEPTH.dec()
                    if OBS.enabled:
                        _QUEUE_WAIT_SECONDS.observe(
                            time.perf_counter() - wait_start
                        )
                try:
                    result = outer._dispatcher.dispatch(
                        payload, client=self.address_string(), start=start
                    )
                finally:
                    outer._worker_slots.release()
                self.send_response(result.status)
                self.send_header("Content-Type", "text/xml; charset=utf-8")
                self.send_header("Content-Length", str(len(result.body)))
                self.end_headers()
                self.wfile.write(result.body)

            def _send(
                self, status: int, content_type: str, body: bytes
            ) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self) -> None:
                parts = urllib.parse.urlsplit(self.path)
                query = urllib.parse.parse_qs(parts.query)
                routed = collection_get(
                    parts.path,
                    query,
                    description=outer._description,
                    endpoint=(outer.host, outer.port),
                )
                if routed is None:
                    self.send_error(404)
                    return
                self._send(*routed)

        class _Server(ThreadingHTTPServer):
            daemon_threads = True
            request_queue_size = 128  # many client hosts connect at once

        self._httpd = _Server((host, port), _RequestHandler)
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "SoapServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, kwargs={"poll_interval": 0.05}
        )
        self._thread.daemon = True
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(5)
            self._thread = None

    def __enter__(self) -> "SoapServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    @property
    def requests_served(self) -> int:
        """Every request handled, successes and faults alike."""
        return self._dispatcher.requests_served

    @property
    def faults_served(self) -> int:
        """Requests answered with a SOAP fault (mapped or explicit)."""
        return self._dispatcher.faults_served

    @property
    def endpoint(self) -> tuple[str, int]:
        return self.host, self.port
