"""Threaded HTTP server hosting a SOAP endpoint.

One handler thread per connection (ThreadingHTTPServer), like a servlet
container's worker pool.  Application exceptions are mapped to SOAP
faults; registered fault mappers let services expose typed errors.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Optional

from repro.soap.envelope import (
    SoapFault,
    build_fault,
    build_response,
    parse_request,
)
from repro.soap.wsdl import ServiceDescription, generate_wsdl

Handler = Callable[[str, dict[str, Any]], Any]
FaultMapper = Callable[[Exception], Optional[SoapFault]]


class SoapServer:
    """Hosts one dispatch handler at ``POST /soap`` (WSDL at ``GET /wsdl``)."""

    def __init__(
        self,
        handler: Handler,
        host: str = "127.0.0.1",
        port: int = 0,
        description: Optional[ServiceDescription] = None,
        fault_mapper: Optional[FaultMapper] = None,
        max_workers: int = 4,
    ) -> None:
        self._handler = handler
        self._description = description
        self._fault_mapper = fault_mapper
        self._requests_served = 0
        self._counter_lock = threading.Lock()
        # Bounded worker pool, like a servlet container's maxThreads: one
        # thread per connection still reads the request, but at most
        # max_workers requests are *processed* concurrently.  (Unbounded
        # concurrency degrades badly under the GIL on multicore hosts.)
        self._worker_slots = threading.Semaphore(max_workers)

        outer = self

        class _RequestHandler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"
            # Small request/response pairs suffer the Nagle + delayed-ACK
            # interaction (~40 ms/request) unless TCP_NODELAY is set.
            disable_nagle_algorithm = True

            def log_message(self, *args: Any) -> None:  # silence stderr
                pass

            def do_POST(self) -> None:
                if self.path != "/soap":
                    self.send_error(404)
                    return
                length = int(self.headers.get("Content-Length", "0"))
                payload = self.rfile.read(length)
                with outer._worker_slots:
                    try:
                        method, args = parse_request(payload)
                        result = outer._handler(method, args)
                        body = build_response(result)
                        status = 200
                    except SoapFault as fault:
                        body = build_fault(fault)
                        status = 500
                    except Exception as exc:  # noqa: BLE001 - fault boundary
                        fault = outer._map_fault(exc)
                        body = build_fault(fault)
                        status = 500
                with outer._counter_lock:
                    outer._requests_served += 1
                self.send_response(status)
                self.send_header("Content-Type", "text/xml; charset=utf-8")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self) -> None:
                if self.path != "/wsdl" or outer._description is None:
                    self.send_error(404)
                    return
                body = generate_wsdl(
                    outer._description,
                    endpoint=f"http://{outer.host}:{outer.port}/soap",
                )
                self.send_response(200)
                self.send_header("Content-Type", "text/xml; charset=utf-8")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

        class _Server(ThreadingHTTPServer):
            daemon_threads = True
            request_queue_size = 128  # many client hosts connect at once

        self._httpd = _Server((host, port), _RequestHandler)
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    def _map_fault(self, exc: Exception) -> SoapFault:
        if self._fault_mapper is not None:
            mapped = self._fault_mapper(exc)
            if mapped is not None:
                return mapped
        return SoapFault("Server", f"{type(exc).__name__}: {exc}")

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "SoapServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, kwargs={"poll_interval": 0.05}
        )
        self._thread.daemon = True
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(5)
            self._thread = None

    def __enter__(self) -> "SoapServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    @property
    def requests_served(self) -> int:
        with self._counter_lock:
            return self._requests_served

    @property
    def endpoint(self) -> tuple[str, int]:
        return self.host, self.port
