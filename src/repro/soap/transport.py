"""Pluggable call transports.

Three transports share the ``call(method, args) -> result`` interface so
the MCS client can run over any of them.  This is what lets the benchmark
suite reproduce the paper's "MySQL without web service" vs "MCS with web
service" comparison, and additionally decompose the web-service penalty:

================  =====================================================
DirectTransport   in-process function call; no XML, no socket — the
                  paper's "MySQL (no web service)" baseline
LoopbackCodec     full SOAP encode/decode, no socket — isolates the
                  serialization share of the penalty (ablation)
HttpTransport     SOAP over a real TCP connection — the paper's
                  "MCS with web service" configuration
================  =====================================================
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Protocol, Sequence

from repro.obs import trace as _trace
from repro.obs.metrics import counter as _obs_counter
from repro.soap.envelope import (
    BulkItem,
    SoapFault,
    build_bulk_request,
    build_bulk_response,
    build_request,
    build_response,
    build_fault,
    parse_bulk_request,
    parse_bulk_response,
    parse_request_full,
    parse_response,
)

Handler = Callable[[str, dict[str, Any]], Any]
FaultMapperFn = Callable[[Exception], Optional[SoapFault]]
Operations = Sequence[tuple[str, dict[str, Any]]]


def execute_bulk(
    handler: Handler,
    operations: Operations,
    fault_mapper: Optional[FaultMapperFn] = None,
) -> list[BulkItem]:
    """Dispatch a batch of operations with per-item fault isolation.

    This is the one implementation of generic bulk semantics: every
    transport (and the SOAP server) funnels batches through it, so a
    batch behaves identically in-process and over the wire — each item
    runs in order, and a failing item becomes an inline fault instead of
    aborting its successors.
    """
    items: list[BulkItem] = []
    for method, args in operations:
        try:
            items.append(BulkItem(ok=True, result=handler(method, args)))
        except SoapFault as fault:
            items.append(BulkItem(ok=False, fault=fault))
        except Exception as exc:  # noqa: BLE001 - per-item fault boundary
            mapped = fault_mapper(exc) if fault_mapper is not None else None
            if mapped is None:
                mapped = SoapFault("Server", f"{type(exc).__name__}: {exc}")
            items.append(BulkItem(ok=False, fault=mapped))
    return items

_CLIENT_REQUESTS = _obs_counter(
    "mcs_soap_client_requests_total", "Requests issued by HttpTransport"
)
_CLIENT_REUSE = _obs_counter(
    "mcs_soap_client_keepalive_reuse_total",
    "Requests that reused an existing keep-alive connection",
)
_CLIENT_RECONNECTS = _obs_counter(
    "mcs_soap_client_reconnects_total",
    "Reconnects after a dead keep-alive socket",
)


class Transport(Protocol):
    """Anything that can invoke a remote (or local) method."""

    def call(self, method: str, args: dict[str, Any]) -> Any: ...

    def call_bulk(self, operations: Operations) -> list[BulkItem]: ...

    def close(self) -> None: ...


class DirectTransport:
    """Dispatch straight to the handler — zero protocol overhead."""

    def __init__(self, handler: Handler) -> None:
        self._handler = handler

    def call(self, method: str, args: dict[str, Any]) -> Any:
        return self._handler(method, args)

    def call_bulk(self, operations: Operations) -> list[BulkItem]:
        return execute_bulk(self._handler, operations)

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass


class LoopbackCodecTransport:
    """Full SOAP encode/decode round trip without any socket.

    The request is serialized to bytes, parsed server-side, the result
    serialized, and parsed client-side — exactly the codec work of
    :class:`HttpTransport` minus the TCP round trip.
    """

    def __init__(self, handler: Handler) -> None:
        self._handler = handler

    def call(self, method: str, args: dict[str, Any]) -> Any:
        request = build_request(method, args, _trace.current_request_id())
        parsed_method, parsed_args, _rid = parse_request_full(request)
        try:
            result = self._handler(parsed_method, parsed_args)
            response = build_response(result)
        except SoapFault as fault:
            response = build_fault(fault)
        return parse_response(response)

    def call_bulk(self, operations: Operations) -> list[BulkItem]:
        request = build_bulk_request(operations, _trace.current_request_id())
        parsed_ops, _rid = parse_bulk_request(request)
        response = build_bulk_response(execute_bulk(self._handler, parsed_ops))
        return parse_bulk_response(response)

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass


class HttpTransport:
    """SOAP over HTTP with a persistent connection per transport.

    ``simulated_latency_s`` models the client↔server network distance:
    each request sleeps that long before hitting the wire.  It exists for
    the multi-host scalability experiments — on a single machine the
    loopback RTT is effectively zero, so without it one client host
    trivially saturates the server, hiding the paper's Figures 8–10
    behaviour (aggregate rate growing with the number of client hosts).
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        simulated_latency_s: float = 0.0,
    ) -> None:
        import http.client
        import socket

        class _Connection(http.client.HTTPConnection):
            def connect(self) -> None:  # disable Nagle on the client side too
                super().connect()
                self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

        self.simulated_latency_s = simulated_latency_s
        self._factory = lambda: _Connection(host, port, timeout=timeout)
        self._conn = self._factory()
        self._conn_used = False

    def call(self, method: str, args: dict[str, Any]) -> Any:
        payload = build_request(method, args, _trace.current_request_id())
        return parse_response(self._post(payload, method))

    def call_bulk(self, operations: Operations) -> list[BulkItem]:
        """Issue N operations in one HTTP round trip via ``<BulkRequest>``."""
        payload = build_bulk_request(operations, _trace.current_request_id())
        return parse_bulk_response(self._post(payload, "__bulk__"))

    def _post(self, payload: bytes, soap_action: str) -> bytes:
        import http.client
        import time

        from repro.soap.errors import TransportError

        if self.simulated_latency_s > 0:
            time.sleep(self.simulated_latency_s)
        headers = {
            "Content-Type": "text/xml; charset=utf-8",
            "SOAPAction": soap_action,
        }
        _CLIENT_REQUESTS.inc()
        reused = self._conn_used
        try:
            self._conn.request("POST", "/soap", body=payload, headers=headers)
            response = self._conn.getresponse()
            body = response.read()
            if reused:
                _CLIENT_REUSE.inc()
        except (ConnectionError, OSError, http.client.HTTPException):
            # One reconnect attempt (the server may have recycled the
            # keep-alive connection).
            _CLIENT_RECONNECTS.inc()
            try:
                self._conn.close()
                self._conn = self._factory()
                self._conn.request("POST", "/soap", body=payload, headers=headers)
                response = self._conn.getresponse()
                body = response.read()
            except (ConnectionError, OSError, http.client.HTTPException) as exc2:
                raise TransportError(f"HTTP request failed: {exc2}") from exc2
        self._conn_used = True
        if response.status not in (200, 500):
            raise TransportError(f"unexpected HTTP status {response.status}")
        return body

    def close(self) -> None:
        self._conn.close()
