"""Pluggable call transports.

Three transports share the ``call(method, args) -> result`` interface so
the MCS client can run over any of them.  This is what lets the benchmark
suite reproduce the paper's "MySQL without web service" vs "MCS with web
service" comparison, and additionally decompose the web-service penalty:

================  =====================================================
DirectTransport   in-process function call; no XML, no socket — the
                  paper's "MySQL (no web service)" baseline
LoopbackCodec     full SOAP encode/decode, no socket — isolates the
                  serialization share of the penalty (ablation)
HttpTransport     SOAP over a real TCP connection — the paper's
                  "MCS with web service" configuration
================  =====================================================
"""

from __future__ import annotations

from typing import Any, Callable, Protocol

from repro.obs import trace as _trace
from repro.obs.metrics import counter as _obs_counter
from repro.soap.envelope import (
    SoapFault,
    build_request,
    build_response,
    build_fault,
    parse_request_full,
    parse_response,
)

Handler = Callable[[str, dict[str, Any]], Any]

_CLIENT_REQUESTS = _obs_counter(
    "mcs_soap_client_requests_total", "Requests issued by HttpTransport"
)
_CLIENT_REUSE = _obs_counter(
    "mcs_soap_client_keepalive_reuse_total",
    "Requests that reused an existing keep-alive connection",
)
_CLIENT_RECONNECTS = _obs_counter(
    "mcs_soap_client_reconnects_total",
    "Reconnects after a dead keep-alive socket",
)


class Transport(Protocol):
    """Anything that can invoke a remote (or local) method."""

    def call(self, method: str, args: dict[str, Any]) -> Any: ...

    def close(self) -> None: ...


class DirectTransport:
    """Dispatch straight to the handler — zero protocol overhead."""

    def __init__(self, handler: Handler) -> None:
        self._handler = handler

    def call(self, method: str, args: dict[str, Any]) -> Any:
        return self._handler(method, args)

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass


class LoopbackCodecTransport:
    """Full SOAP encode/decode round trip without any socket.

    The request is serialized to bytes, parsed server-side, the result
    serialized, and parsed client-side — exactly the codec work of
    :class:`HttpTransport` minus the TCP round trip.
    """

    def __init__(self, handler: Handler) -> None:
        self._handler = handler

    def call(self, method: str, args: dict[str, Any]) -> Any:
        request = build_request(method, args, _trace.current_request_id())
        parsed_method, parsed_args, _rid = parse_request_full(request)
        try:
            result = self._handler(parsed_method, parsed_args)
            response = build_response(result)
        except SoapFault as fault:
            response = build_fault(fault)
        return parse_response(response)

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass


class HttpTransport:
    """SOAP over HTTP with a persistent connection per transport.

    ``simulated_latency_s`` models the client↔server network distance:
    each request sleeps that long before hitting the wire.  It exists for
    the multi-host scalability experiments — on a single machine the
    loopback RTT is effectively zero, so without it one client host
    trivially saturates the server, hiding the paper's Figures 8–10
    behaviour (aggregate rate growing with the number of client hosts).
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        simulated_latency_s: float = 0.0,
    ) -> None:
        import http.client
        import socket

        class _Connection(http.client.HTTPConnection):
            def connect(self) -> None:  # disable Nagle on the client side too
                super().connect()
                self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

        self.simulated_latency_s = simulated_latency_s
        self._factory = lambda: _Connection(host, port, timeout=timeout)
        self._conn = self._factory()
        self._conn_used = False

    def call(self, method: str, args: dict[str, Any]) -> Any:
        import http.client
        import time

        from repro.soap.errors import TransportError

        if self.simulated_latency_s > 0:
            time.sleep(self.simulated_latency_s)
        payload = build_request(method, args, _trace.current_request_id())
        headers = {
            "Content-Type": "text/xml; charset=utf-8",
            "SOAPAction": method,
        }
        _CLIENT_REQUESTS.inc()
        reused = self._conn_used
        try:
            self._conn.request("POST", "/soap", body=payload, headers=headers)
            response = self._conn.getresponse()
            body = response.read()
            if reused:
                _CLIENT_REUSE.inc()
        except (ConnectionError, OSError, http.client.HTTPException):
            # One reconnect attempt (the server may have recycled the
            # keep-alive connection).
            _CLIENT_RECONNECTS.inc()
            try:
                self._conn.close()
                self._conn = self._factory()
                self._conn.request("POST", "/soap", body=payload, headers=headers)
                response = self._conn.getresponse()
                body = response.read()
            except (ConnectionError, OSError, http.client.HTTPException) as exc2:
                raise TransportError(f"HTTP request failed: {exc2}") from exc2
        self._conn_used = True
        if response.status not in (200, 500):
            raise TransportError(f"unexpected HTTP status {response.status}")
        return parse_response(body)

    def close(self) -> None:
        self._conn.close()
