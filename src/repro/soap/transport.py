"""Pluggable call transports.

Three transports share the ``call(method, args) -> result`` interface so
the MCS client can run over any of them.  This is what lets the benchmark
suite reproduce the paper's "MySQL without web service" vs "MCS with web
service" comparison, and additionally decompose the web-service penalty:

================  =====================================================
DirectTransport   in-process function call; no XML, no socket — the
                  paper's "MySQL (no web service)" baseline
LoopbackCodec     full SOAP encode/decode, no socket — isolates the
                  serialization share of the penalty (ablation)
HttpTransport     SOAP over a real TCP connection — the paper's
                  "MCS with web service" configuration
================  =====================================================
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Protocol, Sequence

from repro import faults as _faults
from repro.obs import trace as _trace
from repro.obs.metrics import counter as _obs_counter
from repro.resilience import context as _rctx
from repro.soap.envelope import (
    BulkItem,
    SoapFault,
    build_bulk_request,
    build_bulk_response,
    build_request,
    build_response,
    build_fault,
    parse_bulk_request,
    parse_bulk_response,
    parse_request_full,
    parse_response,
)

Handler = Callable[[str, dict[str, Any]], Any]
FaultMapperFn = Callable[[Exception], Optional[SoapFault]]
Operations = Sequence[tuple[str, dict[str, Any]]]


def execute_bulk(
    handler: Handler,
    operations: Operations,
    fault_mapper: Optional[FaultMapperFn] = None,
) -> list[BulkItem]:
    """Dispatch a batch of operations with per-item fault isolation.

    This is the one implementation of generic bulk semantics: every
    transport (and the SOAP server) funnels batches through it, so a
    batch behaves identically in-process and over the wire — each item
    runs in order, and a failing item becomes an inline fault instead of
    aborting its successors.

    Reply item *i* always describes operation *i* of the request — the
    submission-order contract.  Layers that split a batch into
    sub-batches (the shard router fans a ``BulkRequest`` out per shard)
    must reassemble their per-item results back into the caller's
    positions so this invariant survives end to end;
    ``tests/shard/test_bulk_reassembly.py`` pins it.
    """
    items: list[BulkItem] = []
    for method, args in operations:
        if _rctx.expired():
            # The caller's deadline lapsed mid-batch: stop doing work on
            # its behalf; remaining items fail fast with a typed fault.
            items.append(
                BulkItem(
                    ok=False,
                    fault=SoapFault(
                        "Server.DeadlineExceeded",
                        f"deadline expired before {method!r} ran",
                    ),
                )
            )
            continue
        try:
            items.append(BulkItem(ok=True, result=handler(method, args)))
        except SoapFault as fault:
            items.append(BulkItem(ok=False, fault=fault))
        except Exception as exc:  # noqa: BLE001 - per-item fault boundary
            mapped = fault_mapper(exc) if fault_mapper is not None else None
            if mapped is None:
                mapped = SoapFault("Server", f"{type(exc).__name__}: {exc}")
            items.append(BulkItem(ok=False, fault=mapped))
    return items


def _wire_header_fields() -> Optional[dict[str, str]]:
    """Resilience and trace metadata to stamp on an outgoing envelope.

    Only the *remaining* deadline budget (a duration) crosses the wire,
    so the server never needs the client's clock.  ``TraceParent``
    carries the caller's trace context (``trace_id;span_id``) so the
    server-side dispatch span parents onto the in-flight client span.
    """
    fields: dict[str, str] = {}
    rem = _rctx.remaining()
    if rem is not None:
        fields["Deadline"] = f"{max(rem, 0.0):.6f}"
    key = _rctx.current_idempotency_key()
    if key is not None:
        fields["IdempotencyKey"] = key
    traceparent = _trace.current_traceparent()
    if traceparent is not None:
        fields["TraceParent"] = traceparent
    return fields or None

_CLIENT_REQUESTS = _obs_counter(
    "mcs_soap_client_requests_total", "Requests issued by HttpTransport"
)
_CLIENT_REUSE = _obs_counter(
    "mcs_soap_client_keepalive_reuse_total",
    "Requests that reused an existing keep-alive connection",
)
_CLIENT_RECONNECTS = _obs_counter(
    "mcs_soap_client_reconnects_total",
    "Reconnects after a dead keep-alive socket",
)


class Transport(Protocol):
    """Anything that can invoke a remote (or local) method."""

    def call(self, method: str, args: dict[str, Any]) -> Any: ...

    def call_bulk(self, operations: Operations) -> list[BulkItem]: ...

    def close(self) -> None: ...


class DirectTransport:
    """Dispatch straight to the handler — zero protocol overhead."""

    def __init__(self, handler: Handler) -> None:
        self._handler = handler

    def call(self, method: str, args: dict[str, Any]) -> Any:
        inj = _faults.check("soap.direct", method)
        if inj is not None:
            inj.pre()
        result = self._handler(method, args)
        if inj is not None and inj.kind in ("torn", "lost_reply"):
            # No bytes to tear in-process: both kinds mean "the work ran
            # but the caller never learned the outcome".
            from repro.soap.errors import TransportError

            raise TransportError(f"injected {inj.kind} at soap.direct:{method}")
        return result

    def call_bulk(self, operations: Operations) -> list[BulkItem]:
        inj = _faults.check("soap.direct", "__bulk__")
        if inj is not None:
            inj.pre()
        items = execute_bulk(self._handler, operations)
        if inj is not None and inj.kind in ("torn", "lost_reply"):
            from repro.soap.errors import TransportError

            raise TransportError(f"injected {inj.kind} at soap.direct:__bulk__")
        return items

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass


class LoopbackCodecTransport:
    """Full SOAP encode/decode round trip without any socket.

    The request is serialized to bytes, parsed server-side, the result
    serialized, and parsed client-side — exactly the codec work of
    :class:`HttpTransport` minus the TCP round trip.
    """

    def __init__(self, handler: Handler) -> None:
        self._handler = handler

    def call(self, method: str, args: dict[str, Any]) -> Any:
        inj = _faults.check("soap.loopback", method)
        if inj is not None:
            inj.pre()
        request = build_request(
            method, args, _trace.current_request_id(), _wire_header_fields()
        )
        parsed_method, parsed_args, _rid = parse_request_full(request)
        try:
            result = self._handler(parsed_method, parsed_args)
            response = build_response(result)
        except SoapFault as fault:
            response = build_fault(fault)
        if inj is not None:
            if inj.kind == "lost_reply":
                from repro.soap.errors import TransportError

                raise TransportError(
                    f"injected lost_reply at soap.loopback:{method}"
                )
            if inj.kind == "torn":
                response = inj.tear(response)
        return parse_response(response)

    def call_bulk(self, operations: Operations) -> list[BulkItem]:
        inj = _faults.check("soap.loopback", "__bulk__")
        if inj is not None:
            inj.pre()
        request = build_bulk_request(
            operations, _trace.current_request_id(), _wire_header_fields()
        )
        parsed_ops, _rid = parse_bulk_request(request)
        response = build_bulk_response(execute_bulk(self._handler, parsed_ops))
        if inj is not None:
            if inj.kind == "lost_reply":
                from repro.soap.errors import TransportError

                raise TransportError(
                    "injected lost_reply at soap.loopback:__bulk__"
                )
            if inj.kind == "torn":
                response = inj.tear(response)
        return parse_bulk_response(response)

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass


class HttpTransport:
    """SOAP over HTTP with a persistent connection per transport.

    ``simulated_latency_s`` models the client↔server network distance:
    each request sleeps that long before hitting the wire.  It exists for
    the multi-host scalability experiments — on a single machine the
    loopback RTT is effectively zero, so without it one client host
    trivially saturates the server, hiding the paper's Figures 8–10
    behaviour (aggregate rate growing with the number of client hosts).

    ``timeout`` historically bounded *both* the TCP connect and every
    subsequent socket read with one value, so a slow response got the
    generous connect budget.  ``connect_timeout`` / ``read_timeout``
    split the two deadlines; either defaults to ``timeout``.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        simulated_latency_s: float = 0.0,
        connect_timeout: Optional[float] = None,
        read_timeout: Optional[float] = None,
    ) -> None:
        import http.client
        import socket

        self.connect_timeout = timeout if connect_timeout is None else connect_timeout
        self.read_timeout = timeout if read_timeout is None else read_timeout
        read_timeout_s = self.read_timeout

        class _Connection(http.client.HTTPConnection):
            def connect(self) -> None:  # disable Nagle on the client side too
                # self.timeout (the connect timeout) governs the TCP
                # handshake inside super().connect(); once the socket is
                # up, re-arm it with the read deadline.
                super().connect()
                self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                self.sock.settimeout(read_timeout_s)

        self.simulated_latency_s = simulated_latency_s
        self._factory = lambda: _Connection(
            host, port, timeout=self.connect_timeout
        )
        self._conn: Optional[Any] = self._factory()
        self._conn_used = False

    def _ensure_conn(self) -> None:
        if self._conn is None:
            _CLIENT_RECONNECTS.inc()
            self._conn = self._factory()
            self._conn_used = False

    def _invalidate(self) -> None:
        """Drop the pooled connection; the next call dials fresh.

        Called on *every* transport failure: after a timeout or a torn
        reply the connection's framing state is unknown (a late response
        could be misread as the answer to the next request), so the
        socket must never be reused.
        """
        if self._conn is not None:
            try:
                self._conn.close()
            except Exception:  # pragma: no cover - close is best-effort
                pass
            self._conn = None

    def call(self, method: str, args: dict[str, Any]) -> Any:
        inj = _faults.check("soap.http", method)
        if inj is not None:
            inj.pre()
        payload = build_request(
            method, args, _trace.current_request_id(), _wire_header_fields()
        )
        body = self._post(payload, method)
        if inj is not None:
            body = self._post_injection(inj, method, body)
        return parse_response(body)

    def call_bulk(self, operations: Operations) -> list[BulkItem]:
        """Issue N operations in one HTTP round trip via ``<BulkRequest>``."""
        inj = _faults.check("soap.http", "__bulk__")
        if inj is not None:
            inj.pre()
        payload = build_bulk_request(
            operations, _trace.current_request_id(), _wire_header_fields()
        )
        body = self._post(payload, "__bulk__")
        if inj is not None:
            body = self._post_injection(inj, "__bulk__", body)
        return parse_bulk_response(body)

    @staticmethod
    def _post_injection(inj: Any, method: str, body: bytes) -> bytes:
        """Apply a post-call fault kind to the already-received response."""
        if inj.kind == "lost_reply":
            from repro.soap.errors import TransportError

            raise TransportError(
                f"injected lost_reply at soap.http:{method} (request executed)"
            )
        if inj.kind == "torn":
            return inj.tear(body)
        return body

    @staticmethod
    def _safe_to_resend(exc: Exception) -> bool:
        """May the request be resent on a fresh connection?

        Only for the stale keep-alive race: the server recycled an idle
        persistent connection, so the request was torn down before it
        executed (clean close → ``RemoteDisconnected``; racing RST →
        reset/abort/broken-pipe during the send).  Never after a
        **timeout** (the server may still be executing; a resend would
        run a non-idempotent write twice) and never after a **torn
        reply** (``IncompleteRead`` — the request already executed, only
        the answer was lost).  Those surface as :class:`TransportError`
        for the resilience layer, whose retry policy knows which methods
        are idempotent and stamps ``IdempotencyKey`` on the rest.
        """
        import http.client

        if isinstance(exc, (TimeoutError, http.client.IncompleteRead)):
            return False
        return isinstance(
            exc,
            (
                http.client.RemoteDisconnected,
                ConnectionResetError,
                ConnectionAbortedError,
                BrokenPipeError,
            ),
        )

    def _roundtrip(self, payload: bytes, headers: dict[str, str]) -> Any:
        assert self._conn is not None
        self._conn.request("POST", "/soap", body=payload, headers=headers)
        response = self._conn.getresponse()
        response_body = response.read()
        return response, response_body

    def _post(self, payload: bytes, soap_action: str) -> bytes:
        import http.client
        import time

        from repro.soap.errors import TransportError

        if self.simulated_latency_s > 0:
            time.sleep(self.simulated_latency_s)
        headers = {
            "Content-Type": "text/xml; charset=utf-8",
            "SOAPAction": soap_action,
        }
        _CLIENT_REQUESTS.inc()
        self._ensure_conn()
        reused = self._conn_used
        try:
            response, body = self._roundtrip(payload, headers)
            if reused:
                _CLIENT_REUSE.inc()
        except (ConnectionError, OSError, http.client.HTTPException) as exc:
            self._invalidate()
            if not (reused and self._safe_to_resend(exc)):
                raise TransportError(f"HTTP request failed: {exc}") from exc
            # Stale keep-alive: the server hung up the idle connection
            # before our request ran.  One resend on a fresh socket.
            self._ensure_conn()
            try:
                response, body = self._roundtrip(payload, headers)
            except (ConnectionError, OSError, http.client.HTTPException) as exc2:
                self._invalidate()
                raise TransportError(f"HTTP request failed: {exc2}") from exc2
        self._conn_used = True
        if response.status not in (200, 500):
            raise TransportError(f"unexpected HTTP status {response.status}")
        return body

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
