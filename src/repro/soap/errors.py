"""Errors raised by the SOAP stack."""

from __future__ import annotations


class SoapError(Exception):
    """Base class for transport/protocol errors."""


class EncodingError(SoapError):
    """A value could not be encoded to (or decoded from) XML."""


class TransportError(SoapError):
    """The HTTP request could not be completed."""
