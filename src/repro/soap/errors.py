"""Errors raised by the SOAP stack."""

from __future__ import annotations


class SoapError(Exception):
    """Base class for transport/protocol errors."""


class EncodingError(SoapError):
    """A value could not be encoded to (or decoded from) XML."""


class TransportError(SoapError):
    """The HTTP request could not be completed."""


class DeadlineExceeded(TransportError):
    """The per-request deadline expired before the call completed.

    Subclasses :class:`TransportError` so legacy ``except TransportError``
    sites keep working, but the resilience layer never retries it: the
    time budget is spent.
    """


class CircuitOpenError(TransportError):
    """The endpoint's circuit breaker is open; the call was not attempted.

    Also a :class:`TransportError` subclass for compatibility, and also
    never retried — callers should degrade (skip the endpoint) instead.
    """
