"""Typed Python value <-> XML element codec.

Mirrors SOAP section-5 encoding: every element carries an ``xsi:type``-like
``t`` attribute so values round-trip with their types::

    <value t="int">42</value>
    <value t="struct"><member name="a"><value t="string">x</value></member></value>

Supported types: None, bool, int, float, str, date, time, datetime,
list/tuple, dict (string keys).
"""

from __future__ import annotations

import datetime as _dt
import xml.etree.ElementTree as ET
from typing import Any

from repro.soap.errors import EncodingError

_DATETIME_FMT = "%Y-%m-%dT%H:%M:%S.%f"
_DATE_FMT = "%Y-%m-%d"
_TIME_FMT = "%H:%M:%S.%f"


def encode_value(parent: ET.Element, value: Any, tag: str = "value") -> ET.Element:
    """Append *value* to *parent* as a typed element and return it."""
    element = ET.SubElement(parent, tag)
    if value is None:
        element.set("t", "null")
    elif isinstance(value, bool):
        element.set("t", "boolean")
        element.text = "1" if value else "0"
    elif isinstance(value, int):
        element.set("t", "int")
        element.text = str(value)
    elif isinstance(value, float):
        element.set("t", "double")
        element.text = repr(value)
    elif isinstance(value, str):
        element.set("t", "string")
        element.text = value
    elif isinstance(value, _dt.datetime):
        element.set("t", "dateTime")
        element.text = value.strftime(_DATETIME_FMT)
    elif isinstance(value, _dt.date):
        element.set("t", "date")
        element.text = value.strftime(_DATE_FMT)
    elif isinstance(value, _dt.time):
        element.set("t", "time")
        element.text = value.strftime(_TIME_FMT)
    elif isinstance(value, (list, tuple)):
        element.set("t", "array")
        for item in value:
            encode_value(element, item, "item")
    elif isinstance(value, dict):
        element.set("t", "struct")
        for key, item in value.items():
            if not isinstance(key, str):
                raise EncodingError(f"struct keys must be strings, got {key!r}")
            member = ET.SubElement(element, "member")
            member.set("name", key)
            encode_value(member, item)
    else:
        raise EncodingError(f"cannot encode value of type {type(value).__name__}")
    return element


def decode_value(element: ET.Element) -> Any:
    """Inverse of :func:`encode_value`."""
    kind = element.get("t")
    text = element.text or ""
    if kind == "null":
        return None
    if kind == "boolean":
        return text == "1"
    if kind == "int":
        return int(text)
    if kind == "double":
        return float(text)
    if kind == "string":
        return text
    if kind == "dateTime":
        return _dt.datetime.strptime(text, _DATETIME_FMT)
    if kind == "date":
        return _dt.datetime.strptime(text, _DATE_FMT).date()
    if kind == "time":
        return _dt.datetime.strptime(text, _TIME_FMT).time()
    if kind == "array":
        return [decode_value(child) for child in element]
    if kind == "struct":
        out: dict[str, Any] = {}
        for member in element:
            name = member.get("name")
            if name is None or len(member) != 1:
                raise EncodingError("malformed struct member")
            out[name] = decode_value(member[0])
        return out
    raise EncodingError(f"unknown encoded type {kind!r}")


def dumps(value: Any, tag: str = "payload") -> bytes:
    """Serialize one value to a standalone XML document."""
    root = ET.Element("root")
    encode_value(root, value, tag)
    return ET.tostring(root[0], encoding="utf-8")


def loads(data: bytes) -> Any:
    """Parse a document produced by :func:`dumps`."""
    try:
        return decode_value(ET.fromstring(data))
    except ET.ParseError as exc:
        raise EncodingError(f"malformed XML: {exc}") from exc
