"""SOAP-style web service stack.

Reproduces the cost structure of the paper's Apache/Tomcat + SOAP layer:
XML serialization of requests and responses, HTTP framing, a TCP round
trip, and server-side thread dispatch.

* :mod:`repro.soap.xmlcodec` — typed value <-> XML codec
* :mod:`repro.soap.envelope` — SOAP envelopes and faults
* :mod:`repro.soap.wsdl` — WSDL document generation
* :mod:`repro.soap.server` — threaded HTTP SOAP server
* :mod:`repro.soap.client` — HTTP SOAP client with connection reuse
* :mod:`repro.soap.transport` — pluggable transports (HTTP, loopback,
  in-process) so benchmarks can separate codec cost from socket cost
"""

from repro.soap.envelope import BulkItem, SoapFault
from repro.soap.server import SoapServer
from repro.soap.client import SoapClient
from repro.soap.transport import (
    DirectTransport,
    HttpTransport,
    LoopbackCodecTransport,
    Transport,
    execute_bulk,
)

__all__ = [
    "BulkItem",
    "SoapFault",
    "SoapServer",
    "SoapClient",
    "Transport",
    "DirectTransport",
    "HttpTransport",
    "LoopbackCodecTransport",
    "execute_bulk",
]
