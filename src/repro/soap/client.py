"""SOAP client: a thin wrapper binding a transport to call syntax.

`SoapClient` is transport-agnostic; `SoapClient.connect_http` builds one
over a persistent HTTP connection, and `from_wsdl` fetches a service's
WSDL and returns a generated stub object (mirroring the paper's
WSDL-generated Java client).
"""

from __future__ import annotations

from typing import Any

from repro.soap.transport import HttpTransport, Transport
from repro.soap.wsdl import generate_client_stubs, parse_wsdl


class SoapClient:
    """Invoke service methods over any :class:`Transport`."""

    def __init__(self, transport: Transport) -> None:
        self._transport = transport

    @classmethod
    def connect_http(
        cls,
        host: str,
        port: int,
        timeout: float = 30.0,
        connect_timeout: float | None = None,
        read_timeout: float | None = None,
        retry_policy: object | None = None,
        deadline_s: float | None = None,
    ) -> "SoapClient":
        """Connect over HTTP.

        ``connect_timeout`` / ``read_timeout`` split the historical
        single ``timeout`` into a TCP-handshake deadline and a
        per-response deadline (either defaults to ``timeout``).  Passing
        ``retry_policy`` (a :class:`repro.resilience.RetryPolicy`) and/or
        ``deadline_s`` wraps the transport in a
        :class:`~repro.resilience.transport.ResilientTransport`.
        """
        transport: Transport = HttpTransport(
            host,
            port,
            timeout=timeout,
            connect_timeout=connect_timeout,
            read_timeout=read_timeout,
        )
        if retry_policy is not None or deadline_s is not None:
            from repro.resilience.transport import ResilientTransport

            transport = ResilientTransport(
                transport,
                policy=retry_policy,
                endpoint=f"{host}:{port}",
                deadline_s=deadline_s,
            )
        return cls(transport)

    def call(self, method: str, **args: Any) -> Any:
        return self._transport.call(method, args)

    def close(self) -> None:
        self._transport.close()

    def __enter__(self) -> "SoapClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def fetch_wsdl(host: str, port: int, timeout: float = 10.0) -> bytes:
    """Download a service's WSDL document."""
    import http.client

    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("GET", "/wsdl")
        response = conn.getresponse()
        if response.status != 200:
            from repro.soap.errors import TransportError

            raise TransportError(f"WSDL fetch failed with status {response.status}")
        return response.read()
    finally:
        conn.close()


def from_wsdl(host: str, port: int) -> Any:
    """Fetch WSDL and return a generated client stub bound over HTTP."""
    description = parse_wsdl(fetch_wsdl(host, port))
    client = SoapClient.connect_http(host, port)
    return generate_client_stubs(description, lambda m, a: client.call(m, **a))
