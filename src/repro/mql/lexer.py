"""MQL lexer: source text → located tokens.

Hand-written single-pass scanner.  Every token carries its 1-based line
and column so the parser (and :class:`repro.mql.errors.MQLSyntaxError`)
can point a caret at the exact offending character.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.mql.errors import MQLSyntaxError

#: Reserved words (matched case-insensitively; canonical form is lower).
KEYWORDS = frozenset(
    {
        "files",
        "collections",
        "views",
        "where",
        "and",
        "or",
        "not",
        "like",
        "between",
        "order",
        "by",
        "asc",
        "desc",
        "limit",
        "offset",
        "union",
        "intersect",
        "minus",
        "true",
        "false",
        "date",
        "time",
        "datetime",
    }
)

#: Multi- and single-character operator/punctuation tokens.
_SYMBOLS = ("!=", "<=", ">=", "=", "<", ">", "(", ")", "-")

_ESCAPES = {"\\": "\\", '"': '"', "'": "'", "n": "\n", "t": "\t", "r": "\r"}


@dataclass(frozen=True)
class Token:
    """One lexeme: ``kind`` is ``ident``, ``keyword``, ``string``,
    ``int``, ``float``, ``symbol`` or ``eof``; ``value`` is the decoded
    payload (text for idents/keywords/symbols, the parsed value for
    literals)."""

    kind: str
    value: object
    line: int
    column: int
    text: str = ""


class Lexer:
    """Scan an MQL string into a token list (ending with ``eof``)."""

    def __init__(self, source: str) -> None:
        self.source = source
        self._pos = 0
        self._line = 1
        self._col = 1

    # -- helpers -----------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, n: int = 1) -> None:
        for _ in range(n):
            if self._pos < len(self.source) and self.source[self._pos] == "\n":
                self._line += 1
                self._col = 1
            else:
                self._col += 1
            self._pos += 1

    def _source_line(self, line: int) -> Optional[str]:
        lines = self.source.splitlines()
        if 1 <= line <= len(lines):
            return lines[line - 1]
        return None

    def _error(self, message: str, line: int, column: int) -> MQLSyntaxError:
        return MQLSyntaxError(message, line, column, self._source_line(line))

    # -- scanning ----------------------------------------------------------

    def tokens(self) -> list[Token]:
        out: list[Token] = []
        while True:
            token = self._next_token()
            out.append(token)
            if token.kind == "eof":
                return out

    def _next_token(self) -> Token:
        while self._peek().isspace():
            self._advance()
        line, col = self._line, self._col
        ch = self._peek()
        if ch == "":
            return Token("eof", None, line, col, "")
        if ch.isalpha() or ch == "_":
            return self._scan_word(line, col)
        if ch.isdigit():
            return self._scan_number(line, col)
        if ch in ('"', "'"):
            return self._scan_string(line, col)
        for symbol in _SYMBOLS:
            if self.source.startswith(symbol, self._pos):
                self._advance(len(symbol))
                return Token("symbol", symbol, line, col, symbol)
        raise self._error(f"unexpected character {ch!r}", line, col)

    def _scan_word(self, line: int, col: int) -> Token:
        start = self._pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start : self._pos]
        lowered = text.lower()
        if lowered in KEYWORDS:
            return Token("keyword", lowered, line, col, text)
        return Token("ident", text, line, col, text)

    def _scan_number(self, line: int, col: int) -> Token:
        start = self._pos
        while self._peek().isdigit():
            self._advance()
        is_float = False
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in ("e", "E") and (
            self._peek(1).isdigit()
            or (self._peek(1) in ("+", "-") and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() in ("+", "-"):
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.source[start : self._pos]
        if self._peek().isalpha() or self._peek() == "_":
            raise self._error(
                f"malformed number {text + self._peek()!r}", line, col
            )
        value: object = float(text) if is_float else int(text)
        return Token("float" if is_float else "int", value, line, col, text)

    def _scan_string(self, line: int, col: int) -> Token:
        start = self._pos
        quote = self._peek()
        self._advance()
        parts: list[str] = []
        while True:
            ch = self._peek()
            if ch == "" or ch == "\n":
                raise self._error("unterminated string literal", line, col)
            if ch == quote:
                self._advance()
                break
            if ch == "\\":
                esc_line, esc_col = self._line, self._col
                self._advance()
                escaped = self._peek()
                if escaped not in _ESCAPES:
                    bad = "\\" + escaped
                    raise self._error(
                        f"invalid string escape {bad!r}", esc_line, esc_col
                    )
                parts.append(_ESCAPES[escaped])
                self._advance()
                continue
            parts.append(ch)
            self._advance()
        text = self.source[start : self._pos]
        return Token("string", "".join(parts), line, col, text)


def tokenize(source: str) -> list[Token]:
    """Lex *source*; raises :class:`MQLSyntaxError` on bad input."""
    return Lexer(source).tokens()
