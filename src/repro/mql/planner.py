"""Cost-based strategy selection for compiled MQL leaves.

Each conjunctive leaf can be answered three ways, all returning the
same ``(sort key, name)`` pairs:

* **index** — probe the ``av_<type>`` secondary index once per user
  condition (``attr_id`` prefix plus the value clause), intersect the
  object-id sets smallest-first, then fetch the surviving rows;
* **join** — the classic EAV self-join SQL from
  :meth:`repro.core.query.ObjectQuery.to_sql`, served through the
  generation-stamped query result cache;
* **scan** — a genuine full pass over ``attribute_value`` plus the
  object table, evaluated in Python with the engine's own expression
  semantics (the equivalence-lane oracle and the ablation baseline).

Costs come from the incrementally maintained ``attribute_stats`` table
(:mod:`repro.mql.stats`).  Selectivity model, deliberately simple:

* equality → ``rows / distinct``;
* range / between / prefix-``like`` → ``rows / 3``;
* ``!=`` and wildcard-leading ``like`` → ``rows`` (probe-able via the
  attr_id prefix, but unselective).

``cost(index) = Σ probe estimates + |conditions| · min estimate``,
``cost(join) = best estimate · |conditions|`` (the best condition
drives the join as base table), ``cost(scan) = all EAV rows of the
object type``.  Ties break index → join → scan.  Statistics are
advisory: a bad estimate costs time, never correctness.

Compiled plans land in a small per-catalog LRU keyed by (MQL text,
``attribute_def`` generation, strategy override) — any attribute
(re)definition bumps the generation and naturally invalidates every
cached plan, mirroring the PR-3 result-cache protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import TYPE_CHECKING, Optional

from repro.core.errors import QueryError
from repro.mql import stats as mql_stats
from repro.mql.compiler import CompiledStatement, Leaf
from repro.obs.metrics import counter as _obs_counter

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.catalog import MetadataCatalog

STRATEGIES = ("index", "join", "scan")

_PLAN_CACHE = _obs_counter(
    "mcs_mql_plan_cache_total",
    "Compiled-MQL plan cache lookups by result",
    labels=("result",),
)

#: Estimate divisor for range-shaped predicates (between, < > <= >=,
#: prefix LIKE) when no finer information exists.
_RANGE_FRACTION = 3.0


@dataclass(frozen=True)
class ConditionEstimate:
    attribute: str
    op: str
    rows: float
    probe_able: bool  # sargable enough to drive an index probe cheaply


@dataclass(frozen=True)
class LeafPlan:
    """The chosen strategy (and its reasoning) for one leaf."""

    strategy: str
    cost: float
    costs: tuple[tuple[str, float], ...]  # every strategy's modeled cost
    estimates: tuple[ConditionEstimate, ...]


@dataclass
class StatementPlan:
    """A compiled statement plus one :class:`LeafPlan` per leaf."""

    compiled: CompiledStatement
    leaf_plans: list[LeafPlan] = dc_field(default_factory=list)

    def plan_for(self, leaf: Leaf) -> LeafPlan:
        return self.leaf_plans[leaf.index]


def plan_statement(
    catalog: "MetadataCatalog",
    compiled: CompiledStatement,
    strategy: Optional[str] = None,
) -> StatementPlan:
    """Choose a strategy per leaf (or force *strategy* everywhere)."""
    if strategy is not None and strategy not in STRATEGIES:
        raise QueryError(
            f"unknown MQL strategy {strategy!r}; expected one of {STRATEGIES}"
        )
    plan = StatementPlan(compiled=compiled)
    for leaf in compiled.leaves:
        plan.leaf_plans.append(plan_leaf(catalog, leaf, strategy))
    return plan


def plan_leaf(
    catalog: "MetadataCatalog",
    leaf: Leaf,
    forced: Optional[str] = None,
    reorder: bool = True,
) -> LeafPlan:
    """Pick a strategy for one leaf.

    ``reorder=True`` (statement planning) re-sorts the leaf's conditions
    most-selective-first in place — it benefits the index strategy
    (drive the intersection from the smallest set) and the join strategy
    (the first condition is ``to_sql``'s base table).  The shard router
    passes ``reorder=False``: its leaves are shared across concurrent
    scatter calls and must not be mutated mid-flight.
    """
    estimates = _estimate_conditions(catalog, leaf)
    if reorder:
        # Stable by attribute name so plans are deterministic under
        # equal estimates.
        order = sorted(
            range(len(estimates)),
            key=lambda i: (estimates[i].rows, estimates[i].attribute),
        )
        leaf.query.conditions[:] = [leaf.query.conditions[i] for i in order]
        estimates = [estimates[i] for i in order]
    estimates = tuple(estimates)

    conn = catalog._conn
    eav_total = float(mql_stats.total_rows(conn, leaf.object_type))
    costs: list[tuple[str, float]] = []
    if estimates and any(e.probe_able for e in estimates):
        probe_total = sum(e.rows for e in estimates)
        candidates = min(e.rows for e in estimates)
        costs.append(("index", probe_total + len(estimates) * candidates))
    if estimates:
        costs.append(("join", estimates[0].rows * len(estimates)))
    else:
        # No user conditions: the "join" SQL degenerates to a plain
        # object-table query; there is nothing for probes to intersect.
        costs.append(("join", eav_total))
    costs.append(("scan", eav_total + max(eav_total, 1.0)))

    available = [name for name, _ in costs]
    if forced is not None:
        if forced == "index" and "index" not in available:
            # Forcing indexes on a leaf with nothing to probe falls back
            # to the join shape — still index-backed at the SQL layer.
            strategy = "join"
        else:
            strategy = forced
        cost = dict(costs).get(strategy, 0.0)
    else:
        rank = {name: pos for pos, name in enumerate(STRATEGIES)}
        strategy, cost = min(costs, key=lambda item: (item[1], rank[item[0]]))
    return LeafPlan(
        strategy=strategy,
        cost=cost,
        costs=tuple(costs),
        estimates=estimates,
    )


def _estimate_conditions(
    catalog: "MetadataCatalog", leaf: Leaf
) -> list[ConditionEstimate]:
    conn = catalog._conn
    out: list[ConditionEstimate] = []
    for condition in leaf.query.conditions:
        definition = catalog.get_attribute_def(condition.attribute)
        if leaf.object_type not in definition.object_types:
            raise QueryError(
                f"attribute {condition.attribute!r} does not apply to "
                f"{leaf.object_type.value}s"
            )
        stat = mql_stats.read_stats(conn, definition.id, leaf.object_type)
        rows = float(stat.row_count) if stat else 0.0
        distinct = float(stat.distinct_count) if stat else 0.0
        if condition.op == "=":
            est = rows / distinct if distinct else rows
            probe_able = True
        elif condition.op in ("<", "<=", ">", ">=", "between"):
            est = rows / _RANGE_FRACTION
            probe_able = True
        elif condition.op == "like":
            prefix = isinstance(condition.value, str) and not condition.value[
                :1
            ] in ("%", "_")
            est = rows / _RANGE_FRACTION if prefix else rows
            probe_able = True
        else:  # != — still probe-able via the attr_id prefix, not selective
            est = rows
            probe_able = True
        out.append(
            ConditionEstimate(
                attribute=condition.attribute,
                op=condition.op,
                rows=max(est, 0.0),
                probe_able=probe_able,
            )
        )
    return out


# --------------------------------------------------------------------------
# EXPLAIN rendering
# --------------------------------------------------------------------------


def explain_lines(plan: StatementPlan) -> list[str]:
    """Human-readable physical plan, stable enough for golden tests."""
    compiled = plan.compiled
    lines = [f"MQL: {compiled.text}"]
    for leaf, leaf_plan in zip(compiled.leaves, plan.leaf_plans):
        conds = len(leaf.query.conditions)
        pre = len(leaf.query.predefined)
        lines.append(
            f"leaf {leaf.index} [{leaf.object_type.value}]: "
            f"strategy={leaf_plan.strategy} cost={leaf_plan.cost:.1f} "
            f"(conditions={conds} predefined={pre})"
        )
        for estimate in leaf_plan.estimates:
            lines.append(
                f"  {estimate.attribute} {estimate.op} ? "
                f"(est {estimate.rows:.1f} rows)"
            )
        alternatives = ", ".join(
            f"{name}={cost:.1f}" for name, cost in leaf_plan.costs
        )
        lines.append(f"  costs: {alternatives}")
    lines.append(f"algebra: {_algebra_text(compiled.root)}")
    direction = "desc" if compiled.descending else "asc"
    modifiers = f"order by {compiled.order_field} {direction}"
    if compiled.limit is not None:
        modifiers += f" limit {compiled.limit}"
    if compiled.offset is not None:
        modifiers += f" offset {compiled.offset}"
    lines.append(modifiers)
    return lines


def _algebra_text(node) -> str:
    if isinstance(node, Leaf):
        return f"leaf{node.index}"
    return f"{node.op}({_algebra_text(node.left)}, {_algebra_text(node.right)})"


def record_plan_cache(hit: bool) -> None:
    _PLAN_CACHE.labels("hit" if hit else "miss").inc()
