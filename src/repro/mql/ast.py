"""MQL abstract syntax tree and the canonical ``to_mql()`` printer.

Nodes are frozen dataclasses so structural equality works out of the
box — the Hypothesis round-trip property (AST → ``to_mql()`` → parser →
AST) compares whole trees with ``==``.

The printer is *canonical*: it parenthesizes exactly where the grammar
needs parentheses to reparse into the identical tree (nested boolean
combinators, set-operation operands, negated compound predicates), and
renders every value in a form the lexer maps back to the same Python
value (typed ``date``/``time``/``datetime`` literals, escaped strings).
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Any, Optional, Union

#: Comparison operators shared with ``repro.core.query`` (between/like
#: are rendered with their keyword forms).
OPS = ("=", "!=", "<", "<=", ">", ">=", "like", "between")

_OBJECT_WORDS = {"file": "files", "collection": "collections", "view": "views"}


@dataclass(frozen=True)
class Condition:
    """One predicate leaf: ``<field> <op> <value>``.

    ``between`` stores a ``(low, high)`` tuple in ``value``.  Whether
    ``field`` is a predefined column or a user-defined attribute is
    resolved by the compiler, not here.
    """

    field: str
    op: str
    value: Any


@dataclass(frozen=True)
class And:
    parts: tuple


@dataclass(frozen=True)
class Or:
    parts: tuple


@dataclass(frozen=True)
class Not:
    inner: Any


Predicate = Union[Condition, And, Or, Not]


@dataclass(frozen=True)
class Query:
    """One object-type source with an optional predicate."""

    object_type: str  # "file" | "collection" | "view"
    where: Optional[Predicate] = None


@dataclass(frozen=True)
class SetOp:
    """Dataset algebra: ``union`` / ``intersect`` / ``minus`` (left-assoc)."""

    op: str
    left: Any
    right: Any


@dataclass(frozen=True)
class Statement:
    """A full statement: a source tree plus ordering and pagination."""

    source: Any  # Query | SetOp | Statement (nested, parenthesized)
    order_by: Optional[str] = None
    descending: bool = False
    limit: Optional[int] = None
    offset: Optional[int] = None

    def has_modifiers(self) -> bool:
        return (
            self.order_by is not None
            or self.limit is not None
            or self.offset is not None
        )


# --------------------------------------------------------------------------
# Canonical printing
# --------------------------------------------------------------------------


def format_value(value: Any) -> str:
    """Render a literal so the lexer parses it back to the same value."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, str):
        escaped = (
            value.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\t", "\\t")
            .replace("\r", "\\r")
        )
        return f'"{escaped}"'
    if isinstance(value, _dt.datetime):
        return f'datetime "{value.isoformat()}"'
    if isinstance(value, _dt.date):
        return f'date "{value.isoformat()}"'
    if isinstance(value, _dt.time):
        return f'time "{value.isoformat()}"'
    raise TypeError(f"no MQL literal form for {type(value).__name__}")


def _pred_text(pred: Predicate) -> str:
    if isinstance(pred, Condition):
        if pred.op == "between":
            low, high = pred.value
            return (
                f"{pred.field} between {format_value(low)} "
                f"and {format_value(high)}"
            )
        return f"{pred.field} {pred.op} {format_value(pred.value)}"
    if isinstance(pred, Not):
        inner = _pred_text(pred.inner)
        if isinstance(pred.inner, (And, Or)):
            inner = f"({inner})"
        return f"not {inner}"
    if isinstance(pred, And):
        rendered = []
        for part in pred.parts:
            text = _pred_text(part)
            # Nested combinators must keep their grouping on reparse.
            if isinstance(part, (And, Or)):
                text = f"({text})"
            rendered.append(text)
        return " and ".join(rendered)
    if isinstance(pred, Or):
        rendered = []
        for part in pred.parts:
            text = _pred_text(part)
            # ``or`` binds loosest, so only a nested Or needs parens;
            # an And operand reparses into the same grouping bare.
            if isinstance(part, Or):
                text = f"({text})"
            rendered.append(text)
        return " or ".join(rendered)
    raise TypeError(f"not an MQL predicate: {pred!r}")


def _source_text(node: Any) -> str:
    if isinstance(node, Query):
        text = _OBJECT_WORDS[node.object_type]
        if node.where is not None:
            text += f" where {_pred_text(node.where)}"
        return text
    if isinstance(node, SetOp):
        left = _source_text(node.left)
        if isinstance(node.left, (SetOp, Statement)):
            left = f"({left})"
        right = _source_text(node.right)
        if isinstance(node.right, (SetOp, Statement)):
            right = f"({right})"
        return f"{left} {node.op} {right}"
    if isinstance(node, Statement):
        return to_mql(node)
    raise TypeError(f"not an MQL source node: {node!r}")


def to_mql(statement: Statement) -> str:
    """Canonical MQL text for *statement* (reparses to an equal tree)."""
    text = _source_text(statement.source)
    if statement.order_by is not None:
        text += f" order by {statement.order_by}"
        if statement.descending:
            text += " desc"
    if statement.limit is not None:
        text += f" limit {statement.limit}"
    if statement.offset is not None:
        text += f" offset {statement.offset}"
    return text


__all__ = [
    "OPS",
    "And",
    "Condition",
    "Not",
    "Or",
    "Predicate",
    "Query",
    "SetOp",
    "Statement",
    "format_value",
    "to_mql",
]
