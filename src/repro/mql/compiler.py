"""MQL compiler: parsed statements → dataset algebra over ObjectQuery leaves.

The executor only knows how to answer *conjunctive* queries (the shape
:class:`repro.core.query.ObjectQuery` has always had), so compilation
normalizes the predicate tree:

1. **Negation push-down** rewrites ``not`` into inverted comparison
   operators (``=``/``!=``, ``<``/``>=``, ``>``/``<=``) and De Morgan's
   laws; ``not between`` becomes an ``or`` of the two open ranges.
   ``not like`` has no operator inverse in the engine and is rejected.
2. **DNF expansion** flattens the result into an ``or`` of conjunctions,
   capped at :data:`MAX_DNF_CONJUNCTS` branches so adversarial inputs
   cannot explode the plan.
3. Each conjunction becomes one **leaf**: an ``ObjectQuery`` whose
   conditions are split into predefined object columns versus
   user-defined EAV attributes (predefined names win on collision).
   Multiple branches recombine as a leaf-level ``union`` — exact under
   the executor's name-dedup contract.

Ordering and pagination stay *outside* the leaves: every leaf carries
the statement's sort field (so per-shard streams can merge on the key)
but no limit/offset — those apply once, after set algebra, in the
executor.  Nested parenthesized statements with their own ``order by``/
``limit``/``offset`` parse fine but are rejected here: modifiers are
only meaningful at the top level.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Any, Optional, Union

from repro.core.errors import QueryError
from repro.core.model import ObjectType
from repro.core.query import _PREDEFINED_FILE_FIELDS, ObjectQuery
from repro.mql import ast

#: Upper bound on DNF disjuncts; past this the predicate is rejected.
MAX_DNF_CONJUNCTS = 64

#: Predefined (object-table) column names per object type; anything else
#: is a user-defined attribute resolved through ``attribute_def``.
_PREDEFINED_FIELDS = {
    ObjectType.FILE: frozenset(_PREDEFINED_FILE_FIELDS),
    ObjectType.COLLECTION: frozenset({"name", "creator", "description"}),
    ObjectType.VIEW: frozenset({"name", "creator", "description"}),
}

_INVERTED_OP = {"=": "!=", "!=": "=", "<": ">=", ">=": "<", ">": "<=", "<=": ">"}

#: Default sort: ascending object name, the one field every type has.
DEFAULT_ORDER_FIELD = "name"


@dataclass(frozen=True)
class Leaf:
    """One conjunctive branch, executable by any of the three strategies."""

    index: int
    query: ObjectQuery

    @property
    def object_type(self) -> ObjectType:
        return self.query.object_type


@dataclass(frozen=True)
class Algebra:
    """A set operation over compiled subtrees (``Leaf`` or ``Algebra``)."""

    op: str  # "union" | "intersect" | "minus"
    left: Union["Algebra", Leaf]
    right: Union["Algebra", Leaf]


@dataclass
class CompiledStatement:
    """The executable form of one MQL statement."""

    text: str
    root: Union[Algebra, Leaf]
    leaves: list[Leaf] = dc_field(default_factory=list)
    order_field: str = DEFAULT_ORDER_FIELD
    descending: bool = False
    limit: Optional[int] = None
    offset: Optional[int] = None

    @property
    def object_types(self) -> frozenset[ObjectType]:
        return frozenset(leaf.object_type for leaf in self.leaves)


def compile_statement(statement: ast.Statement) -> CompiledStatement:
    """Lower a parsed :class:`repro.mql.ast.Statement` to algebra leaves."""
    compiled = CompiledStatement(
        text=ast.to_mql(statement),
        root=None,  # type: ignore[arg-type]  # filled in below
        order_field=statement.order_by or DEFAULT_ORDER_FIELD,
        descending=statement.descending,
        limit=statement.limit,
        offset=statement.offset,
    )
    compiled.root = _compile_node(statement.source, compiled)
    return compiled


def _compile_node(
    node: Any, compiled: CompiledStatement
) -> Union[Algebra, Leaf]:
    if isinstance(node, ast.Statement):
        # The parser unwraps modifier-free parenthesized statements, so
        # reaching one here means it carried order/limit/offset.
        raise QueryError(
            "order by / limit / offset are only allowed at the top level "
            "of an MQL statement, not inside a parenthesized subquery"
        )
    if isinstance(node, ast.SetOp):
        left = _compile_node(node.left, compiled)
        right = _compile_node(node.right, compiled)
        return Algebra(op=node.op, left=left, right=right)
    if isinstance(node, ast.Query):
        return _compile_query(node, compiled)
    raise QueryError(f"unsupported MQL source node {type(node).__name__!r}")


def _compile_query(
    query: ast.Query, compiled: CompiledStatement
) -> Union[Algebra, Leaf]:
    object_type = ObjectType(query.object_type)
    if query.where is None:
        branches: list[list[ast.Condition]] = [[]]
    else:
        branches = _dnf(_push_not(query.where, negate=False))
        if len(branches) > MAX_DNF_CONJUNCTS:
            raise QueryError(
                f"predicate expands to {len(branches)} conjunctive branches "
                f"(limit {MAX_DNF_CONJUNCTS}); simplify the query"
            )
    node: Optional[Union[Algebra, Leaf]] = None
    for branch in branches:
        leaf = _build_leaf(object_type, branch, compiled)
        node = leaf if node is None else Algebra("union", node, leaf)
    assert node is not None
    return node


def _build_leaf(
    object_type: ObjectType,
    conditions: list[ast.Condition],
    compiled: CompiledStatement,
) -> Leaf:
    query = ObjectQuery(object_type=object_type)
    predefined = _PREDEFINED_FIELDS[object_type]
    for condition in conditions:
        if condition.field in predefined:
            query.where_field(condition.field, condition.op, condition.value)
        else:
            query.where(condition.field, condition.op, condition.value)
    # Every leaf carries the statement's sort key so each strategy (and
    # each shard) emits (name, key) pairs that merge deterministically.
    # order_by also validates the field against this leaf's object type.
    query.order_by(compiled.order_field, compiled.descending)
    leaf = Leaf(index=len(compiled.leaves), query=query)
    compiled.leaves.append(leaf)
    return leaf


# --------------------------------------------------------------------------
# Predicate normalization
# --------------------------------------------------------------------------


def _push_not(pred: ast.Predicate, negate: bool) -> ast.Predicate:
    """Rewrite to negation normal form: ``not`` only via inverted ops."""
    if isinstance(pred, ast.Not):
        return _push_not(pred.inner, not negate)
    if isinstance(pred, ast.And):
        parts = tuple(_push_not(part, negate) for part in pred.parts)
        return ast.Or(parts) if negate else ast.And(parts)
    if isinstance(pred, ast.Or):
        parts = tuple(_push_not(part, negate) for part in pred.parts)
        return ast.And(parts) if negate else ast.Or(parts)
    if isinstance(pred, ast.Condition):
        if not negate:
            return pred
        return _negate_condition(pred)
    raise QueryError(f"unsupported MQL predicate node {type(pred).__name__!r}")


def _negate_condition(condition: ast.Condition) -> ast.Predicate:
    if condition.op in _INVERTED_OP:
        return ast.Condition(
            condition.field, _INVERTED_OP[condition.op], condition.value
        )
    if condition.op == "between":
        low, high = condition.value
        return ast.Or(
            (
                ast.Condition(condition.field, "<", low),
                ast.Condition(condition.field, ">", high),
            )
        )
    raise QueryError(
        f"cannot negate {condition.op!r} on {condition.field!r}: "
        "rewrite the query without 'not ... like'"
    )


def _dnf(pred: ast.Predicate) -> list[list[ast.Condition]]:
    """Disjunctive normal form of an NNF predicate, with branch cap."""
    if isinstance(pred, ast.Condition):
        return [[pred]]
    if isinstance(pred, ast.Or):
        out: list[list[ast.Condition]] = []
        for part in pred.parts:
            out.extend(_dnf(part))
            if len(out) > MAX_DNF_CONJUNCTS:
                break  # caller reports the overflow with the final count
        return out
    if isinstance(pred, ast.And):
        product: list[list[ast.Condition]] = [[]]
        for part in pred.parts:
            branches = _dnf(part)
            product = [
                existing + branch
                for existing in product
                for branch in branches
            ]
            if len(product) > MAX_DNF_CONJUNCTS:
                # Keep expanding is pointless; the cap check in
                # _compile_query rejects with the count we have.
                return product
        return product
    raise QueryError(f"unsupported MQL predicate node {type(pred).__name__!r}")
