"""Per-attribute statistics for the cost-based MQL planner.

One ``attribute_stats`` row per (attribute, object type) tracks:

* ``row_count`` — attribute_value rows carrying this attribute;
* ``distinct_count`` — distinct values observed;
* ``min_value`` / ``max_value`` — value range, as canonical strings
  (``str()`` for numbers, ISO format for temporals).

Statistics are maintained *incrementally* on the write path (see the
``note_*`` hooks called from :class:`repro.core.catalog.MetadataCatalog`)
and live in a normal engine table, so they ride the same WAL, the same
transactions (a rolled-back bulk item rolls its stat deltas back too)
and the same commit-time generation bumps as the data they describe.

Incremental maintenance drifts in two documented ways:

* removals decrement ``row_count`` but never ``distinct_count`` (whether
  the removed value was the last of its kind would need a probe per
  delete);
* updates widen ``min_value``/``max_value`` and may re-count a value
  that was already present.

The planner treats statistics as purely *advisory*: a drifted estimate
can pick a slower strategy, never a wrong answer (the ``-m mql``
equivalence lane holds all strategies to identical results).
:func:`analyze` recomputes everything exactly from ``attribute_value``.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

from repro.core.model import AttributeDef, AttributeType, ObjectType
from repro.obs.metrics import counter as _obs_counter

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.engine import Connection

_STATS_UPDATES = _obs_counter(
    "mcs_index_stats_updates_total",
    "attribute_stats maintenance operations by action",
    labels=("action",),
)


@dataclass(frozen=True)
class AttrStats:
    """Planner-facing snapshot of one (attribute, object type) pair."""

    row_count: int
    distinct_count: int
    min_value: Optional[str]
    max_value: Optional[str]


def canonical(value: Any) -> Optional[str]:
    """Stable string form for min/max tracking (ISO for temporals)."""
    if value is None:
        return None
    if isinstance(value, (_dt.datetime, _dt.date, _dt.time)):
        return value.isoformat()
    return str(value)


def from_canonical(value_type: AttributeType, text: Optional[str]) -> Any:
    """Invert :func:`canonical` using the attribute's declared type."""
    if text is None:
        return None
    if value_type is AttributeType.INT:
        return int(text)
    if value_type is AttributeType.FLOAT:
        return float(text)
    if value_type is AttributeType.DATE:
        return _dt.date.fromisoformat(text)
    if value_type is AttributeType.TIME:
        return _dt.time.fromisoformat(text)
    if value_type is AttributeType.DATETIME:
        return _dt.datetime.fromisoformat(text)
    return text


def read_stats(
    conn: "Connection", attr_id: int, object_type: ObjectType
) -> Optional[AttrStats]:
    row = conn.execute(
        "SELECT row_count, distinct_count, min_value, max_value "
        "FROM attribute_stats WHERE attr_id = ? AND object_type = ?",
        (attr_id, object_type.value),
    ).fetchone()
    if row is None:
        return None
    return AttrStats(row[0] or 0, row[1] or 0, row[2], row[3])


def total_rows(conn: "Connection", object_type: ObjectType) -> int:
    """Advisory total attribute_value rows for one object type."""
    total = conn.execute(
        "SELECT SUM(row_count) FROM attribute_stats WHERE object_type = ?",
        (object_type.value,),
    ).scalar()
    return int(total or 0)


# --------------------------------------------------------------------------
# Incremental maintenance (write-path hooks)
# --------------------------------------------------------------------------


def note_insert(
    conn: "Connection",
    definition: AttributeDef,
    object_type: ObjectType,
    value: Any,
) -> None:
    """A new attribute_value row was inserted with *value*."""
    novel = _value_count(conn, definition, object_type, value) == 1
    _apply(
        conn,
        definition.id,
        object_type,
        row_delta=1,
        distinct_delta=1 if novel else 0,
        value=canonical(value),
        value_type=definition.value_type,
    )
    _STATS_UPDATES.labels("insert").inc()


def note_update(
    conn: "Connection",
    definition: AttributeDef,
    object_type: ObjectType,
    value: Any,
) -> None:
    """An existing attribute_value row was overwritten with *value*.

    Documented drift: the old value's distinct/min/max contribution is
    not retracted, and a value that merely moved between objects can be
    re-counted as novel.
    """
    novel = _value_count(conn, definition, object_type, value) == 1
    _apply(
        conn,
        definition.id,
        object_type,
        row_delta=0,
        distinct_delta=1 if novel else 0,
        value=canonical(value),
        value_type=definition.value_type,
    )
    _STATS_UPDATES.labels("update").inc()


def note_insert_batch(
    conn: "Connection",
    notes: "list[tuple[AttributeDef, ObjectType, Any]]",
) -> None:
    """Batched :func:`note_insert` for bulk writes.

    Per-row maintenance costs three statements per attribute value —
    ruinous for a 32-file bulk insert carrying ten attributes each.
    Aggregating per (attribute, object type) needs one stats read and
    one stats write per attribute plus one novelty probe per *distinct*
    inserted value: a value inserted ``n`` times (with all ``n`` rows
    already in the table) is novel exactly when a ``LIMIT n+1`` probe
    finds only those ``n`` rows.
    """
    if not notes:
        return
    groups: dict[tuple[int, ObjectType], list[tuple[AttributeDef, Any]]] = {}
    for definition, object_type, value in notes:
        groups.setdefault((definition.id, object_type), []).append(
            (definition, value)
        )
    for (attr_id, object_type), pairs in groups.items():
        definition = pairs[0][0]
        value_type = definition.value_type
        counts: dict[Any, int] = {}
        for _d, value in pairs:
            if value is not None:
                counts[value] = counts.get(value, 0) + 1
        distinct_delta = 0
        for value, n in counts.items():
            if _rows_holding(conn, definition, object_type, value, n + 1) == n:
                distinct_delta += 1
        batch_min = batch_max = None
        if counts:
            ordered = sorted(counts)
            batch_min, batch_max = canonical(ordered[0]), canonical(ordered[-1])
        _apply_span(
            conn,
            attr_id,
            object_type,
            row_delta=len(pairs),
            distinct_delta=distinct_delta,
            min_value=batch_min,
            max_value=batch_max,
            value_type=value_type,
        )
    _STATS_UPDATES.labels("insert").inc(len(notes))


def note_remove(
    conn: "Connection", attr_id: int, object_type: ObjectType, count: int
) -> None:
    """*count* attribute_value rows were deleted (distinct not retracted)."""
    if count <= 0:
        return
    conn.execute(
        "UPDATE attribute_stats SET row_count = row_count - ? "
        "WHERE attr_id = ? AND object_type = ?",
        (count, attr_id, object_type.value),
    )
    _STATS_UPDATES.labels("remove").inc()


def note_remove_many(
    conn: "Connection", object_type: ObjectType, counts: dict[int, int]
) -> None:
    """Decrement ``row_count`` for many attributes in few statements.

    Attributes losing the same number of rows share one
    ``UPDATE ... WHERE attr_id IN (...)`` — an object with ten
    single-valued attributes costs one statement, not ten.
    """
    by_delta: dict[int, list[int]] = {}
    for attr_id, count in counts.items():
        if count > 0:
            by_delta.setdefault(count, []).append(attr_id)
    for delta, attr_ids in sorted(by_delta.items()):
        placeholders = ", ".join("?" for _ in attr_ids)
        conn.execute(
            f"UPDATE attribute_stats SET row_count = row_count - ? "
            f"WHERE object_type = ? AND attr_id IN ({placeholders})",
            (delta, object_type.value, *attr_ids),
        )
        _STATS_UPDATES.labels("remove").inc(len(attr_ids))


def note_object_delete(
    conn: "Connection", object_type: ObjectType, object_id: int
) -> None:
    """Call *before* deleting an object's attribute_value rows."""
    rows = conn.execute(
        "SELECT attr_id FROM attribute_value WHERE object_type = ? "
        "AND object_id = ?",
        (object_type.value, object_id),
    ).fetchall()
    counts: dict[int, int] = {}
    for (attr_id,) in rows:
        counts[attr_id] = counts.get(attr_id, 0) + 1
    note_remove_many(conn, object_type, counts)


def analyze(conn: "Connection") -> int:
    """Exact recompute of every statistics row; returns rows written.

    The one non-incremental path: a full pass over ``attribute_value``
    per defined attribute, repairing all accumulated drift.
    """
    defs = conn.execute(
        "SELECT id, value_type, object_types FROM attribute_def"
    ).fetchall()
    written = 0
    for attr_id, value_type_text, types_text in defs:
        value_type = AttributeType(value_type_text)
        column = value_type.value_column
        for type_text in types_text.split(","):
            if not type_text:
                continue
            object_type = ObjectType(type_text)
            groups = conn.execute(
                f"SELECT {column}, COUNT(*) FROM attribute_value "
                "WHERE attr_id = ? AND object_type = ? "
                f"GROUP BY {column}",
                (attr_id, object_type.value),
            ).fetchall()
            count = sum(int(n) for _value, n in groups)
            values = [value for value, _n in groups if value is not None]
            _write_exact(
                conn,
                attr_id,
                object_type,
                count,
                len(values),
                canonical(min(values)) if values else None,
                canonical(max(values)) if values else None,
            )
            written += 1
    _STATS_UPDATES.labels("analyze").inc()
    return written


# -- internals --------------------------------------------------------------


def _value_count(
    conn: "Connection",
    definition: AttributeDef,
    object_type: ObjectType,
    value: Any,
) -> int:
    """Rows already holding *value*, saturated at 2.

    The callers only distinguish "this row is the only one" (count 1)
    from "others exist", so an existence probe with ``LIMIT 2`` suffices
    — a ``COUNT(*)`` would walk every matching row and turn each write
    into O(rows sharing the value).
    """
    if value is None:
        return 2  # NULLs never count as a distinct value
    return _rows_holding(conn, definition, object_type, value, 2)


def _rows_holding(
    conn: "Connection",
    definition: AttributeDef,
    object_type: ObjectType,
    value: Any,
    limit: int,
) -> int:
    """Rows holding *value*, saturated at *limit* (an indexed probe)."""
    column = definition.value_type.value_column
    rows = conn.execute(
        f"SELECT attr_id FROM attribute_value WHERE attr_id = ? "
        f"AND object_type = ? AND {column} = ? LIMIT {int(limit)}",
        (definition.id, object_type.value, value),
    ).fetchall()
    return len(rows)


def _apply(
    conn: "Connection",
    attr_id: int,
    object_type: ObjectType,
    row_delta: int,
    distinct_delta: int,
    value: Optional[str],
    value_type: AttributeType,
) -> None:
    _apply_span(
        conn,
        attr_id,
        object_type,
        row_delta,
        distinct_delta,
        min_value=value,
        max_value=value,
        value_type=value_type,
    )


def _apply_span(
    conn: "Connection",
    attr_id: int,
    object_type: ObjectType,
    row_delta: int,
    distinct_delta: int,
    min_value: Optional[str],
    max_value: Optional[str],
    value_type: AttributeType,
) -> None:
    row = conn.execute(
        "SELECT row_count, distinct_count, min_value, max_value "
        "FROM attribute_stats WHERE attr_id = ? AND object_type = ?",
        (attr_id, object_type.value),
    ).fetchone()
    if row is None:
        conn.execute(
            "INSERT INTO attribute_stats (attr_id, object_type, row_count, "
            "distinct_count, min_value, max_value) VALUES (?, ?, ?, ?, ?, ?)",
            (
                attr_id,
                object_type.value,
                max(row_delta, 0),
                max(distinct_delta, 0),
                min_value,
                max_value,
            ),
        )
        return
    row_count, distinct_count, min_text, max_text = row
    new_min, new_max = min_text, max_text
    if min_value is not None:
        # Widen by comparing in the attribute's value domain, not as
        # text ("9" > "10" lexically but not numerically).
        candidate = from_canonical(value_type, min_value)
        if new_min is None or candidate < from_canonical(value_type, new_min):
            new_min = min_value
    if max_value is not None:
        candidate = from_canonical(value_type, max_value)
        if new_max is None or candidate > from_canonical(value_type, new_max):
            new_max = max_value
    conn.execute(
        "UPDATE attribute_stats SET row_count = ?, distinct_count = ?, "
        "min_value = ?, max_value = ? WHERE attr_id = ? AND object_type = ?",
        (
            (row_count or 0) + row_delta,
            (distinct_count or 0) + distinct_delta,
            new_min,
            new_max,
            attr_id,
            object_type.value,
        ),
    )


def _write_exact(
    conn: "Connection",
    attr_id: int,
    object_type: ObjectType,
    row_count: int,
    distinct_count: int,
    min_value: Optional[str],
    max_value: Optional[str],
) -> None:
    updated = conn.execute(
        "UPDATE attribute_stats SET row_count = ?, distinct_count = ?, "
        "min_value = ?, max_value = ? WHERE attr_id = ? AND object_type = ?",
        (row_count, distinct_count, min_value, max_value, attr_id, object_type.value),
    ).rowcount
    if updated == 0:
        conn.execute(
            "INSERT INTO attribute_stats (attr_id, object_type, row_count, "
            "distinct_count, min_value, max_value) VALUES (?, ?, ?, ?, ?, ?)",
            (attr_id, object_type.value, row_count, distinct_count,
             min_value, max_value),
        )
