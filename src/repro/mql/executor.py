"""MQL execution: three answer-equivalent leaf strategies + set algebra.

**The equivalence contract.**  Every strategy returns a leaf's matches
as ``(sort key, name)`` pairs — the key is the statement's ``order by``
column.  Downstream, results are reduced to a mapping ``name →
representative key`` (the smallest key under the engine's total order,
:func:`repro.db.types.sort_key`, so multi-version files dedup
identically everywhere), combined with set algebra over names, then
ordered by a stable two-pass sort: name ascending first, then a stable
sort on the key.  Offset/limit slice last.  Because each stage is
deterministic given the *set* of pairs, indexed vs join vs scan — and
one shard vs a scatter over many — produce byte-identical answers; the
``-m mql`` and ``-m shard`` lanes enforce exactly that.

Leaf limits are deliberately **not** pushed down: a per-leaf ``LIMIT n``
under SQL's unspecified tie order could keep different name sets per
strategy.  Pagination is only applied after the global sort.

Index and scan leaf results are cached through the catalog's
generation-stamped query cache under a synthetic key, giving them the
same strict-consistency story as the join strategy's SQL results.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.core.errors import QueryError
from repro.core.model import AttributeType, ObjectType
from repro.core.query import AttributeCondition
from repro.db.expr import Between, Comparison, ColumnRef, Like, Literal
from repro.db.types import sort_key
from repro.mql.compiler import Algebra, CompiledStatement, Leaf
from repro.mql.planner import StatementPlan
from repro.obs.metrics import counter as _obs_counter

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.catalog import MetadataCatalog

_LEAVES = _obs_counter(
    "mcs_mql_leaves_total",
    "MQL leaf executions by chosen strategy",
    labels=("strategy",),
)
_INTERSECTIONS = _obs_counter(
    "mcs_index_intersections_total",
    "Secondary-index probe-set intersections performed",
)

_OBJECT_TABLE = {
    ObjectType.FILE: "logical_file",
    ObjectType.COLLECTION: "logical_collection",
    ObjectType.VIEW: "logical_view",
}

#: IN-list chunk size for the index strategy's final fetch.
_FETCH_CHUNK = 400

#: A leaf result: list of (order-key value, object name) pairs.
LeafRows = list  # list[tuple[Any, str]]

#: Pluggable leaf evaluation — the shard router swaps in scatter/gather.
LeafRunner = Callable[[Leaf], LeafRows]


# --------------------------------------------------------------------------
# Statement-level evaluation (shared by single catalog and shard router)
# --------------------------------------------------------------------------


def execute_compiled(
    compiled: CompiledStatement, leaf_runner: LeafRunner
) -> list[str]:
    """Run the algebra tree and return the final ordered name list."""
    table = _eval_node(compiled.root, leaf_runner)
    items = sorted(table.items())  # name ascending
    # Stable second pass on the key keeps the name order for equal keys,
    # in both directions — the cross-strategy/cross-shard tiebreak.
    items.sort(key=lambda kv: sort_key(kv[1]), reverse=compiled.descending)
    names = [name for name, _key in items]
    start = compiled.offset or 0
    if start:
        names = names[start:]
    if compiled.limit is not None:
        names = names[: compiled.limit]
    return names


def _eval_node(node: Any, leaf_runner: LeafRunner) -> dict[str, Any]:
    if isinstance(node, Leaf):
        return _reduce_pairs(leaf_runner(node))
    if isinstance(node, Algebra):
        left = _eval_node(node.left, leaf_runner)
        right = _eval_node(node.right, leaf_runner)
        if node.op == "union":
            for name, key in right.items():
                if name not in left or sort_key(key) < sort_key(left[name]):
                    left[name] = key
            return left
        if node.op == "intersect":
            return {
                name: min((key, right[name]), key=sort_key)
                for name, key in left.items()
                if name in right
            }
        if node.op == "minus":
            return {
                name: key for name, key in left.items() if name not in right
            }
        raise QueryError(f"unknown set operation {node.op!r}")
    raise QueryError(f"unsupported MQL plan node {type(node).__name__!r}")


def _reduce_pairs(pairs: LeafRows) -> dict[str, Any]:
    """name → representative (minimal) sort key."""
    table: dict[str, Any] = {}
    for key, name in pairs:
        if name not in table or sort_key(key) < sort_key(table[name]):
            table[name] = key
    return table


# --------------------------------------------------------------------------
# Leaf strategies
# --------------------------------------------------------------------------


def run_leaf(
    catalog: "MetadataCatalog", leaf: Leaf, strategy: str
) -> LeafRows:
    """Answer one conjunctive leaf with the given strategy."""
    _LEAVES.labels(strategy).inc()
    if strategy == "join":
        return catalog.query_rows(leaf.query)
    if strategy == "index":
        return _cached(catalog, leaf, "index", _index_leaf)
    if strategy == "scan":
        return _cached(catalog, leaf, "scan", _scan_leaf)
    raise QueryError(f"unknown MQL strategy {strategy!r}")


def _cached(
    catalog: "MetadataCatalog",
    leaf: Leaf,
    strategy: str,
    compute: Callable[["MetadataCatalog", Leaf], LeafRows],
) -> LeafRows:
    """Serve a leaf through the generation-stamped result cache."""
    conn = catalog._conn
    tables = leaf.query.touched_tables()
    generations = catalog.cache.generations.snapshot(tables)
    key = ("mql-leaf", strategy, _leaf_key(leaf))
    token = catalog.cache.lookup_query(conn, key, tables, generations=generations)
    if token.hit:
        return list(token.value)
    rows = compute(catalog, leaf)
    token.store(tuple(rows))
    return rows


def _leaf_key(leaf: Leaf) -> tuple:
    query = leaf.query
    return (
        query.object_type.value,
        tuple((c.attribute, c.op, _hashable(c.value)) for c in query.conditions),
        tuple((c.attribute, c.op, _hashable(c.value)) for c in query.predefined),
        query.order,
    )


def _hashable(value: Any) -> Any:
    return tuple(value) if isinstance(value, list) else value


def _index_leaf(catalog: "MetadataCatalog", leaf: Leaf) -> LeafRows:
    """Probe the av_<type> index per condition, intersect, then fetch."""
    query = leaf.query
    # Resolve definitions before opening the read transaction — lookups
    # are cached and must not race the lock acquisition below.
    definitions = [
        catalog.get_attribute_def(c.attribute) for c in query.conditions
    ]
    for condition, definition in zip(query.conditions, definitions):
        if query.object_type not in definition.object_types:
            raise QueryError(
                f"attribute {condition.attribute!r} does not apply to "
                f"{query.object_type.value}s"
            )
    table = _OBJECT_TABLE[query.object_type]
    conn = catalog._conn
    # One read transaction around every probe: the intersection must see
    # a single snapshot, or a concurrent writer could tear the result.
    conn.begin()
    try:
        conn.lock_tables(read=("attribute_value", table))
        candidate_ids: Optional[set[int]] = None
        result: LeafRows = []
        for condition, definition in zip(query.conditions, definitions):
            clause, params = _value_clause(definition.value_type, condition)
            rows = conn.execute(
                "SELECT object_id FROM attribute_value WHERE attr_id = ? "
                f"AND object_type = ? AND {clause}",
                (definition.id, query.object_type.value, *params),
            ).fetchall()
            ids = {row[0] for row in rows}
            if candidate_ids is None:
                candidate_ids = ids
            else:
                candidate_ids &= ids
                _INTERSECTIONS.inc()
            if not candidate_ids:
                break
        if candidate_ids is None:
            raise QueryError(
                "index strategy requires at least one user-attribute condition"
            )
        if candidate_ids:
            result = _fetch_rows(conn, table, leaf, sorted(candidate_ids))
    except Exception:
        conn.rollback()
        raise
    conn.commit()
    return result


def _fetch_rows(
    conn, table: str, leaf: Leaf, object_ids: list[int]
) -> LeafRows:
    """(key, name) rows for the surviving ids, predefined filters applied."""
    query = leaf.query
    assert query.order is not None  # the compiler always sets the sort key
    from repro.core.query import _predefined_column

    key_column = _predefined_column(query.object_type, query.order[0])
    filters: list[str] = []
    filter_params: list[Any] = []
    for condition in query.predefined:
        column = _predefined_column(query.object_type, condition.attribute)
        clause, params = _value_clause(None, condition, column=column)
        filters.append(clause)
        filter_params.extend(params)
    out: LeafRows = []
    for start in range(0, len(object_ids), _FETCH_CHUNK):
        chunk = object_ids[start : start + _FETCH_CHUNK]
        placeholders = ", ".join("?" for _ in chunk)
        sql = (
            f"SELECT obj.name, obj.{key_column} FROM {table} obj "
            f"WHERE obj.id IN ({placeholders})"
        )
        if filters:
            sql += " AND " + " AND ".join(filters)
        rows = conn.execute(sql, (*chunk, *filter_params)).fetchall()
        out.extend((row[1], row[0]) for row in rows)
    return out


def _value_clause(
    value_type: Optional[AttributeType],
    condition: AttributeCondition,
    column: Optional[str] = None,
) -> tuple[str, list]:
    target = column if column is not None else value_type.value_column
    if condition.op == "between":
        low, high = condition.value
        return f"{target} BETWEEN ? AND ?", [low, high]
    if condition.op == "like":
        return f"{target} LIKE ?", [condition.value]
    return f"{target} {condition.op} ?", [condition.value]


_VALUE_COLUMNS = ("string", "int", "float", "date", "time", "datetime")


def _scan_leaf(catalog: "MetadataCatalog", leaf: Leaf) -> LeafRows:
    """Full EAV + object-table pass, evaluated with engine semantics.

    Deliberately WHERE-free SQL: this is the cost baseline the paper's
    complex-query figures describe and the oracle the equivalence lane
    trusts — every predicate is applied in Python via
    :mod:`repro.db.expr`, the engine's own three-valued evaluator.
    """
    query = leaf.query
    condition_defs = [
        catalog.get_attribute_def(c.attribute) for c in query.conditions
    ]
    definitions = {definition.id: definition for definition in condition_defs}
    for definition in condition_defs:
        if query.object_type not in definition.object_types:
            raise QueryError(
                f"attribute {definition.name!r} does not apply to "
                f"{query.object_type.value}s"
            )
    table = _OBJECT_TABLE[query.object_type]
    from repro.core.query import _predefined_column

    assert query.order is not None
    key_column = _predefined_column(query.object_type, query.order[0])
    predefined_columns = [
        _predefined_column(query.object_type, c.attribute)
        for c in query.predefined
    ]
    select_cols = ["id", "name", key_column, *predefined_columns]

    conn = catalog._conn
    conn.begin()
    try:
        conn.lock_tables(read=("attribute_value", table))
        # The genuine full scan: every attribute_value row, no WHERE.
        value_rows = conn.execute(
            "SELECT attr_id, object_type, object_id, value_string, "
            "value_int, value_float, value_date, value_time, value_datetime "
            "FROM attribute_value"
        ).fetchall()
        object_rows = conn.execute(
            f"SELECT {', '.join(select_cols)} FROM {table}"
        ).fetchall()
    except Exception:
        conn.rollback()
        raise
    conn.commit()

    by_object: dict[int, dict[int, Any]] = {}
    for row in value_rows:
        attr_id, object_type_text = row[0], row[1]
        if object_type_text != query.object_type.value or attr_id not in definitions:
            continue
        value_type = definitions[attr_id].value_type
        value = row[3 + _VALUE_COLUMNS.index(value_type.value)]
        by_object.setdefault(row[2], {})[attr_id] = value

    user_exprs = [
        (definition.id, _condition_expr(condition))
        for condition, definition in zip(query.conditions, condition_defs)
    ]
    predefined_exprs = [
        _condition_expr(condition) for condition in query.predefined
    ]

    out: LeafRows = []
    for row in object_rows:
        object_id, name, key = row[0], row[1], row[2]
        attrs = by_object.get(object_id, {})
        ok = True
        for attr_id, expr in user_exprs:
            # Missing attribute → NULL → three-valued "unknown" → reject,
            # exactly like the join's inner-join-on-missing-row.
            if expr.eval({"v": attrs.get(attr_id)}) is not True:
                ok = False
                break
        if ok:
            for position, expr in enumerate(predefined_exprs):
                if expr.eval({"v": row[3 + position]}) is not True:
                    ok = False
                    break
        if ok:
            out.append((key, name))
    return out


def _condition_expr(condition: AttributeCondition):
    """Engine expression for one condition over scope key ``v``."""
    ref = ColumnRef("v")
    if condition.op == "between":
        low, high = condition.value
        return Between(ref, Literal(low), Literal(high))
    if condition.op == "like":
        return Like(ref, Literal(condition.value))
    return Comparison(condition.op, ref, Literal(condition.value))
