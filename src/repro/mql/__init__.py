"""MQL: the parsed metadata query language.

The paper exposes attribute discovery through a programmatic API; the
ROADMAP's first open item grows that into a real query language the way
AMGA did for grid metadata catalogs.  ``repro.mql`` is that layer:

* a hand-written lexer + recursive-descent parser for statements like
  ``files where run = 7 and (site like "ligo-%" or valid) order by name
  limit 50``, plus dataset algebra (``union`` / ``intersect`` /
  ``minus``) over parenthesized subqueries;
* a compiler that lowers the predicate tree (through negation push-down
  and DNF expansion) onto the existing conjunctive
  :class:`repro.core.query.ObjectQuery` leaves;
* a cost-based planner choosing, per leaf, between index-intersection
  probes, the EAV join, and a full scan — fed by the incrementally
  maintained ``attribute_stats`` table;
* an executor whose three strategies are answer-equivalent by
  construction (one shared deterministic ordering/dedup contract),
  proven by the ``-m mql`` equivalence lane.

Every syntax error carries a line, a column and a caret snippet
(:class:`MQLSyntaxError`); semantic errors reuse the core
:class:`repro.core.errors.QueryError` family so the SOAP fault table
maps them unchanged.
"""

from repro.mql.ast import (
    And,
    Condition,
    Not,
    Or,
    Query,
    SetOp,
    Statement,
    to_mql,
)
from repro.mql.errors import MQLSyntaxError
from repro.mql.parser import parse

__all__ = [
    "And",
    "Condition",
    "MQLSyntaxError",
    "Not",
    "Or",
    "Query",
    "SetOp",
    "Statement",
    "parse",
    "to_mql",
]
