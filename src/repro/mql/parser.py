"""Recursive-descent MQL parser.

Grammar (EBNF; keywords are case-insensitive)::

    statement   = expr [ "order" "by" ident [ "asc" | "desc" ] ]
                       [ "limit" int ] [ "offset" int ] ;
    expr        = term { ( "union" | "minus" ) term } ;          (* left-assoc *)
    term        = factor { "intersect" factor } ;                (* left-assoc *)
    factor      = "(" statement ")" | query ;
    query       = ( "files" | "collections" | "views" ) [ "where" pred ] ;
    pred        = conj { "or" conj } ;
    conj        = unary { "and" unary } ;
    unary       = "not" unary | "(" pred ")" | condition ;
    condition   = ident comparator value
                | ident "like" string
                | ident "between" value "and" value
                | ident ;                                 (* sugar: = true *)
    comparator  = "=" | "!=" | "<" | "<=" | ">" | ">=" ;
    value       = string | [ "-" ] number | "true" | "false"
                | "date" string | "time" string | "datetime" string ;

A parenthesized sub-statement with no order/limit/offset unwraps to its
bare source, so ``(files where a = 1) union files`` builds a plain
:class:`SetOp` over two :class:`Query` nodes.  Ordering and pagination
are syntactically legal on nested statements; the *compiler* restricts
them to the top level.

Every failure raises :class:`repro.mql.errors.MQLSyntaxError` with the
offending line/column and a caret snippet — never a bare ``ValueError``.
"""

from __future__ import annotations

import datetime as _dt
from typing import Any, Optional

from repro.mql.ast import (
    And,
    Condition,
    Not,
    Or,
    Predicate,
    Query,
    SetOp,
    Statement,
)
from repro.mql.errors import MQLSyntaxError
from repro.mql.lexer import Token, tokenize

_OBJECT_TYPES = {"files": "file", "collections": "collection", "views": "view"}
_COMPARATORS = ("=", "!=", "<", "<=", ">", ">=")


class _Parser:
    def __init__(self, source: str) -> None:
        self.source = source
        self.tokens = tokenize(source)
        self._pos = 0

    # -- token plumbing ----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self._pos]

    def _advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self._pos += 1
        return token

    def _at_keyword(self, *words: str) -> bool:
        return self.current.kind == "keyword" and self.current.value in words

    def _at_symbol(self, *symbols: str) -> bool:
        return self.current.kind == "symbol" and self.current.value in symbols

    def _take_keyword(self, word: str) -> Token:
        if not self._at_keyword(word):
            raise self._error(f"expected {word!r}")
        return self._advance()

    def _take_symbol(self, symbol: str) -> Token:
        if not self._at_symbol(symbol):
            raise self._error(f"expected {symbol!r}")
        return self._advance()

    def _error(self, message: str, token: Optional[Token] = None) -> MQLSyntaxError:
        token = token if token is not None else self.current
        shown = token.text or "end of input"
        lines = self.source.splitlines()
        source_line = (
            lines[token.line - 1] if 1 <= token.line <= len(lines) else None
        )
        return MQLSyntaxError(
            f"{message} (found {shown!r})", token.line, token.column, source_line
        )

    # -- grammar -----------------------------------------------------------

    def parse_statement(self, top_level: bool = False) -> Statement:
        source = self._parse_expr()
        order_by: Optional[str] = None
        descending = False
        limit: Optional[int] = None
        offset: Optional[int] = None
        if self._at_keyword("order"):
            self._advance()
            self._take_keyword("by")
            if self.current.kind != "ident":
                raise self._error("expected a field name after 'order by'")
            order_by = str(self._advance().value)
            if self._at_keyword("asc", "desc"):
                descending = self._advance().value == "desc"
        if self._at_keyword("limit"):
            self._advance()
            limit = self._parse_count("limit")
        if self._at_keyword("offset"):
            self._advance()
            offset = self._parse_count("offset")
        if top_level and self.current.kind != "eof":
            raise self._error("unexpected trailing input")
        return Statement(
            source=source,
            order_by=order_by,
            descending=descending,
            limit=limit,
            offset=offset,
        )

    def _parse_count(self, keyword: str) -> int:
        if self.current.kind != "int":
            raise self._error(f"expected a non-negative integer after {keyword!r}")
        return int(self._advance().value)

    def _parse_expr(self) -> Any:
        node = self._parse_term()
        while self._at_keyword("union", "minus"):
            op = str(self._advance().value)
            node = SetOp(op=op, left=node, right=self._parse_term())
        return node

    def _parse_term(self) -> Any:
        node = self._parse_factor()
        while self._at_keyword("intersect"):
            self._advance()
            node = SetOp(op="intersect", left=node, right=self._parse_factor())
        return node

    def _parse_factor(self) -> Any:
        if self._at_symbol("("):
            self._advance()
            inner = self.parse_statement()
            self._take_symbol(")")
            if inner.has_modifiers():
                return inner
            return inner.source
        if self.current.kind == "keyword" and self.current.value in _OBJECT_TYPES:
            object_type = _OBJECT_TYPES[str(self._advance().value)]
            where: Optional[Predicate] = None
            if self._at_keyword("where"):
                self._advance()
                where = self._parse_pred()
            return Query(object_type=object_type, where=where)
        raise self._error("expected 'files', 'collections', 'views' or '('")

    def _parse_pred(self) -> Predicate:
        parts = [self._parse_conj()]
        while self._at_keyword("or"):
            self._advance()
            parts.append(self._parse_conj())
        return parts[0] if len(parts) == 1 else Or(tuple(parts))

    def _parse_conj(self) -> Predicate:
        parts = [self._parse_unary()]
        while self._at_keyword("and"):
            self._advance()
            parts.append(self._parse_unary())
        return parts[0] if len(parts) == 1 else And(tuple(parts))

    def _parse_unary(self) -> Predicate:
        if self._at_keyword("not"):
            self._advance()
            return Not(self._parse_unary())
        if self._at_symbol("("):
            self._advance()
            inner = self._parse_pred()
            self._take_symbol(")")
            return inner
        return self._parse_condition()

    def _parse_condition(self) -> Condition:
        if self.current.kind != "ident":
            raise self._error("expected a field name")
        fieldname = str(self._advance().value)
        if self._at_symbol(*_COMPARATORS):
            op = str(self._advance().value)
            return Condition(fieldname, op, self._parse_value())
        if self._at_keyword("like"):
            self._advance()
            if self.current.kind != "string":
                raise self._error("expected a string pattern after 'like'")
            return Condition(fieldname, "like", self._advance().value)
        if self._at_keyword("between"):
            self._advance()
            low = self._parse_value()
            self._take_keyword("and")
            high = self._parse_value()
            return Condition(fieldname, "between", (low, high))
        # Bare identifier: boolean sugar for ``<field> = true``.
        return Condition(fieldname, "=", True)

    def _parse_value(self) -> Any:
        token = self.current
        if token.kind == "string":
            self._advance()
            return token.value
        if token.kind in ("int", "float"):
            self._advance()
            return token.value
        if self._at_symbol("-"):
            self._advance()
            number = self.current
            if number.kind not in ("int", "float"):
                raise self._error("expected a number after '-'")
            self._advance()
            return -number.value  # type: ignore[operator]
        if self._at_keyword("true"):
            self._advance()
            return True
        if self._at_keyword("false"):
            self._advance()
            return False
        if self._at_keyword("date", "time", "datetime"):
            kind = str(self._advance().value)
            literal = self.current
            if literal.kind != "string":
                raise self._error(f"expected a quoted ISO {kind} literal")
            self._advance()
            return self._temporal(kind, str(literal.value), literal)
        raise self._error("expected a value")

    def _temporal(self, kind: str, text: str, token: Token) -> Any:
        try:
            if kind == "date":
                return _dt.date.fromisoformat(text)
            if kind == "time":
                return _dt.time.fromisoformat(text)
            return _dt.datetime.fromisoformat(text)
        except ValueError:
            raise self._error(f"invalid ISO {kind} literal {text!r}", token) from None


def parse(source: str) -> Statement:
    """Parse one MQL statement; raises :class:`MQLSyntaxError` on failure."""
    return _Parser(source).parse_statement(top_level=True)
