"""MQL error types.

:class:`MQLSyntaxError` subclasses the core :class:`QueryError`, so the
centralized fault table (``repro.core.errors.fault_code_for``) maps a
bad MQL string to the existing ``MCS.Query`` wire fault with no new
table entries — and no call site can ever raise a bare ``ValueError``
for a syntax problem.
"""

from __future__ import annotations

from typing import Optional

from repro.core.errors import QueryError


class MQLSyntaxError(QueryError):
    """A lexing or parsing failure, located in the source text.

    Carries ``line`` and ``column`` (1-based) plus the offending source
    line; ``str()`` renders a caret snippet::

        MQL syntax error at line 1, column 13: expected a value
          files where = 7
                      ^
    """

    def __init__(
        self,
        message: str,
        line: int,
        column: int,
        source_line: Optional[str] = None,
    ) -> None:
        self.reason = message
        self.line = line
        self.column = column
        self.source_line = source_line
        super().__init__(self._render())

    def _render(self) -> str:
        text = (
            f"MQL syntax error at line {self.line}, column {self.column}: "
            f"{self.reason}"
        )
        if self.source_line is not None:
            caret = " " * (self.column - 1) + "^"
            text += f"\n  {self.source_line}\n  {caret}"
        return text
