"""AsyncMCSClient: the asyncio client API.

The same fluent surface as :class:`repro.core.client.MCSClient` — every
§5 operation, ``query()``, the ``bulk()`` pipeline, caller stamping,
fault-to-exception unwrapping — with coroutine methods and an
``async with`` lifecycle.  Construction consumes the same
:class:`~repro.core.client.ClientConfig` the sync client does, so one
config value describes a deployment's client posture for both flavors::

    config = ClientConfig(caller="/O=Grid/CN=Bob", deadline_s=2.0)
    async with AsyncMCSClient.connect(host, port, config) as client:
        names = await client.query(ObjectQuery().where("run", "=", 7))

The transport stack underneath is fully asynchronous
(:class:`~repro.soap.atransport.AsyncHttpTransport` pooling keep-alive
connections, :class:`~repro.resilience.atransport.AsyncResilientTransport`
for retries), so many concurrent tasks can share one client object
without a thread each.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.core.client import (
    BulkResult,
    ClientConfig,
    _query_to_dict,
    is_read_method,
)
from repro.core.errors import exception_from_fault
from repro.core.model import AttributeDef
from repro.core.query import ObjectQuery
from repro.obs.trace import span as _span
from repro.soap.atransport import AsyncDirectTransport, AsyncHttpTransport
from repro.soap.envelope import SoapFault


def _wrap_resilient_async(
    transport: Any, endpoint: str, config: ClientConfig
) -> Any:
    if not config.resilient:
        return transport
    from repro.resilience.atransport import AsyncResilientTransport

    return AsyncResilientTransport(
        transport,
        policy=config.retry_policy,  # type: ignore[arg-type]
        breaker=config.breaker,  # type: ignore[arg-type]
        endpoint=endpoint,
        is_idempotent=is_read_method,
        deadline_s=config.deadline_s,
    )


class AsyncBulkContext:
    """The pipelined-batch pipeline, flushed with one ``await``.

    Usage::

        async with client.bulk() as batch:
            handles = [batch.call("create_logical_file", name=n)
                       for n in names]
        ids = [h.result["id"] for h in handles]

    Queueing stays synchronous (it only builds the operation list);
    the round trip happens in :meth:`flush` / at ``async with`` exit.
    """

    def __init__(self, client: "AsyncMCSClient") -> None:
        self._client = client
        self._ops: list[tuple[str, dict[str, Any]]] = []
        self._pending: list[BulkResult] = []

    def call(self, method: str, **args: Any) -> BulkResult:
        """Queue one operation; returns a handle resolved at flush."""
        handle = BulkResult(method)
        self._ops.append((method, self._client._stamp(method, args)))
        self._pending.append(handle)
        return handle

    async def flush(self) -> list[BulkResult]:
        """Send queued operations in one round trip; resolve handles."""
        if not self._ops:
            return []
        ops, handles = self._ops, self._pending
        self._ops, self._pending = [], []
        with _span("client.call_bulk", n=str(len(ops))):
            items = await self._client._transport.call_bulk(ops)
        for handle, item in zip(handles, items):
            handle._resolve(item)
        return handles

    def __len__(self) -> int:
        return len(self._ops)

    async def __aenter__(self) -> "AsyncBulkContext":
        return self

    async def __aexit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if exc_type is None:
            await self.flush()


class AsyncMCSClient:
    """Asynchronous MCS client over a pluggable async transport."""

    def __init__(
        self,
        transport: Any,
        caller: Optional[str] = None,
        gsi_context: Optional["object"] = None,
        cas_assertion: Optional[dict] = None,
    ) -> None:
        self._transport = transport
        self.caller = caller
        self._gsi = gsi_context
        self._cas = cas_assertion

    # -- constructors --------------------------------------------------------

    @classmethod
    def in_process(
        cls,
        service: "object",
        config: Optional[ClientConfig] = None,
        *,
        caller: Optional[str] = None,
    ) -> "AsyncMCSClient":
        """Bind directly to an MCSService — no SOAP, no socket.

        The synchronous handler runs on the loop's default executor with
        the calling task's context, so deadlines and traces behave as
        they do over the wire.
        """
        cfg = config if config is not None else ClientConfig()
        if caller is not None:
            cfg = cfg.with_options(caller=caller)
        transport = _wrap_resilient_async(
            AsyncDirectTransport(service.handle), "inproc", cfg
        )
        return cls(transport, caller=cfg.caller)

    @classmethod
    def connect(
        cls,
        host: str,
        port: int,
        config: Optional[ClientConfig] = None,
        *,
        caller: Optional[str] = None,
    ) -> "AsyncMCSClient":
        """Connect over SOAP/HTTP on asyncio streams.

        ``config.pool_size`` keep-alive connections are shared by all
        concurrent tasks using this client; the resilience trio in the
        config wraps the transport exactly as for the sync client.
        """
        cfg = config if config is not None else ClientConfig()
        if caller is not None:
            cfg = cfg.with_options(caller=caller)
        transport = _wrap_resilient_async(
            AsyncHttpTransport(
                host,
                port,
                timeout=cfg.timeout_s,
                simulated_latency_s=cfg.simulated_latency_s,
                pool_size=cfg.pool_size,
            ),
            f"{host}:{port}",
            cfg,
        )
        return cls(transport, caller=cfg.caller)

    async def close(self) -> None:
        await self._transport.close()

    async def __aenter__(self) -> "AsyncMCSClient":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    # -- call plumbing -------------------------------------------------------

    def _stamp(self, method: str, args: dict[str, Any]) -> dict[str, Any]:
        """Attach caller identity / CAS / GSI credentials to a request."""
        if self.caller is not None:
            args.setdefault("caller", self.caller)
        if self._cas is not None:
            args.setdefault("cas", self._cas)
        if self._gsi is not None:
            from repro.core.service import canonical_payload, token_to_dict

            token = self._gsi.sign_request(canonical_payload(method, args))
            args["auth"] = token_to_dict(token)
        return args

    async def _call(self, method: str, **args: Any) -> Any:
        args = self._stamp(method, args)
        # Root span: mints the request id that rides the SOAP header so
        # server-side spans and logs correlate with this call.  The span
        # context is task-local (contextvars), so concurrent tasks on
        # one client do not interleave their traces.
        with _span("client.call", method=method):
            try:
                return await self._transport.call(method, args)
            except SoapFault as fault:
                error = exception_from_fault(fault.code, fault.message)
                if error is not None:
                    raise error from None
                raise

    # -- bulk pipeline -------------------------------------------------------

    def bulk(self) -> AsyncBulkContext:
        """Open a pipelined batch: queue calls, flush in one round trip."""
        return AsyncBulkContext(self)

    # ======================================================================
    # Files
    # ======================================================================

    async def create_logical_file(
        self,
        name: str,
        version: int = 1,
        data_type: Optional[str] = None,
        collection: Optional[str] = None,
        container_id: Optional[str] = None,
        container_service: Optional[str] = None,
        master_copy: Optional[str] = None,
        audit_enabled: bool = False,
        attributes: Optional[dict[str, Any]] = None,
    ) -> dict:
        """Create a logical file, optionally with user-defined attributes."""
        return await self._call(
            "create_logical_file",
            name=name,
            version=version,
            data_type=data_type,
            collection=collection,
            container_id=container_id,
            container_service=container_service,
            master_copy=master_copy,
            audit_enabled=audit_enabled,
            attributes=attributes,
        )

    async def get_logical_file(
        self, name: str, version: Optional[int] = None
    ) -> dict:
        """Static (predefined) attributes of a logical file."""
        return await self._call("get_logical_file", name=name, version=version)

    async def modify_logical_file(
        self, name: str, version: Optional[int] = None, **changes: Any
    ) -> bool:
        return await self._call(
            "modify_logical_file", name=name, version=version, changes=changes
        )

    async def delete_logical_file(
        self, name: str, version: Optional[int] = None
    ) -> bool:
        return await self._call("delete_logical_file", name=name, version=version)

    async def invalidate_logical_file(
        self, name: str, version: Optional[int] = None
    ) -> bool:
        return await self.modify_logical_file(name, version, valid=False)

    async def move_file_to_collection(
        self, name: str, collection: Optional[str], version: Optional[int] = None
    ) -> bool:
        return await self._call(
            "move_file_to_collection",
            name=name,
            collection=collection,
            version=version,
        )

    async def list_versions(self, name: str) -> list[int]:
        return await self._call("list_versions", name=name)

    # ======================================================================
    # Bulk operations (single transaction server-side)
    # ======================================================================

    async def bulk_create_files(
        self, entries: Sequence[dict[str, Any]], atomic: bool = True
    ) -> dict:
        """Create many files in one call and one server transaction."""
        return await self._call(
            "bulk_create_files", entries=list(entries), atomic=atomic
        )

    async def bulk_set_attributes(
        self, items: Sequence[dict[str, Any]], atomic: bool = True
    ) -> dict:
        """Set attributes on many objects in one call and transaction."""
        return await self._call(
            "bulk_set_attributes", items=list(items), atomic=atomic
        )

    async def bulk_query(self, queries: Sequence[ObjectQuery | dict]) -> dict:
        """Run many discovery queries in one round trip."""
        wire = [
            _query_to_dict(q) if isinstance(q, ObjectQuery) else q
            for q in queries
        ]
        return await self._call("bulk_query", queries=wire)

    # ======================================================================
    # User-defined attributes
    # ======================================================================

    async def define_attribute(
        self,
        name: str,
        value_type: str,
        object_types: Optional[Sequence[str]] = None,
        description: Optional[str] = None,
    ) -> int:
        return await self._call(
            "define_attribute",
            name=name,
            value_type=value_type,
            object_types=list(object_types) if object_types else None,
            description=description,
        )

    async def list_attribute_defs(self) -> list[AttributeDef]:
        """All user-defined attributes, as typed :class:`AttributeDef` records."""
        return [
            AttributeDef.from_dict(d)
            for d in await self._call("list_attribute_defs")
        ]

    async def set_attributes(
        self,
        object_type: str,
        name: str,
        attributes: dict[str, Any],
        version: Optional[int] = None,
    ) -> bool:
        return await self._call(
            "set_attributes",
            object_type=object_type,
            name=name,
            attributes=attributes,
            version=version,
        )

    async def get_attributes(
        self, object_type: str, name: str, version: Optional[int] = None
    ) -> dict[str, Any]:
        """The object's user-defined attributes as ``{name: value}``."""
        return await self._call(
            "get_attributes", object_type=object_type, name=name, version=version
        )

    async def remove_attribute(
        self,
        object_type: str,
        name: str,
        attribute: str,
        version: Optional[int] = None,
    ) -> bool:
        return await self._call(
            "remove_attribute",
            object_type=object_type,
            name=name,
            attribute=attribute,
            version=version,
        )

    # ======================================================================
    # Queries
    # ======================================================================

    async def query(self, query: ObjectQuery) -> list[str]:
        """Attribute-based discovery: returns matching logical names."""
        return await self._call("query", query=_query_to_dict(query))

    async def explain_query(self, query: ObjectQuery) -> list[str]:
        """The physical plan the query would execute (one line per step)."""
        return await self._call("explain_query", query=_query_to_dict(query))

    async def query_mql(self, text: str) -> list[str]:
        """Run one MQL statement (see :meth:`MCSClient.query_mql`)."""
        return await self._call("query_mql", text=text)

    async def explain_mql(self, text: str) -> list[str]:
        """Strategy choice, cost model and algebra for an MQL statement."""
        return await self._call("explain_mql", text=text)

    async def analyze_attributes(self) -> int:
        """Recompute MQL planner statistics exactly (like SQL ANALYZE)."""
        return await self._call("analyze_attributes")

    # ======================================================================
    # Collections
    # ======================================================================

    async def create_collection(
        self,
        name: str,
        parent: Optional[str] = None,
        description: Optional[str] = None,
        audit_enabled: bool = False,
        attributes: Optional[dict[str, Any]] = None,
    ) -> int:
        return await self._call(
            "create_collection",
            name=name,
            parent=parent,
            description=description,
            audit_enabled=audit_enabled,
            attributes=attributes,
        )

    async def delete_collection(self, name: str) -> bool:
        return await self._call("delete_collection", name=name)

    async def list_collection(self, name: str) -> list[str]:
        return await self._call("list_collection", name=name)

    async def list_subcollections(self, name: str) -> list[str]:
        return await self._call("list_subcollections", name=name)

    async def set_collection_parent(
        self, name: str, parent: Optional[str]
    ) -> bool:
        return await self._call("set_collection_parent", name=name, parent=parent)

    # ======================================================================
    # Views
    # ======================================================================

    async def create_view(
        self,
        name: str,
        description: Optional[str] = None,
        audit_enabled: bool = False,
        attributes: Optional[dict[str, Any]] = None,
    ) -> int:
        return await self._call(
            "create_view",
            name=name,
            description=description,
            audit_enabled=audit_enabled,
            attributes=attributes,
        )

    async def delete_view(self, name: str) -> bool:
        return await self._call("delete_view", name=name)

    async def add_to_view(
        self,
        view: str,
        files: Sequence[str] = (),
        collections: Sequence[str] = (),
        views: Sequence[str] = (),
    ) -> bool:
        return await self._call(
            "add_to_view",
            view=view,
            files=list(files),
            collections=list(collections),
            views=list(views),
        )

    async def remove_from_view(
        self,
        view: str,
        files: Sequence[str] = (),
        collections: Sequence[str] = (),
        views: Sequence[str] = (),
    ) -> bool:
        return await self._call(
            "remove_from_view",
            view=view,
            files=list(files),
            collections=list(collections),
            views=list(views),
        )

    async def list_view(self, name: str) -> list[dict]:
        return await self._call("list_view", name=name)

    # ======================================================================
    # Annotations, provenance, audit
    # ======================================================================

    async def annotate(
        self, object_type: str, name: str, text: str, version: Optional[int] = None
    ) -> bool:
        return await self._call(
            "annotate",
            object_type=object_type,
            name=name,
            text=text,
            version=version,
        )

    async def get_annotations(
        self, object_type: str, name: str, version: Optional[int] = None
    ) -> list[dict]:
        return await self._call(
            "get_annotations", object_type=object_type, name=name, version=version
        )

    async def add_transformation(
        self, name: str, description: str, version: Optional[int] = None
    ) -> bool:
        return await self._call(
            "add_transformation",
            name=name,
            description=description,
            version=version,
        )

    async def get_transformations(
        self, name: str, version: Optional[int] = None
    ) -> list[dict]:
        return await self._call("get_transformations", name=name, version=version)

    async def audit_log(
        self, object_type: str, name: str, version: Optional[int] = None
    ) -> list[dict]:
        return await self._call(
            "audit_log", object_type=object_type, name=name, version=version
        )

    # ======================================================================
    # Users, catalogs, permissions, misc
    # ======================================================================

    async def register_user(
        self,
        dn: str,
        description: str = "",
        institution: str = "",
        email: str = "",
        phone: str = "",
    ) -> bool:
        return await self._call(
            "register_user",
            dn=dn,
            description=description,
            institution=institution,
            email=email,
            phone=phone,
        )

    async def get_user(self, dn: str) -> dict:
        return await self._call("get_user", dn=dn)

    async def register_external_catalog(
        self,
        name: str,
        catalog_type: str,
        host: str,
        port: int,
        description: str = "",
    ) -> bool:
        return await self._call(
            "register_external_catalog",
            name=name,
            catalog_type=catalog_type,
            host=host,
            port=port,
            description=description,
        )

    async def list_external_catalogs(self) -> list[dict]:
        return await self._call("list_external_catalogs")

    async def set_permissions(
        self,
        object_type: str,
        name: Optional[str],
        principal: str,
        permissions: Sequence[str],
    ) -> bool:
        return await self._call(
            "set_permissions",
            object_type=object_type,
            name=name,
            principal=principal,
            permissions=list(permissions),
        )

    async def get_permissions(
        self, object_type: str, name: Optional[str] = None
    ) -> dict:
        return await self._call("get_permissions", object_type=object_type, name=name)

    async def stats(self) -> dict:
        return await self._call("stats")

    async def ping(self) -> str:
        return await self._call("ping")
