"""An MCS metadata backend over the native XML database.

The §9 redesign question: would a native XML backend beat the relational
one?  This backend stores each logical file's metadata as one XML
document::

    <file name="lfn.000000001" data_type="binary" collection="coll.0">
      <attr name="wl_str_a" type="string">v00007</attr>
      <attr name="wl_int_a" type="int">7</attr>
      ...
    </file>

and answers conjunctive attribute queries by intersecting XPath matches.
It implements the operations the §7 benchmarks exercise (add/delete,
name lookup, N-attribute conjunctive query) with the same semantics as
:class:`repro.core.catalog.MetadataCatalog`, so the backend-comparison
ablation is apples-to-apples.
"""

from __future__ import annotations

import datetime as _dt
import threading
import xml.etree.ElementTree as ET
from typing import Any, Optional

from repro.core.errors import DuplicateObjectError, ObjectNotFoundError, QueryError
from repro.core.query import ObjectQuery
from repro.xmldb.database import XMLDatabase
from repro.xmldb.xpath import XPath


def _render_value(value: Any) -> tuple[str, str]:
    """(type tag, canonical text) for an attribute value."""
    if isinstance(value, bool):
        return "int", str(int(value))
    if isinstance(value, int):
        return "int", str(value)
    if isinstance(value, float):
        return "float", repr(value)
    if isinstance(value, _dt.datetime):
        return "datetime", value.isoformat()
    if isinstance(value, _dt.date):
        return "date", value.isoformat()
    if isinstance(value, _dt.time):
        return "time", value.isoformat()
    return "string", str(value)


def _parse_value(type_tag: str, text: str) -> Any:
    if type_tag == "int":
        return int(text)
    if type_tag == "float":
        return float(text)
    if type_tag == "date":
        return _dt.date.fromisoformat(text)
    if type_tag == "time":
        return _dt.time.fromisoformat(text)
    if type_tag == "datetime":
        return _dt.datetime.fromisoformat(text)
    return text


class XmlMetadataBackend:
    """Logical-file metadata on a native XML store."""

    def __init__(self, index_names: bool = True) -> None:
        # Indexing the `name` attribute of <attr> elements accelerates
        # //attr[@name='x'] candidate selection, mirroring the relational
        # backend's attribute indexes as closely as the model allows.
        self.db = XMLDatabase(index_attributes=("name",) if index_names else ())
        self._lock = threading.Lock()
        self._xpath_cache: dict[str, XPath] = {}

    # -- operations mirrored from MetadataCatalog -----------------------------

    def create_file(
        self,
        name: str,
        data_type: Optional[str] = None,
        collection: Optional[str] = None,
        attributes: Optional[dict[str, Any]] = None,
    ) -> None:
        if self.db.get(name) is not None:
            raise DuplicateObjectError(f"logical file {name!r} already exists")
        root = ET.Element("file", {"name": name})
        if data_type:
            root.set("data_type", data_type)
        if collection:
            root.set("collection", collection)
        for attr_name, value in (attributes or {}).items():
            type_tag, text = _render_value(value)
            element = ET.SubElement(root, "attr", {"name": attr_name, "type": type_tag})
            element.text = text
        self.db.store(name, root)

    def delete_file(self, name: str) -> None:
        if not self.db.delete(name):
            raise ObjectNotFoundError(f"no logical file {name!r}")

    def get_file(self, name: str) -> dict[str, Any]:
        document = self.db.get(name)
        if document is None:
            raise ObjectNotFoundError(f"no logical file {name!r}")
        return {
            "name": document.get("name"),
            "data_type": document.get("data_type"),
            "collection": document.get("collection"),
        }

    def get_attributes(self, name: str) -> dict[str, Any]:
        document = self.db.get(name)
        if document is None:
            raise ObjectNotFoundError(f"no logical file {name!r}")
        out: dict[str, Any] = {}
        for element in document:
            if element.tag == "attr":
                out[element.get("name", "")] = _parse_value(
                    element.get("type", "string"), element.text or ""
                )
        return out

    def file_exists(self, name: str) -> bool:
        return self.db.get(name) is not None

    # -- queries -------------------------------------------------------------------

    def _xpath_for(self, attr_name: str, value: Any) -> XPath:
        _, text = _render_value(value)
        key = f"{attr_name}\0{text}"
        cached = self._xpath_cache.get(key)
        if cached is None:
            escaped = text.replace("'", "")  # our XPath strings are simple
            cached = XPath(f"/file/attr[@name='{attr_name}'][text()='{escaped}']")
            with self._lock:
                if len(self._xpath_cache) > 4096:
                    self._xpath_cache.clear()
                self._xpath_cache[key] = cached
        return cached

    def query(self, query: ObjectQuery) -> list[str]:
        """Fluent conjunctive equality query over the XPath store.

        XPath predicates here are pure text matches, so only ``=`` on
        user attributes translates; range operators, predefined-field
        conditions, ordering and paging raise :class:`QueryError` rather
        than silently returning wrong answers.
        """
        if (
            query.predefined
            or query.order
            or query.collection
            or query.max_results is not None
            or query.skip_results is not None
        ):
            raise QueryError(
                "the XML backend answers attribute equality conditions only"
            )
        expressions = []
        for cond in query.conditions:
            if cond.op != "=":
                raise QueryError(
                    f"the XML backend cannot evaluate operator {cond.op!r}"
                )
            expressions.append(self._xpath_for(cond.attribute, cond.value))
        return self.db.query_names_all(expressions)

    def query_files_by_attributes(self, conditions: dict[str, Any]) -> list[str]:
        """Conjunctive equality query, like the relational backend's."""
        expressions = [
            self._xpath_for(attr_name, value)
            for attr_name, value in conditions.items()
        ]
        return self.db.query_names_all(expressions)

    def simple_query(self, name: str) -> list[str]:
        """Name lookup (the §7 'simple query' analogue)."""
        return [name] if self.file_exists(name) else []

    def stats(self) -> dict[str, int]:
        return {"files": len(self.db)}
