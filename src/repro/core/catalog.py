"""MetadataCatalog: storage-level MCS operations.

All operations the paper's client API lists (§5) are implemented here
against the embedded relational engine; :class:`repro.core.service.MCSService`
layers authentication, authorization and auditing on top.

Thread model: one MetadataCatalog per server, safe for concurrent use —
each public method uses a connection from a per-thread pool, and the
underlying engine provides table-level locking.
"""

from __future__ import annotations

import datetime as _dt
import threading
import time as _time
from contextlib import contextmanager
from typing import Any, Iterable, Optional, Sequence

from repro.cache import CatalogCache
from repro.cache.lru import LRUCache
from repro.core.errors import (
    CycleError,
    DuplicateObjectError,
    InvalidAttributeError,
    ObjectInUseError,
    ObjectNotFoundError,
)
from repro.core.model import (
    Annotation,
    AttributeDef,
    AttributeType,
    AuditRecord,
    ExternalCatalog,
    LogicalCollection,
    LogicalFile,
    LogicalView,
    ObjectType,
    TransformationRecord,
    UserInfo,
    ViewMember,
)
from repro.core.query import ObjectQuery
from repro.core.schema_def import install_schema
from repro.db import Database, IntegrityError
from repro.db.engine import Connection
from repro.mql import stats as _attr_stats
from repro.obs.metrics import counter as _obs_counter, histogram as _obs_histogram
from repro.security.acl import AccessControlList, Permission

_MQL_QUERIES = _obs_counter(
    "mcs_mql_queries_total",
    "MQL statements processed, by operation (query / explain)",
    labels=("op",),
)
_MQL_PARSE = _obs_histogram(
    "mcs_mql_parse_seconds",
    "Wall time to parse + compile + plan one MQL statement (cache misses)",
)


def _now() -> _dt.datetime:
    return _dt.datetime.now()


_FILE_COLUMNS = (
    "id, name, version, data_type, valid, collection_id, container_id, "
    "container_service, master_copy, creator, created, last_modifier, "
    "modified, audit_enabled"
)


class MetadataCatalog:
    """The MCS storage layer over an embedded relational database."""

    def __init__(
        self,
        db: Optional[Database] = None,
        install: bool = True,
        cache: bool = True,
    ) -> None:
        self.db = db if db is not None else Database()
        if install:
            install_schema(self.db)
        self._local = threading.local()
        # Strict-consistency read caches (attribute defs, object ids,
        # query results), invalidated by the engine's commit-time
        # generation bumps.  ``cache=False`` (or flipping
        # ``self.cache.enabled``) disables lookups — the bench ablation.
        self.cache = CatalogCache(self.db, enabled=cache)
        # MQL: optional strategy override (None = cost-based, or one of
        # "index" / "join" / "scan" — the bench ablation axis), plus the
        # compiled-plan LRU keyed by (text, attribute_def generation,
        # override) so attribute (re)definitions invalidate every plan.
        self.mql_strategy: Optional[str] = None
        self._mql_plans: LRUCache[Any, Any] = LRUCache(128)

    # -- connection pooling ------------------------------------------------

    @property
    def _conn(self) -> Connection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = self.db.connect()
            self._local.conn = conn
        return conn

    @contextmanager
    def _atomic(self, conn: Connection, read=(), write=()):
        """One engine transaction around a multi-statement write path.

        Passthrough when the caller already holds a transaction (the
        bulk operations begin their own with wider lock sets); otherwise
        begin / lock / commit, rolling back completely on any failure so
        a refused WAL commit can never leave a torn write — the EAV row,
        its secondary-index entries and the incremental ``attribute_stats``
        row land together or not at all.
        """
        if conn.in_transaction:
            yield
            return
        conn.begin()
        try:
            conn.lock_tables(read=read, write=write)
            yield
            conn.commit()
        except Exception:
            conn.rollback()
            raise

    # ======================================================================
    # Logical files
    # ======================================================================

    def create_file(
        self,
        name: str,
        version: int = 1,
        data_type: Optional[str] = None,
        collection: Optional[str] = None,
        container_id: Optional[str] = None,
        container_service: Optional[str] = None,
        master_copy: Optional[str] = None,
        creator: Optional[str] = None,
        audit_enabled: bool = False,
        attributes: Optional[dict[str, Any]] = None,
    ) -> int:
        """Create a logical file; returns its database id.

        ``attributes`` maps user-defined attribute names (which must be
        defined first via :meth:`define_attribute`) to values.
        """
        conn = self._conn
        with self._atomic(
            conn,
            read=("logical_collection", "attribute_def"),
            write=("logical_file", "attribute_value", "attribute_stats"),
        ):
            collection_id = None
            if collection is not None:
                collection_id = self._collection_id(conn, collection)
            now = _now()
            try:
                result = conn.execute(
                    "INSERT INTO logical_file (name, version, data_type, valid, "
                    "collection_id, container_id, container_service, master_copy, "
                    "creator, created, last_modifier, modified, audit_enabled) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        name,
                        version,
                        data_type,
                        True,
                        collection_id,
                        container_id,
                        container_service,
                        master_copy,
                        creator,
                        now,
                        creator,
                        now,
                        audit_enabled,
                    ),
                )
            except IntegrityError as exc:
                raise DuplicateObjectError(
                    f"logical file {name!r} version {version} already exists"
                ) from exc
            file_id = result.lastrowid
            if attributes:
                self._set_attributes(conn, ObjectType.FILE, file_id, attributes)
        return file_id

    def get_file(self, name: str, version: Optional[int] = None) -> LogicalFile:
        """Static (predefined) attributes of a logical file.

        When multiple versions exist, ``version`` must be supplied (paper
        rule: name + version identify the data item uniquely).
        """
        conn = self._conn
        if version is not None:
            rows = conn.execute(
                f"SELECT {_FILE_COLUMNS} FROM logical_file "
                "WHERE name = ? AND version = ?",
                (name, version),
            ).fetchall()
        else:
            rows = conn.execute(
                f"SELECT {_FILE_COLUMNS} FROM logical_file WHERE name = ?",
                (name,),
            ).fetchall()
            if len(rows) > 1:
                raise InvalidAttributeError(
                    f"logical file {name!r} has {len(rows)} versions; "
                    "specify one explicitly"
                )
        if not rows:
            raise ObjectNotFoundError(f"no logical file {name!r}")
        return _file_from_row(rows[0])

    def file_exists(self, name: str, version: Optional[int] = None) -> bool:
        try:
            self.get_file(name, version)
            return True
        except ObjectNotFoundError:
            return False

    def list_versions(self, name: str) -> list[int]:
        rows = self._conn.execute(
            "SELECT version FROM logical_file WHERE name = ? ORDER BY version",
            (name,),
        ).fetchall()
        return [r[0] for r in rows]

    def update_file(
        self,
        name: str,
        version: Optional[int] = None,
        modifier: Optional[str] = None,
        **changes: Any,
    ) -> None:
        """Modify predefined attributes (data_type, valid, master_copy,
        container_id, container_service, audit_enabled)."""
        allowed = {
            "data_type",
            "valid",
            "master_copy",
            "container_id",
            "container_service",
            "audit_enabled",
        }
        bad = set(changes) - allowed
        if bad:
            raise InvalidAttributeError(f"cannot update fields {sorted(bad)}")
        if not changes:
            return
        file = self.get_file(name, version)
        conn = self._conn
        sets = ", ".join(f"{col} = ?" for col in changes)
        conn.execute(
            f"UPDATE logical_file SET {sets}, last_modifier = ?, modified = ? "
            "WHERE id = ?",
            (*changes.values(), modifier, _now(), file.id),
        )

    def invalidate_file(self, name: str, version: Optional[int] = None,
                        modifier: Optional[str] = None) -> None:
        """Quickly mark a logical file's data as invalid (paper §5)."""
        self.update_file(name, version, modifier=modifier, valid=False)

    def move_file_to_collection(
        self, name: str, collection: Optional[str],
        version: Optional[int] = None, modifier: Optional[str] = None
    ) -> None:
        """Reassign the file's (single) enclosing collection."""
        file = self.get_file(name, version)
        conn = self._conn
        collection_id = (
            None if collection is None else self._collection_id(conn, collection)
        )
        conn.execute(
            "UPDATE logical_file SET collection_id = ?, last_modifier = ?, "
            "modified = ? WHERE id = ?",
            (collection_id, modifier, _now(), file.id),
        )

    def export_file_state(
        self, name: str, version: Optional[int] = None
    ) -> dict[str, Any]:
        """Portable snapshot of a file and its dependent metadata.

        Collections and views are referenced by *name* so the state can
        be re-imported into another engine (a shard, a standby, an
        export/import pipeline) where database ids differ.
        """
        file = self.get_file(name, version)
        conn = self._conn
        collection = None
        if file.collection_id is not None:
            collection = conn.execute(
                "SELECT name FROM logical_collection WHERE id = ?",
                (file.collection_id,),
            ).scalar()
        annotations = conn.execute(
            "SELECT annotation, creator, created FROM annotation "
            "WHERE object_type = 'file' AND object_id = ? ORDER BY id",
            (file.id,),
        ).fetchall()
        transformations = conn.execute(
            "SELECT description, created FROM transformation "
            "WHERE file_id = ? ORDER BY id",
            (file.id,),
        ).fetchall()
        acl = conn.execute(
            "SELECT principal, permissions FROM acl_entry "
            "WHERE object_type = 'file' AND object_id = ?",
            (file.id,),
        ).fetchall()
        views = conn.execute(
            "SELECT v.name FROM view_member m "
            "JOIN logical_view v ON v.id = m.view_id "
            "WHERE m.member_type = 'file' AND m.member_id = ?",
            (file.id,),
        ).fetchall()
        return {
            "file": {
                "name": file.name,
                "version": file.version,
                "data_type": file.data_type,
                "valid": file.valid,
                "collection": collection,
                "container_id": file.container_id,
                "container_service": file.container_service,
                "master_copy": file.master_copy,
                "creator": file.creator,
                "created": file.created,
                "last_modifier": file.last_modifier,
                "audit_enabled": file.audit_enabled,
            },
            "attributes": self.get_attributes(ObjectType.FILE, name, file.version),
            "annotations": [list(row) for row in annotations],
            "transformations": [list(row) for row in transformations],
            "acl": [list(row) for row in acl],
            "views": [row[0] for row in views],
        }

    def import_file_state(
        self, state: dict[str, Any], modifier: Optional[str] = None
    ) -> int:
        """Recreate a file exported by :meth:`export_file_state`.

        Creation metadata is preserved; the file gets a fresh database
        id, ``modified`` is stamped now and ``last_modifier`` becomes
        ``modifier`` (imports are modifications, e.g. cross-shard moves).
        """
        meta = state["file"]
        conn = self._conn
        collection_id = None
        if meta.get("collection") is not None:
            collection_id = self._collection_id(conn, meta["collection"])
        try:
            result = conn.execute(
                "INSERT INTO logical_file (name, version, data_type, valid, "
                "collection_id, container_id, container_service, master_copy, "
                "creator, created, last_modifier, modified, audit_enabled) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    meta["name"],
                    meta["version"],
                    meta.get("data_type"),
                    meta.get("valid", True),
                    collection_id,
                    meta.get("container_id"),
                    meta.get("container_service"),
                    meta.get("master_copy"),
                    meta.get("creator"),
                    meta.get("created"),
                    modifier if modifier is not None else meta.get("last_modifier"),
                    _now(),
                    bool(meta.get("audit_enabled", False)),
                ),
            )
        except IntegrityError as exc:
            raise DuplicateObjectError(
                f"logical file {meta['name']!r} version {meta['version']} "
                "already exists"
            ) from exc
        file_id = result.lastrowid
        if state.get("attributes"):
            self._set_attributes(conn, ObjectType.FILE, file_id, state["attributes"])
        for text, creator, created in state.get("annotations", ()):
            conn.execute(
                "INSERT INTO annotation (object_type, object_id, annotation, "
                "creator, created) VALUES ('file', ?, ?, ?, ?)",
                (file_id, text, creator, created),
            )
        for description, created in state.get("transformations", ()):
            conn.execute(
                "INSERT INTO transformation (file_id, description, created) "
                "VALUES (?, ?, ?)",
                (file_id, description, created),
            )
        for principal, bits in state.get("acl", ()):
            conn.execute(
                "INSERT INTO acl_entry (object_type, object_id, principal, "
                "permissions) VALUES ('file', ?, ?, ?)",
                (file_id, principal, bits),
            )
        for view_name in state.get("views", ()):
            view_id = conn.execute(
                "SELECT id FROM logical_view WHERE name = ?", (view_name,)
            ).scalar()
            if view_id is not None:
                self._add_view_member(conn, view_id, ObjectType.FILE, file_id)
        return file_id

    def delete_file(self, name: str, version: Optional[int] = None) -> None:
        """Delete a logical file and its dependent metadata."""
        conn = self._conn
        with self._atomic(
            conn,
            read=("attribute_def",),
            write=(
                "logical_file",
                "attribute_value",
                "attribute_stats",
                "annotation",
                "transformation",
                "view_member",
                "acl_entry",
            ),
        ):
            file = self.get_file(name, version)
            _attr_stats.note_object_delete(conn, ObjectType.FILE, file.id)
            conn.execute(
                "DELETE FROM attribute_value WHERE object_type = 'file' "
                "AND object_id = ?",
                (file.id,),
            )
            conn.execute(
                "DELETE FROM annotation WHERE object_type = 'file' AND object_id = ?",
                (file.id,),
            )
            conn.execute("DELETE FROM transformation WHERE file_id = ?", (file.id,))
            conn.execute(
                "DELETE FROM view_member WHERE member_type = 'file' "
                "AND member_id = ?",
                (file.id,),
            )
            conn.execute(
                "DELETE FROM acl_entry WHERE object_type = 'file' AND object_id = ?",
                (file.id,),
            )
            conn.execute("DELETE FROM logical_file WHERE id = ?", (file.id,))

    # ======================================================================
    # Logical collections
    # ======================================================================

    def create_collection(
        self,
        name: str,
        parent: Optional[str] = None,
        description: Optional[str] = None,
        creator: Optional[str] = None,
        audit_enabled: bool = False,
        attributes: Optional[dict[str, Any]] = None,
    ) -> int:
        conn = self._conn
        parent_id = None if parent is None else self._collection_id(conn, parent)
        now = _now()
        try:
            result = conn.execute(
                "INSERT INTO logical_collection (name, description, parent_id, "
                "creator, created, last_modifier, modified, audit_enabled) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (name, description, parent_id, creator, now, creator, now, audit_enabled),
            )
        except IntegrityError as exc:
            raise DuplicateObjectError(f"collection {name!r} already exists") from exc
        collection_id = result.lastrowid
        if attributes:
            self._set_attributes(conn, ObjectType.COLLECTION, collection_id, attributes)
        return collection_id

    def get_collection(self, name: str) -> LogicalCollection:
        row = self._conn.execute(
            "SELECT id, name, description, parent_id, creator, created, "
            "last_modifier, modified, audit_enabled "
            "FROM logical_collection WHERE name = ?",
            (name,),
        ).fetchone()
        if row is None:
            raise ObjectNotFoundError(f"no logical collection {name!r}")
        return LogicalCollection(*row)

    def set_collection_parent(self, name: str, parent: Optional[str]) -> None:
        """Re-parent a collection, preserving acyclicity."""
        conn = self._conn
        collection = self.get_collection(name)
        if parent is None:
            conn.execute(
                "UPDATE logical_collection SET parent_id = ? WHERE id = ?",
                (None, collection.id),
            )
            return
        parent_obj = self.get_collection(parent)
        # Walk up from the proposed parent; hitting `collection` is a cycle.
        cursor: Optional[int] = parent_obj.id
        while cursor is not None:
            if cursor == collection.id:
                raise CycleError(
                    f"making {parent!r} the parent of {name!r} creates a cycle"
                )
            cursor = conn.execute(
                "SELECT parent_id FROM logical_collection WHERE id = ?", (cursor,)
            ).scalar()
        conn.execute(
            "UPDATE logical_collection SET parent_id = ? WHERE id = ?",
            (parent_obj.id, collection.id),
        )

    def delete_collection(self, name: str) -> None:
        collection = self.get_collection(name)
        conn = self._conn
        n_files = conn.execute(
            "SELECT COUNT(*) FROM logical_file WHERE collection_id = ?",
            (collection.id,),
        ).scalar()
        n_children = conn.execute(
            "SELECT COUNT(*) FROM logical_collection WHERE parent_id = ?",
            (collection.id,),
        ).scalar()
        if n_files or n_children:
            raise ObjectInUseError(
                f"collection {name!r} still has {n_files} files and "
                f"{n_children} subcollections"
            )
        _attr_stats.note_object_delete(conn, ObjectType.COLLECTION, collection.id)
        for table in ("attribute_value", "annotation", "acl_entry"):
            conn.execute(
                f"DELETE FROM {table} WHERE object_type = 'collection' AND object_id = ?",
                (collection.id,),
            )
        conn.execute(
            "DELETE FROM view_member WHERE member_type = 'collection' AND member_id = ?",
            (collection.id,),
        )
        conn.execute("DELETE FROM logical_collection WHERE id = ?", (collection.id,))

    def list_collection(self, name: str) -> list[str]:
        """Logical file names directly inside a collection."""
        collection = self.get_collection(name)
        rows = self._conn.execute(
            "SELECT name FROM logical_file WHERE collection_id = ? ORDER BY name",
            (collection.id,),
        ).fetchall()
        return [r[0] for r in rows]

    def list_subcollections(self, name: str) -> list[str]:
        collection = self.get_collection(name)
        rows = self._conn.execute(
            "SELECT name FROM logical_collection WHERE parent_id = ? ORDER BY name",
            (collection.id,),
        ).fetchall()
        return [r[0] for r in rows]

    def collection_chain(self, name: str) -> list[str]:
        """The collection and its ancestors, nearest first."""
        conn = self._conn
        chain: list[str] = []
        current: Optional[str] = name
        while current is not None:
            collection = self.get_collection(current)
            chain.append(collection.name)
            if collection.parent_id is None:
                break
            current = conn.execute(
                "SELECT name FROM logical_collection WHERE id = ?",
                (collection.parent_id,),
            ).scalar()
        return chain

    def file_collection_chain(self, name: str, version: Optional[int] = None) -> list[str]:
        """Enclosing collection chain of a file (may be empty)."""
        file = self.get_file(name, version)
        if file.collection_id is None:
            return []
        coll_name = self._conn.execute(
            "SELECT name FROM logical_collection WHERE id = ?",
            (file.collection_id,),
        ).scalar()
        return self.collection_chain(coll_name)

    # ======================================================================
    # Logical views
    # ======================================================================

    def create_view(
        self,
        name: str,
        description: Optional[str] = None,
        creator: Optional[str] = None,
        audit_enabled: bool = False,
        attributes: Optional[dict[str, Any]] = None,
    ) -> int:
        conn = self._conn
        now = _now()
        try:
            result = conn.execute(
                "INSERT INTO logical_view (name, description, creator, created, "
                "last_modifier, modified, audit_enabled) VALUES (?, ?, ?, ?, ?, ?, ?)",
                (name, description, creator, now, creator, now, audit_enabled),
            )
        except IntegrityError as exc:
            raise DuplicateObjectError(f"view {name!r} already exists") from exc
        view_id = result.lastrowid
        if attributes:
            self._set_attributes(conn, ObjectType.VIEW, view_id, attributes)
        return view_id

    def get_view(self, name: str) -> LogicalView:
        row = self._conn.execute(
            "SELECT id, name, description, creator, created, last_modifier, "
            "modified, audit_enabled FROM logical_view WHERE name = ?",
            (name,),
        ).fetchone()
        if row is None:
            raise ObjectNotFoundError(f"no logical view {name!r}")
        return LogicalView(*row)

    def add_to_view(
        self,
        view: str,
        files: Iterable[str] = (),
        collections: Iterable[str] = (),
        views: Iterable[str] = (),
    ) -> None:
        """Add members to a view.  View membership must stay acyclic."""
        conn = self._conn
        view_obj = self.get_view(view)
        for member_view in views:
            member = self.get_view(member_view)
            if self._view_reaches(conn, member.id, view_obj.id):
                raise CycleError(
                    f"adding view {member_view!r} to {view!r} creates a cycle"
                )
        for file_name in files:
            file = self.get_file(file_name)
            self._add_view_member(conn, view_obj.id, ObjectType.FILE, file.id)
        for coll_name in collections:
            collection = self.get_collection(coll_name)
            self._add_view_member(conn, view_obj.id, ObjectType.COLLECTION, collection.id)
        for view_name in views:
            member = self.get_view(view_name)
            self._add_view_member(conn, view_obj.id, ObjectType.VIEW, member.id)

    @staticmethod
    def _add_view_member(conn: Connection, view_id: int, mtype: ObjectType, mid: int) -> None:
        try:
            conn.execute(
                "INSERT INTO view_member (view_id, member_type, member_id) "
                "VALUES (?, ?, ?)",
                (view_id, mtype.value, mid),
            )
        except IntegrityError:
            pass  # membership is a set; re-adding is a no-op

    def _view_reaches(self, conn: Connection, start_view: int, target_view: int) -> bool:
        """True when `target_view` is reachable from `start_view` via
        view-in-view membership (or they are the same)."""
        if start_view == target_view:
            return True
        stack = [start_view]
        seen = set()
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            rows = conn.execute(
                "SELECT member_id FROM view_member "
                "WHERE view_id = ? AND member_type = 'view'",
                (current,),
            ).fetchall()
            for (member_id,) in rows:
                if member_id == target_view:
                    return True
                stack.append(member_id)
        return False

    def remove_from_view(
        self,
        view: str,
        files: Iterable[str] = (),
        collections: Iterable[str] = (),
        views: Iterable[str] = (),
    ) -> None:
        conn = self._conn
        view_obj = self.get_view(view)
        for file_name in files:
            file = self.get_file(file_name)
            conn.execute(
                "DELETE FROM view_member WHERE view_id = ? AND member_type = 'file' "
                "AND member_id = ?",
                (view_obj.id, file.id),
            )
        for coll_name in collections:
            collection = self.get_collection(coll_name)
            conn.execute(
                "DELETE FROM view_member WHERE view_id = ? AND "
                "member_type = 'collection' AND member_id = ?",
                (view_obj.id, collection.id),
            )
        for view_name in views:
            member = self.get_view(view_name)
            conn.execute(
                "DELETE FROM view_member WHERE view_id = ? AND member_type = 'view' "
                "AND member_id = ?",
                (view_obj.id, member.id),
            )

    def list_view(self, name: str) -> list[ViewMember]:
        """Direct members of a view, with resolved names."""
        conn = self._conn
        view_obj = self.get_view(name)
        rows = conn.execute(
            "SELECT member_type, member_id FROM view_member WHERE view_id = ?",
            (view_obj.id,),
        ).fetchall()
        members: list[ViewMember] = []
        for mtype_text, mid in rows:
            mtype = ObjectType(mtype_text)
            table = {
                ObjectType.FILE: "logical_file",
                ObjectType.COLLECTION: "logical_collection",
                ObjectType.VIEW: "logical_view",
            }[mtype]
            member_name = conn.execute(
                f"SELECT name FROM {table} WHERE id = ?", (mid,)
            ).scalar()
            members.append(ViewMember(mtype, mid, member_name or ""))
        return sorted(members, key=lambda m: (m.member_type.value, m.name))

    def delete_view(self, name: str) -> None:
        view_obj = self.get_view(name)
        conn = self._conn
        referencing = conn.execute(
            "SELECT COUNT(*) FROM view_member WHERE member_type = 'view' "
            "AND member_id = ?",
            (view_obj.id,),
        ).scalar()
        if referencing:
            raise ObjectInUseError(
                f"view {name!r} is a member of {referencing} other view(s)"
            )
        conn.execute("DELETE FROM view_member WHERE view_id = ?", (view_obj.id,))
        _attr_stats.note_object_delete(conn, ObjectType.VIEW, view_obj.id)
        for table in ("attribute_value", "annotation", "acl_entry"):
            conn.execute(
                f"DELETE FROM {table} WHERE object_type = 'view' AND object_id = ?",
                (view_obj.id,),
            )
        conn.execute("DELETE FROM logical_view WHERE id = ?", (view_obj.id,))

    # ======================================================================
    # User-defined attributes
    # ======================================================================

    def define_attribute(
        self,
        name: str,
        value_type: AttributeType | str,
        object_types: Iterable[ObjectType] = (
            ObjectType.FILE,
            ObjectType.COLLECTION,
            ObjectType.VIEW,
        ),
        description: Optional[str] = None,
        creator: Optional[str] = None,
    ) -> int:
        """Register a new user-defined attribute (schema extensibility)."""
        if isinstance(value_type, str):
            value_type = AttributeType.parse(value_type)
        types_text = ",".join(sorted(t.value for t in object_types))
        conn = self._conn
        try:
            result = conn.execute(
                "INSERT INTO attribute_def (name, value_type, object_types, "
                "description, creator, created) VALUES (?, ?, ?, ?, ?, ?)",
                (name, value_type.value, types_text, description, creator, _now()),
            )
        except IntegrityError as exc:
            raise DuplicateObjectError(f"attribute {name!r} already defined") from exc
        return result.lastrowid

    def get_attribute_def(self, name: str) -> AttributeDef:
        conn = self._conn
        token = self.cache.lookup_attr_def(conn, name)
        if token.hit:
            return token.value
        row = conn.execute(
            "SELECT id, name, value_type, object_types, description, creator, "
            "created FROM attribute_def WHERE name = ?",
            (name,),
        ).fetchone()
        if row is None:
            raise InvalidAttributeError(f"attribute {name!r} is not defined")
        definition = AttributeDef(
            id=row[0],
            name=row[1],
            value_type=AttributeType(row[2]),
            object_types=frozenset(ObjectType(t) for t in row[3].split(",") if t),
            description=row[4],
            creator=row[5],
            created=row[6],
        )
        token.store(definition)
        return definition

    def list_attribute_defs(self) -> list[AttributeDef]:
        rows = self._conn.execute(
            "SELECT name FROM attribute_def ORDER BY name"
        ).fetchall()
        return [self.get_attribute_def(r[0]) for r in rows]

    def set_attributes(
        self,
        object_type: ObjectType,
        name: str,
        attributes: dict[str, Any],
        version: Optional[int] = None,
    ) -> None:
        """Set (insert or replace) user-defined attribute values."""
        conn = self._conn
        with self._atomic(
            conn,
            read=(
                "logical_file",
                "logical_collection",
                "logical_view",
                "attribute_def",
            ),
            write=("attribute_value", "attribute_stats"),
        ):
            object_id = self._object_id(conn, object_type, name, version)
            self._set_attributes(conn, object_type, object_id, attributes)

    def _set_attributes(
        self,
        conn: Connection,
        object_type: ObjectType,
        object_id: int,
        attributes: dict[str, Any],
    ) -> None:
        for attr_name, value in attributes.items():
            definition = self.get_attribute_def(attr_name)
            if object_type not in definition.object_types:
                raise InvalidAttributeError(
                    f"attribute {attr_name!r} does not apply to {object_type.value}s"
                )
            coerced = _coerce_attr_value(definition, value)
            column = definition.value_type.value_column
            updated = conn.execute(
                f"UPDATE attribute_value SET {column} = ? WHERE attr_id = ? "
                "AND object_type = ? AND object_id = ?",
                (coerced, definition.id, object_type.value, object_id),
            ).rowcount
            if updated == 0:
                conn.execute(
                    f"INSERT INTO attribute_value (attr_id, object_type, "
                    f"object_id, {column}) VALUES (?, ?, ?, ?)",
                    (definition.id, object_type.value, object_id, coerced),
                )
                _attr_stats.note_insert(conn, definition, object_type, coerced)
            else:
                _attr_stats.note_update(conn, definition, object_type, coerced)

    def get_attributes(
        self,
        object_type: ObjectType,
        name: str,
        version: Optional[int] = None,
    ) -> dict[str, Any]:
        """All user-defined attribute values on an object."""
        conn = self._conn
        object_id = self._object_id(conn, object_type, name, version)
        rows = conn.execute(
            "SELECT d.name, d.value_type, v.value_string, v.value_int, "
            "v.value_float, v.value_date, v.value_time, v.value_datetime "
            "FROM attribute_value v JOIN attribute_def d ON v.attr_id = d.id "
            "WHERE v.object_type = ? AND v.object_id = ?",
            (object_type.value, object_id),
        ).fetchall()
        out: dict[str, Any] = {}
        columns = ("string", "int", "float", "date", "time", "datetime")
        for row in rows:
            attr_name, value_type = row[0], AttributeType(row[1])
            out[attr_name] = row[2 + columns.index(value_type.value)]
        return out

    def remove_attribute(
        self,
        object_type: ObjectType,
        name: str,
        attr_name: str,
        version: Optional[int] = None,
    ) -> None:
        conn = self._conn
        with self._atomic(
            conn,
            read=(
                "logical_file",
                "logical_collection",
                "logical_view",
                "attribute_def",
            ),
            write=("attribute_value", "attribute_stats"),
        ):
            object_id = self._object_id(conn, object_type, name, version)
            definition = self.get_attribute_def(attr_name)
            removed = conn.execute(
                "DELETE FROM attribute_value WHERE attr_id = ? AND "
                "object_type = ? AND object_id = ?",
                (definition.id, object_type.value, object_id),
            ).rowcount
            _attr_stats.note_remove(conn, definition.id, object_type, removed)

    # ======================================================================
    # Attribute-based query (discovery)
    # ======================================================================

    def query(self, query: ObjectQuery) -> list[str]:
        """Names of logical objects matching the query conditions."""
        conn = self._conn
        tables = query.touched_tables()
        # Snapshot before compiling: to_sql itself reads the catalog
        # (attribute defs, collection ids), so a later snapshot could
        # stamp a pre-commit result with post-commit generations.
        generations = self.cache.generations.snapshot(tables)
        sql, params = query.to_sql(self)
        token = self.cache.lookup_query(
            conn, (sql, params), tables, generations=generations
        )
        if token.hit:
            return list(token.value)
        rows = conn.execute(sql, params).fetchall()
        names = [r[0] for r in rows]
        token.store(tuple(names))
        return names

    def query_rows(self, query: ObjectQuery) -> list[tuple[Any, str]]:
        """``(order_key, name)`` pairs for an ordered query.

        The scatter/gather router needs each shard's sort key alongside
        the name to k-way merge per-shard streams; cached under the same
        strict-consistency contract as :meth:`query`.
        """
        if query.order is None:
            return [(name, name) for name in self.query(query)]
        conn = self._conn
        tables = query.touched_tables()
        generations = self.cache.generations.snapshot(tables)
        sql, params = query.to_sql(self, select_key=True)
        token = self.cache.lookup_query(
            conn, (sql, params), tables, generations=generations
        )
        if token.hit:
            return list(token.value)
        rows = conn.execute(sql, params).fetchall()
        pairs = [(row[1], row[0]) for row in rows]
        token.store(tuple(pairs))
        return pairs

    def explain_query(self, query: ObjectQuery) -> list[str]:
        """Physical plan of an attribute query (EXPLAIN), for tuning."""
        sql, params = query.to_sql(self)
        rows = self._conn.execute("EXPLAIN " + sql, params).fetchall()
        return [r[0] for r in rows]

    def query_files_by_attributes(self, conditions: dict[str, Any]) -> list[str]:
        """Convenience: conjunctive equality match on user attributes."""
        from repro.core.query import AttributeCondition

        query = ObjectQuery(
            object_type=ObjectType.FILE,
            conditions=[
                AttributeCondition(name, "=", value)
                for name, value in conditions.items()
            ],
        )
        return self.query(query)

    # ======================================================================
    # MQL: the parsed metadata query language
    # ======================================================================

    def query_mql(self, text: str) -> list[str]:
        """Run one MQL statement; returns the ordered name list.

        Parsing, compilation and cost-based planning are cached per
        (text, attribute_def generation, strategy override); execution
        routes each conjunctive leaf through the planner's chosen
        strategy (see :mod:`repro.mql.executor`).
        """
        from repro.mql import executor as mql_executor

        _MQL_QUERIES.labels("query").inc()
        plan = self._mql_plan(text)
        return mql_executor.execute_compiled(
            plan.compiled,
            lambda leaf: mql_executor.run_leaf(
                self, leaf, plan.plan_for(leaf).strategy
            ),
        )

    def explain_mql(self, text: str) -> list[str]:
        """Physical plan of an MQL statement, one line per plan element.

        Join-strategy leaves also include the engine's ``EXPLAIN`` of
        their generated SQL (indented), so the whole path down to the
        B-tree access method is visible from one call.
        """
        from repro.mql import planner as mql_planner

        _MQL_QUERIES.labels("explain").inc()
        plan = self._mql_plan(text)
        lines = mql_planner.explain_lines(plan)
        out: list[str] = []
        for line in lines:
            out.append(line)
            if line.startswith("leaf ") and " strategy=join " in line:
                index = int(line.split()[1])
                for sql_line in self.explain_query(plan.compiled.leaves[index].query):
                    out.append(f"    {sql_line}")
        return out

    def mql_leaf_rows(
        self, leaf: Any, strategy: Optional[str] = None
    ) -> list[tuple[Any, str]]:
        """``(sort key, name)`` pairs for one compiled MQL leaf.

        The scatter/gather router calls this per shard; with no forced
        strategy each shard plans the leaf against its *own* statistics
        (strategies are answer-equivalent, so heterogeneous choices
        across shards cannot skew the merged result).
        """
        from repro.mql import executor as mql_executor
        from repro.mql import planner as mql_planner

        chosen = strategy if strategy is not None else self.mql_strategy
        leaf_plan = mql_planner.plan_leaf(self, leaf, chosen, reorder=False)
        return mql_executor.run_leaf(self, leaf, leaf_plan.strategy)

    def analyze_attributes(self) -> int:
        """Exactly recompute ``attribute_stats`` (repairs drift)."""
        conn = self._conn
        conn.begin()
        try:
            conn.lock_tables(
                read=("attribute_def", "attribute_value"),
                write=("attribute_stats",),
            )
            written = _attr_stats.analyze(conn)
        except Exception:
            conn.rollback()
            raise
        conn.commit()
        return written

    def _mql_plan(self, text: str):
        """Parse + compile + plan, through the compiled-plan LRU."""
        from repro import mql
        from repro.mql import compiler as mql_compiler
        from repro.mql import planner as mql_planner

        generation = self.cache.generations.snapshot(("attribute_def",))
        key = (text, generation, self.mql_strategy)
        plan = self._mql_plans.get(key)
        if plan is not None:
            mql_planner.record_plan_cache(True)
            return plan
        mql_planner.record_plan_cache(False)
        started = _time.perf_counter()
        statement = mql.parse(text)
        compiled = mql_compiler.compile_statement(statement)
        plan = mql_planner.plan_statement(self, compiled, strategy=self.mql_strategy)
        _MQL_PARSE.observe(_time.perf_counter() - started)
        self._mql_plans.put(key, plan)
        return plan

    # ======================================================================
    # Bulk operations
    # ======================================================================
    #
    # Batch handlers run inside ONE explicit transaction.  ``atomic=True``
    # is all-or-nothing (any failure rolls the whole batch back and
    # raises); ``atomic=False`` isolates each item behind an engine
    # savepoint — failed items are reverted and reported, survivors
    # commit together.  Either way readers never observe a torn batch:
    # write locks are held until commit.
    #
    # Every bulk transaction pre-acquires its full lock set via
    # ``lock_tables`` (one sorted acquisition) right after BEGIN, so
    # concurrent batches can neither deadlock on acquisition order nor
    # on a read→write upgrade mid-transaction.

    def bulk_create_files(
        self,
        entries: Sequence[dict[str, Any]],
        creator: Optional[str] = None,
        atomic: bool = True,
    ) -> list[tuple[bool, Any]]:
        """Create many logical files in one transaction.

        Each entry is a dict with the :meth:`create_file` keyword
        arguments (``name`` required).  Returns one ``(ok, value)`` pair
        per entry — ``value`` is the new file id, or the exception for a
        failed item in non-atomic mode.
        """
        if not entries:
            return []
        conn = self._conn
        conn.begin()
        try:
            conn.lock_tables(
                read=("logical_collection", "attribute_def"),
                write=("logical_file", "attribute_value", "attribute_stats"),
            )
            if atomic:
                results = self._bulk_create_files_atomic(conn, entries, creator)
            else:
                results = []
                for entry in entries:
                    token = conn.savepoint()
                    try:
                        file_id = self.create_file(
                            creator=creator, **self._file_entry_kwargs(entry)
                        )
                        results.append((True, file_id))
                    except Exception as exc:  # noqa: BLE001 - per-item boundary
                        conn.rollback_to_savepoint(token)
                        results.append((False, exc))
            conn.commit()
            return results
        except Exception:
            conn.rollback()
            raise

    def _bulk_create_files_atomic(
        self,
        conn: Connection,
        entries: Sequence[dict[str, Any]],
        creator: Optional[str],
    ) -> list[tuple[bool, Any]]:
        """Fast path: one multi-row executemany INSERT per table."""
        now = _now()
        collection_ids: dict[str, int] = {}
        params: list[tuple] = []
        for entry in entries:
            kwargs = self._file_entry_kwargs(entry)
            collection = kwargs["collection"]
            collection_id = None
            if collection is not None:
                collection_id = collection_ids.get(collection)
                if collection_id is None:
                    collection_id = self._collection_id(conn, collection)
                    collection_ids[collection] = collection_id
            params.append(
                (
                    kwargs["name"],
                    kwargs["version"],
                    kwargs["data_type"],
                    True,
                    collection_id,
                    kwargs["container_id"],
                    kwargs["container_service"],
                    kwargs["master_copy"],
                    creator,
                    now,
                    creator,
                    now,
                    kwargs["audit_enabled"],
                )
            )
        try:
            result = conn.executemany(
                "INSERT INTO logical_file (name, version, data_type, valid, "
                "collection_id, container_id, container_service, master_copy, "
                "creator, created, last_modifier, modified, audit_enabled) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                params,
            )
        except IntegrityError as exc:
            raise DuplicateObjectError(
                f"duplicate logical file in bulk batch: {exc}"
            ) from exc
        file_ids = result.lastrowids
        # New files have no existing attribute rows, so a plain INSERT
        # suffices (no UPDATE-then-INSERT); group rows per value column
        # so each type needs only one multi-row statement.
        attr_rows: dict[str, list[tuple]] = {}
        stat_notes: list[tuple[Any, Any]] = []
        for file_id, entry in zip(file_ids, entries):
            for attr_name, value in (entry.get("attributes") or {}).items():
                definition = self.get_attribute_def(attr_name)
                if ObjectType.FILE not in definition.object_types:
                    raise InvalidAttributeError(
                        f"attribute {attr_name!r} does not apply to files"
                    )
                coerced = _coerce_attr_value(definition, value)
                attr_rows.setdefault(
                    definition.value_type.value_column, []
                ).append(
                    (definition.id, ObjectType.FILE.value, file_id, coerced)
                )
                stat_notes.append((definition, coerced))
        for column, rows in attr_rows.items():
            conn.executemany(
                f"INSERT INTO attribute_value (attr_id, object_type, "
                f"object_id, {column}) VALUES (?, ?, ?, ?)",
                rows,
            )
        # Stats after the batch insert, aggregated per attribute: one
        # novelty probe per distinct inserted value instead of three
        # statements per row.
        _attr_stats.note_insert_batch(
            conn,
            [(d, ObjectType.FILE, v) for d, v in stat_notes],
        )
        return [(True, file_id) for file_id in file_ids]

    @staticmethod
    def _file_entry_kwargs(entry: dict[str, Any]) -> dict[str, Any]:
        if "name" not in entry:
            raise InvalidAttributeError("bulk file entry missing 'name'")
        unknown = set(entry) - {
            "name",
            "version",
            "data_type",
            "collection",
            "container_id",
            "container_service",
            "master_copy",
            "audit_enabled",
            "attributes",
        }
        if unknown:
            raise InvalidAttributeError(
                f"unknown bulk file entry fields {sorted(unknown)}"
            )
        return {
            "name": entry["name"],
            "version": entry.get("version", 1),
            "data_type": entry.get("data_type"),
            "collection": entry.get("collection"),
            "container_id": entry.get("container_id"),
            "container_service": entry.get("container_service"),
            "master_copy": entry.get("master_copy"),
            "audit_enabled": bool(entry.get("audit_enabled", False)),
            "attributes": entry.get("attributes"),
        }

    def bulk_set_attributes(
        self,
        items: Sequence[dict[str, Any]],
        atomic: bool = True,
    ) -> list[tuple[bool, Any]]:
        """Set user-defined attributes on many objects in one transaction.

        Each item: ``{"object_type": "file", "name": ..., "version": ...,
        "attributes": {...}}`` (object_type defaults to file).
        """
        if not items:
            return []
        conn = self._conn
        conn.begin()
        try:
            conn.lock_tables(
                read=(
                    "logical_collection",
                    "logical_file",
                    "logical_view",
                    "attribute_def",
                ),
                write=("attribute_value", "attribute_stats"),
            )
            results: list[tuple[bool, Any]] = []
            for item in items:
                token = None if atomic else conn.savepoint()
                try:
                    raw_type = item.get("object_type", ObjectType.FILE)
                    otype = (
                        raw_type
                        if isinstance(raw_type, ObjectType)
                        else ObjectType(raw_type)
                    )
                    if "name" not in item:
                        raise InvalidAttributeError(
                            "bulk attribute item missing 'name'"
                        )
                    object_id = self._object_id(
                        conn, otype, item["name"], item.get("version")
                    )
                    self._set_attributes(
                        conn, otype, object_id, item.get("attributes") or {}
                    )
                    results.append((True, True))
                except Exception as exc:  # noqa: BLE001 - per-item boundary
                    if atomic:
                        raise
                    conn.rollback_to_savepoint(token)
                    results.append((False, exc))
            conn.commit()
            return results
        except Exception:
            conn.rollback()
            raise

    def bulk_query(
        self, queries: Sequence[ObjectQuery]
    ) -> list[tuple[bool, Any]]:
        """Run many discovery queries; per-query fault capture, no txn."""
        results: list[tuple[bool, Any]] = []
        for query in queries:
            try:
                results.append((True, self.query(query)))
            except Exception as exc:  # noqa: BLE001 - per-item boundary
                results.append((False, exc))
        return results

    # ======================================================================
    # Annotations
    # ======================================================================

    def annotate(
        self,
        object_type: ObjectType,
        name: str,
        text: str,
        creator: str,
        version: Optional[int] = None,
    ) -> None:
        conn = self._conn
        object_id = self._object_id(conn, object_type, name, version)
        conn.execute(
            "INSERT INTO annotation (object_type, object_id, annotation, creator, "
            "created) VALUES (?, ?, ?, ?, ?)",
            (object_type.value, object_id, text, creator, _now()),
        )

    def annotations(
        self,
        object_type: ObjectType,
        name: str,
        version: Optional[int] = None,
    ) -> list[Annotation]:
        conn = self._conn
        object_id = self._object_id(conn, object_type, name, version)
        rows = conn.execute(
            "SELECT annotation, creator, created FROM annotation "
            "WHERE object_type = ? AND object_id = ? ORDER BY id",
            (object_type.value, object_id),
        ).fetchall()
        return [
            Annotation(object_type, name, text, creator, created)
            for text, creator, created in rows
        ]

    # ======================================================================
    # Provenance (creation & transformation history)
    # ======================================================================

    def add_transformation(
        self, file_name: str, description: str, version: Optional[int] = None
    ) -> None:
        file = self.get_file(file_name, version)
        self._conn.execute(
            "INSERT INTO transformation (file_id, description, created) "
            "VALUES (?, ?, ?)",
            (file.id, description, _now()),
        )

    def transformations(
        self, file_name: str, version: Optional[int] = None
    ) -> list[TransformationRecord]:
        file = self.get_file(file_name, version)
        rows = self._conn.execute(
            "SELECT description, created FROM transformation WHERE file_id = ? "
            "ORDER BY id",
            (file.id,),
        ).fetchall()
        return [TransformationRecord(file_name, d, c) for d, c in rows]

    # ======================================================================
    # Audit
    # ======================================================================

    def record_audit(
        self,
        object_type: ObjectType,
        object_id: int,
        action: str,
        detail: str,
        actor: str,
        name: Optional[str] = None,
        version: Optional[int] = None,
    ) -> None:
        # ``name``/``version`` identify the object independently of its
        # database id so routing layers (repro.shard) can place the
        # record on the owning backend; a single engine ignores them.
        del name, version
        self._conn.execute(
            "INSERT INTO audit_record (object_type, object_id, action, detail, "
            "actor, created) VALUES (?, ?, ?, ?, ?, ?)",
            (object_type.value, object_id, action, detail, actor, _now()),
        )

    def audit_log(
        self,
        object_type: ObjectType,
        name: str,
        version: Optional[int] = None,
    ) -> list[AuditRecord]:
        conn = self._conn
        object_id = self._object_id(conn, object_type, name, version)
        rows = conn.execute(
            "SELECT action, detail, actor, created FROM audit_record "
            "WHERE object_type = ? AND object_id = ? ORDER BY id",
            (object_type.value, object_id),
        ).fetchall()
        return [
            AuditRecord(object_type, object_id, action, detail, actor, created)
            for action, detail, actor, created in rows
        ]

    # ======================================================================
    # Users, external catalogs
    # ======================================================================

    def register_user(self, user: UserInfo) -> None:
        try:
            self._conn.execute(
                "INSERT INTO user_info (dn, description, institution, email, phone) "
                "VALUES (?, ?, ?, ?, ?)",
                (user.dn, user.description, user.institution, user.email, user.phone),
            )
        except IntegrityError as exc:
            raise DuplicateObjectError(f"user {user.dn!r} already registered") from exc

    def get_user(self, dn: str) -> UserInfo:
        row = self._conn.execute(
            "SELECT dn, description, institution, email, phone FROM user_info "
            "WHERE dn = ?",
            (dn,),
        ).fetchone()
        if row is None:
            raise ObjectNotFoundError(f"no registered user {dn!r}")
        return UserInfo(*row)

    def register_external_catalog(self, catalog: ExternalCatalog) -> None:
        try:
            self._conn.execute(
                "INSERT INTO external_catalog (name, catalog_type, host, port, "
                "description) VALUES (?, ?, ?, ?, ?)",
                (
                    catalog.name,
                    catalog.catalog_type,
                    catalog.host,
                    catalog.port,
                    catalog.description,
                ),
            )
        except IntegrityError as exc:
            raise DuplicateObjectError(
                f"external catalog {catalog.name!r} already registered"
            ) from exc

    def list_external_catalogs(self) -> list[ExternalCatalog]:
        rows = self._conn.execute(
            "SELECT name, catalog_type, host, port, description "
            "FROM external_catalog ORDER BY name"
        ).fetchall()
        return [ExternalCatalog(*row) for row in rows]

    # ======================================================================
    # Authorization storage
    # ======================================================================

    def set_permissions(
        self,
        object_type: ObjectType,
        name: Optional[str],
        principal: str,
        permissions: Permission,
        version: Optional[int] = None,
    ) -> None:
        """Store (replace) a principal's permission bits on an object.

        ``object_type=SERVICE`` with ``name=None`` sets service-level
        permissions (e.g. who may create files at all).
        """
        conn = self._conn
        object_id = (
            0
            if object_type is ObjectType.SERVICE
            else self._object_id(conn, object_type, name or "", version)
        )
        updated = conn.execute(
            "UPDATE acl_entry SET permissions = ? WHERE object_type = ? "
            "AND object_id = ? AND principal = ?",
            (permissions.value, object_type.value, object_id, principal),
        ).rowcount
        if updated == 0:
            conn.execute(
                "INSERT INTO acl_entry (object_type, object_id, principal, "
                "permissions) VALUES (?, ?, ?, ?)",
                (object_type.value, object_id, principal, permissions.value),
            )

    def get_acl(
        self,
        object_type: ObjectType,
        name: Optional[str],
        version: Optional[int] = None,
    ) -> AccessControlList:
        conn = self._conn
        object_id = (
            0
            if object_type is ObjectType.SERVICE
            else self._object_id(conn, object_type, name or "", version)
        )
        rows = conn.execute(
            "SELECT principal, permissions FROM acl_entry WHERE object_type = ? "
            "AND object_id = ?",
            (object_type.value, object_id),
        ).fetchall()
        acl = AccessControlList()
        for principal, bits in rows:
            if principal == "*":
                acl.grant_public(Permission(bits))
            else:
                acl.entries[principal] = Permission(bits)
        return acl

    # ======================================================================
    # Statistics
    # ======================================================================

    def stats(self) -> dict[str, int]:
        conn = self._conn
        return {
            "files": conn.execute("SELECT COUNT(*) FROM logical_file").scalar(),
            "collections": conn.execute(
                "SELECT COUNT(*) FROM logical_collection"
            ).scalar(),
            "views": conn.execute("SELECT COUNT(*) FROM logical_view").scalar(),
            "attributes": conn.execute(
                "SELECT COUNT(*) FROM attribute_def"
            ).scalar(),
            "attribute_values": conn.execute(
                "SELECT COUNT(*) FROM attribute_value"
            ).scalar(),
        }

    # -- internals -------------------------------------------------------------

    def _collection_id(self, conn: Connection, name: str) -> int:
        token = self.cache.lookup_object_id(conn, "logical_collection", name, None)
        if token.hit:
            return token.value
        collection_id = conn.execute(
            "SELECT id FROM logical_collection WHERE name = ?", (name,)
        ).scalar()
        if collection_id is None:
            raise ObjectNotFoundError(f"no logical collection {name!r}")
        token.store(collection_id)
        return collection_id

    def _object_id(
        self,
        conn: Connection,
        object_type: ObjectType,
        name: str,
        version: Optional[int] = None,
    ) -> int:
        if object_type is ObjectType.COLLECTION:
            return self._collection_id(conn, name)
        if object_type is ObjectType.FILE:
            table = "logical_file"
        elif object_type is ObjectType.VIEW:
            table = "logical_view"
        else:
            raise InvalidAttributeError(f"no object id for {object_type}")
        token = self.cache.lookup_object_id(conn, table, name, version)
        if token.hit:
            return token.value
        if object_type is ObjectType.FILE:
            object_id = self.get_file(name, version).id
        else:
            object_id = self.get_view(name).id
        token.store(object_id)
        return object_id


def _file_from_row(row: tuple) -> LogicalFile:
    return LogicalFile(
        id=row[0],
        name=row[1],
        version=row[2],
        data_type=row[3],
        valid=row[4],
        collection_id=row[5],
        container_id=row[6],
        container_service=row[7],
        master_copy=row[8],
        creator=row[9],
        created=row[10],
        last_modifier=row[11],
        modified=row[12],
        audit_enabled=row[13],
    )


def _coerce_attr_value(definition: AttributeDef, value: Any) -> Any:
    """Validate/coerce a user-attribute value against its declared type."""
    import datetime as dt

    if value is None:
        return None
    vt = definition.value_type
    if vt is AttributeType.INT and isinstance(value, bool):
        raise InvalidAttributeError(
            f"attribute {definition.name!r} expects int, got bool"
        )
    if vt is AttributeType.FLOAT and isinstance(value, int) and not isinstance(value, bool):
        return float(value)
    if vt is AttributeType.DATETIME and isinstance(value, dt.date) and not isinstance(
        value, dt.datetime
    ):
        return dt.datetime(value.year, value.month, value.day)
    if vt is AttributeType.DATE and isinstance(value, dt.datetime):
        raise InvalidAttributeError(
            f"attribute {definition.name!r} expects a date, got datetime"
        )
    if not isinstance(value, vt.python_type()):
        raise InvalidAttributeError(
            f"attribute {definition.name!r} expects {vt.value}, "
            f"got {type(value).__name__}"
        )
    return value
