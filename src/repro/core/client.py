"""MCSClient: the synchronous client API (§5).

Wraps any :class:`repro.soap.transport.Transport`, so the same client code
runs in-process (DirectTransport — the paper's "without web service"
baseline) or over SOAP/HTTP (the full MCS configuration).

Every operation the paper's API section lists is exposed:

* querying the catalog for logical objects based on object attributes,
* querying static attributes of a logical object,
* querying user-defined attributes of a logical object,
* querying the contents of a logical view or collection,
* creating a logical file, collection or view,
* modifying the attributes of a logical object,
* deleting a logical file, view or collection,
* annotating a logical object,
* adding logical objects to a view.
"""

from __future__ import annotations

import datetime as _dt
from typing import Any, Optional, Sequence

from repro.core.errors import error_from_fault
from repro.core.model import ObjectType
from repro.core.query import ObjectQuery
from repro.obs.trace import span as _span
from repro.soap.envelope import SoapFault
from repro.soap.transport import DirectTransport, HttpTransport, Transport


class MCSClient:
    """Synchronous MCS client over a pluggable transport."""

    def __init__(
        self,
        transport: Transport,
        caller: Optional[str] = None,
        gsi_context: Optional["object"] = None,
        cas_assertion: Optional[dict] = None,
    ) -> None:
        self._transport = transport
        self.caller = caller
        self._gsi = gsi_context
        self._cas = cas_assertion

    # -- constructors ----------------------------------------------------------

    @classmethod
    def in_process(cls, service: "object", caller: Optional[str] = None) -> "MCSClient":
        """Bind directly to an MCSService — no SOAP, no socket."""
        return cls(DirectTransport(service.handle), caller=caller)

    @classmethod
    def connect(cls, host: str, port: int, caller: Optional[str] = None) -> "MCSClient":
        """Connect over SOAP/HTTP."""
        return cls(HttpTransport(host, port), caller=caller)

    def close(self) -> None:
        self._transport.close()

    def __enter__(self) -> "MCSClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- call plumbing -----------------------------------------------------------

    def _call(self, method: str, **args: Any) -> Any:
        if self.caller is not None:
            args.setdefault("caller", self.caller)
        if self._cas is not None:
            args.setdefault("cas", self._cas)
        if self._gsi is not None:
            from repro.core.service import canonical_payload, token_to_dict

            token = self._gsi.sign_request(canonical_payload(method, args))
            args["auth"] = token_to_dict(token)
        # Root span: mints the request id that rides the SOAP header so
        # server-side spans and logs correlate with this call.
        with _span("client.call", method=method):
            try:
                return self._transport.call(method, args)
            except SoapFault as fault:
                if fault.code.startswith("MCS."):
                    raise error_from_fault(fault.code, fault.message) from None
                raise

    # ======================================================================
    # Files
    # ======================================================================

    def create_logical_file(
        self,
        name: str,
        version: int = 1,
        data_type: Optional[str] = None,
        collection: Optional[str] = None,
        container_id: Optional[str] = None,
        container_service: Optional[str] = None,
        master_copy: Optional[str] = None,
        audit_enabled: bool = False,
        attributes: Optional[dict[str, Any]] = None,
    ) -> dict:
        """Create a logical file, optionally with user-defined attributes."""
        return self._call(
            "create_logical_file",
            name=name,
            version=version,
            data_type=data_type,
            collection=collection,
            container_id=container_id,
            container_service=container_service,
            master_copy=master_copy,
            audit_enabled=audit_enabled,
            attributes=attributes,
        )

    def get_logical_file(self, name: str, version: Optional[int] = None) -> dict:
        """Static (predefined) attributes of a logical file."""
        return self._call("get_logical_file", name=name, version=version)

    def modify_logical_file(
        self, name: str, version: Optional[int] = None, **changes: Any
    ) -> bool:
        return self._call(
            "modify_logical_file", name=name, version=version, changes=changes
        )

    def delete_logical_file(self, name: str, version: Optional[int] = None) -> bool:
        return self._call("delete_logical_file", name=name, version=version)

    def invalidate_logical_file(self, name: str, version: Optional[int] = None) -> bool:
        return self.modify_logical_file(name, version, valid=False)

    def move_file_to_collection(
        self, name: str, collection: Optional[str], version: Optional[int] = None
    ) -> bool:
        return self._call(
            "move_file_to_collection", name=name, collection=collection, version=version
        )

    def list_versions(self, name: str) -> list[int]:
        return self._call("list_versions", name=name)

    # ======================================================================
    # User-defined attributes
    # ======================================================================

    def define_attribute(
        self,
        name: str,
        value_type: str,
        object_types: Optional[Sequence[str]] = None,
        description: Optional[str] = None,
    ) -> int:
        return self._call(
            "define_attribute",
            name=name,
            value_type=value_type,
            object_types=list(object_types) if object_types else None,
            description=description,
        )

    def list_attribute_defs(self) -> list[dict]:
        return self._call("list_attribute_defs")

    def set_attributes(
        self,
        object_type: str,
        name: str,
        attributes: dict[str, Any],
        version: Optional[int] = None,
    ) -> bool:
        return self._call(
            "set_attributes",
            object_type=object_type,
            name=name,
            attributes=attributes,
            version=version,
        )

    def get_attributes(
        self, object_type: str, name: str, version: Optional[int] = None
    ) -> dict[str, Any]:
        return self._call(
            "get_attributes", object_type=object_type, name=name, version=version
        )

    def remove_attribute(
        self, object_type: str, name: str, attribute: str,
        version: Optional[int] = None,
    ) -> bool:
        return self._call(
            "remove_attribute",
            object_type=object_type,
            name=name,
            attribute=attribute,
            version=version,
        )

    # ======================================================================
    # Queries
    # ======================================================================

    def query(self, query: ObjectQuery) -> list[str]:
        """Attribute-based discovery: returns matching logical names."""
        return self._call("query", query=_query_to_dict(query))

    def query_files_by_attributes(self, conditions: dict[str, Any]) -> list[str]:
        """Conjunctive equality query on user-defined attributes."""
        return self._call("query_files_by_attributes", conditions=conditions)

    def simple_query(self, field: str, value: Any) -> list[str]:
        """The paper's 'simple query': value match on one static attribute."""
        query = ObjectQuery().where_field(field, "=", value)
        return self.query(query)

    def explain_query(self, query: ObjectQuery) -> list[str]:
        """The physical plan the query would execute (one line per step)."""
        return self._call("explain_query", query=_query_to_dict(query))

    # ======================================================================
    # Collections
    # ======================================================================

    def create_collection(
        self,
        name: str,
        parent: Optional[str] = None,
        description: Optional[str] = None,
        audit_enabled: bool = False,
        attributes: Optional[dict[str, Any]] = None,
    ) -> int:
        return self._call(
            "create_collection",
            name=name,
            parent=parent,
            description=description,
            audit_enabled=audit_enabled,
            attributes=attributes,
        )

    def delete_collection(self, name: str) -> bool:
        return self._call("delete_collection", name=name)

    def list_collection(self, name: str) -> list[str]:
        return self._call("list_collection", name=name)

    def list_subcollections(self, name: str) -> list[str]:
        return self._call("list_subcollections", name=name)

    def set_collection_parent(self, name: str, parent: Optional[str]) -> bool:
        return self._call("set_collection_parent", name=name, parent=parent)

    # ======================================================================
    # Views
    # ======================================================================

    def create_view(
        self,
        name: str,
        description: Optional[str] = None,
        audit_enabled: bool = False,
        attributes: Optional[dict[str, Any]] = None,
    ) -> int:
        return self._call(
            "create_view",
            name=name,
            description=description,
            audit_enabled=audit_enabled,
            attributes=attributes,
        )

    def delete_view(self, name: str) -> bool:
        return self._call("delete_view", name=name)

    def add_to_view(
        self,
        view: str,
        files: Sequence[str] = (),
        collections: Sequence[str] = (),
        views: Sequence[str] = (),
    ) -> bool:
        return self._call(
            "add_to_view",
            view=view,
            files=list(files),
            collections=list(collections),
            views=list(views),
        )

    def remove_from_view(
        self,
        view: str,
        files: Sequence[str] = (),
        collections: Sequence[str] = (),
        views: Sequence[str] = (),
    ) -> bool:
        return self._call(
            "remove_from_view",
            view=view,
            files=list(files),
            collections=list(collections),
            views=list(views),
        )

    def list_view(self, name: str) -> list[dict]:
        return self._call("list_view", name=name)

    # ======================================================================
    # Annotations, provenance, audit
    # ======================================================================

    def annotate(
        self, object_type: str, name: str, text: str, version: Optional[int] = None
    ) -> bool:
        return self._call(
            "annotate", object_type=object_type, name=name, text=text, version=version
        )

    def get_annotations(
        self, object_type: str, name: str, version: Optional[int] = None
    ) -> list[dict]:
        return self._call(
            "get_annotations", object_type=object_type, name=name, version=version
        )

    def add_transformation(
        self, name: str, description: str, version: Optional[int] = None
    ) -> bool:
        return self._call(
            "add_transformation", name=name, description=description, version=version
        )

    def get_transformations(
        self, name: str, version: Optional[int] = None
    ) -> list[dict]:
        return self._call("get_transformations", name=name, version=version)

    def audit_log(
        self, object_type: str, name: str, version: Optional[int] = None
    ) -> list[dict]:
        return self._call(
            "audit_log", object_type=object_type, name=name, version=version
        )

    # ======================================================================
    # Users, catalogs, permissions, misc
    # ======================================================================

    def register_user(
        self,
        dn: str,
        description: str = "",
        institution: str = "",
        email: str = "",
        phone: str = "",
    ) -> bool:
        return self._call(
            "register_user",
            dn=dn,
            description=description,
            institution=institution,
            email=email,
            phone=phone,
        )

    def get_user(self, dn: str) -> dict:
        return self._call("get_user", dn=dn)

    def register_external_catalog(
        self, name: str, catalog_type: str, host: str, port: int, description: str = ""
    ) -> bool:
        return self._call(
            "register_external_catalog",
            name=name,
            catalog_type=catalog_type,
            host=host,
            port=port,
            description=description,
        )

    def list_external_catalogs(self) -> list[dict]:
        return self._call("list_external_catalogs")

    def set_permissions(
        self,
        object_type: str,
        name: Optional[str],
        principal: str,
        permissions: Sequence[str],
    ) -> bool:
        return self._call(
            "set_permissions",
            object_type=object_type,
            name=name,
            principal=principal,
            permissions=list(permissions),
        )

    def get_permissions(self, object_type: str, name: Optional[str] = None) -> dict:
        return self._call("get_permissions", object_type=object_type, name=name)

    def stats(self) -> dict:
        return self._call("stats")

    def ping(self) -> str:
        return self._call("ping")


def _query_to_dict(query: ObjectQuery) -> dict:
    return {
        "object_type": query.object_type.value,
        "conditions": [
            {"attribute": c.attribute, "op": c.op, "value": _encode_cond_value(c.value)}
            for c in query.conditions
        ],
        "predefined": [
            {"attribute": c.attribute, "op": c.op, "value": _encode_cond_value(c.value)}
            for c in query.predefined
        ],
        "collection": query.collection,
        "valid_only": query.valid_only,
        "limit": query.limit,
    }


def _encode_cond_value(value: Any) -> Any:
    if isinstance(value, tuple):
        return list(value)
    return value
