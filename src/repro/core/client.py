"""MCSClient: the synchronous client API (§5).

Wraps any :class:`repro.soap.transport.Transport`, so the same client code
runs in-process (DirectTransport — the paper's "without web service"
baseline) or over SOAP/HTTP (the full MCS configuration).

Every operation the paper's API section lists is exposed:

* querying the catalog for logical objects based on object attributes,
* querying static attributes of a logical object,
* querying user-defined attributes of a logical object,
* querying the contents of a logical view or collection,
* creating a logical file, collection or view,
* modifying the attributes of a logical object,
* deleting a logical file, view or collection,
* annotating a logical object,
* adding logical objects to a view.
"""

from __future__ import annotations

import datetime as _dt
import warnings
from dataclasses import dataclass, replace as _dc_replace
from typing import Any, Optional, Sequence

from repro.core.errors import exception_from_fault
from repro.core.model import AttributeDef, ObjectType
from repro.core.query import ObjectQuery
from repro.obs.trace import span as _span
from repro.soap.envelope import BulkItem, SoapFault
from repro.soap.transport import DirectTransport, HttpTransport, Transport

#: Wire methods that are idempotent reads.  The resilience layer retries
#: these freely; anything not listed is treated as a write and only
#: retried under a server-deduplicated idempotency token.
READ_METHODS = frozenset(
    {
        "audit_log",
        "explain_query",
        "get_annotations",
        "get_attributes",
        "get_logical_file",
        "get_permissions",
        "get_transformations",
        "get_user",
        "list_attribute_defs",
        "list_collection",
        "list_external_catalogs",
        "list_subcollections",
        "list_versions",
        "list_view",
        "ping",
        "query",
        "query_mql",
        "explain_mql",
        "query_files_by_attributes",
        "simple_query",
        "stats",
        "bulk_query",
    }
)


def is_read_method(method: str) -> bool:
    """True for idempotent (freely retryable) wire methods."""
    return method in READ_METHODS


@dataclass(frozen=True)
class ClientConfig:
    """Everything about how a client talks to a catalog, in one value.

    Both client flavors consume the same config —
    ``MCSClient.connect(host, port, ClientConfig(...))`` and
    ``AsyncMCSClient.connect(host, port, ClientConfig(...))`` — so a
    deployment describes its retry/deadline/breaker posture once and
    hands it to whichever client a call site needs.  The resilience trio
    (``retry_policy``/``deadline_s``/``breaker``) is interpreted exactly
    as the old per-kwarg API did: configuring any of them wraps the
    transport in a resilient layer where reads retry freely and writes
    retry under a server-deduplicated idempotency token.

    ``pool_size`` sizes the async transport's keep-alive connection
    pool; the sync transport holds a single pooled connection and
    ignores it.  Instances are frozen — derive variants with
    :meth:`with_options`.
    """

    caller: Optional[str] = None
    retry_policy: Optional[object] = None
    deadline_s: Optional[float] = None
    breaker: Optional[object] = None
    pool_size: int = 2
    timeout_s: float = 30.0
    simulated_latency_s: float = 0.0

    def with_options(self, **changes: Any) -> "ClientConfig":
        """A copy with the given fields replaced."""
        return _dc_replace(self, **changes)

    @property
    def resilient(self) -> bool:
        return (
            self.retry_policy is not None
            or self.deadline_s is not None
            or self.breaker is not None
        )


def _resolve_config(
    config: Optional["ClientConfig | str"],
    caller: Optional[str],
    retry_policy: Optional[object],
    deadline_s: Optional[float],
    breaker: Optional[object],
) -> ClientConfig:
    """Fold the legacy per-kwarg surface into one :class:`ClientConfig`.

    The resilience trio keeps working but warns: it predates
    ``ClientConfig`` and every new option would have meant another
    kwarg copied across four constructors.  ``caller=`` alone stays a
    silently-supported convenience — identity is per-client-instance in
    a way retry posture is not.
    """
    if isinstance(config, str):
        # Positional caller from the pre-config signature
        # (``connect(host, port, "cn=...")``).
        warnings.warn(
            "passing caller positionally is deprecated; use "
            "connect(host, port, caller=...) or ClientConfig(caller=...)",
            DeprecationWarning,
            stacklevel=3,
        )
        config = ClientConfig(caller=config)
    if retry_policy is not None or deadline_s is not None or breaker is not None:
        warnings.warn(
            "the retry_policy=/deadline_s=/breaker= kwargs are deprecated; "
            "pass ClientConfig(retry_policy=..., deadline_s=..., breaker=...)",
            DeprecationWarning,
            stacklevel=3,
        )
    if config is None:
        return ClientConfig(
            caller=caller,
            retry_policy=retry_policy,
            deadline_s=deadline_s,
            breaker=breaker,
        )
    changes: dict[str, Any] = {}
    if caller is not None:
        changes["caller"] = caller
    if retry_policy is not None:
        changes["retry_policy"] = retry_policy
    if deadline_s is not None:
        changes["deadline_s"] = deadline_s
    if breaker is not None:
        changes["breaker"] = breaker
    return config.with_options(**changes) if changes else config


def _wrap_resilient(
    transport: Transport,
    endpoint: str,
    retry_policy: Optional[object],
    deadline_s: Optional[float],
    breaker: Optional[object],
) -> Transport:
    if retry_policy is None and deadline_s is None and breaker is None:
        return transport
    from repro.resilience.transport import ResilientTransport

    return ResilientTransport(
        transport,
        policy=retry_policy,  # type: ignore[arg-type]
        breaker=breaker,  # type: ignore[arg-type]
        endpoint=endpoint,
        is_idempotent=is_read_method,
        deadline_s=deadline_s,
    )


class BulkResult:
    """Deferred outcome of one operation queued on :meth:`MCSClient.bulk`.

    Resolves when the pipeline flushes; until then every accessor raises.
    """

    __slots__ = ("method", "_resolved", "_result", "_error")

    def __init__(self, method: str) -> None:
        self.method = method
        self._resolved = False
        self._result: Any = None
        self._error: Optional[Exception] = None

    def _resolve(self, item: BulkItem) -> None:
        self._resolved = True
        if item.ok:
            self._result = item.result
        else:
            fault = item.fault
            assert fault is not None
            self._error = exception_from_fault(fault.code, fault.message) or fault

    def _require_resolved(self) -> None:
        if not self._resolved:
            raise RuntimeError(
                f"bulk operation {self.method!r} not flushed yet; "
                "exit the bulk() context or call flush()"
            )

    @property
    def ok(self) -> bool:
        self._require_resolved()
        return self._error is None

    @property
    def error(self) -> Optional[Exception]:
        self._require_resolved()
        return self._error

    @property
    def result(self) -> Any:
        return self.unwrap()

    def unwrap(self) -> Any:
        """The operation's return value; raises its error if it failed."""
        self._require_resolved()
        if self._error is not None:
            raise self._error
        return self._result


class BulkContext:
    """Pipelines queued operations into one ``<BulkRequest>`` round trip.

    Usage::

        with client.bulk() as batch:
            handles = [batch.call("create_logical_file", name=n)
                       for n in names]
        ids = [h.result["id"] for h in handles]

    Queued operations run server-side in order with per-item fault
    isolation (one bad item does not poison the rest); atomicity across
    items is the explicit ``bulk_*`` APIs' job, not this pipeline's.
    """

    def __init__(self, client: "MCSClient") -> None:
        self._client = client
        self._ops: list[tuple[str, dict[str, Any]]] = []
        self._pending: list[BulkResult] = []

    def call(self, method: str, **args: Any) -> BulkResult:
        """Queue one operation; returns a handle resolved at flush."""
        handle = BulkResult(method)
        self._ops.append((method, self._client._stamp(method, args)))
        self._pending.append(handle)
        return handle

    def flush(self) -> list[BulkResult]:
        """Send queued operations in one round trip; resolve handles."""
        if not self._ops:
            return []
        ops, handles = self._ops, self._pending
        self._ops, self._pending = [], []
        with _span("client.call_bulk", n=str(len(ops))):
            items = self._client._transport.call_bulk(ops)
        for handle, item in zip(handles, items):
            handle._resolve(item)
        return handles

    def __len__(self) -> int:
        return len(self._ops)

    def __enter__(self) -> "BulkContext":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if exc_type is None:
            self.flush()


class MCSClient:
    """Synchronous MCS client over a pluggable transport."""

    def __init__(
        self,
        transport: Transport,
        caller: Optional[str] = None,
        gsi_context: Optional["object"] = None,
        cas_assertion: Optional[dict] = None,
    ) -> None:
        self._transport = transport
        self.caller = caller
        self._gsi = gsi_context
        self._cas = cas_assertion

    # -- constructors ----------------------------------------------------------

    @classmethod
    def in_process(
        cls,
        service: "object",
        config: Optional["ClientConfig | str"] = None,
        *,
        caller: Optional[str] = None,
        retry_policy: Optional[object] = None,
        deadline_s: Optional[float] = None,
        breaker: Optional[object] = None,
    ) -> "MCSClient":
        """Bind directly to an MCSService — no SOAP, no socket.

        Resilience options mirror :meth:`connect`; useful under fault
        injection, where even in-process calls can fail.
        """
        cfg = _resolve_config(config, caller, retry_policy, deadline_s, breaker)
        transport = _wrap_resilient(
            DirectTransport(service.handle),
            "inproc",
            cfg.retry_policy,
            cfg.deadline_s,
            cfg.breaker,
        )
        return cls(transport, caller=cfg.caller)

    @classmethod
    def connect(
        cls,
        host: str,
        port: int,
        config: Optional["ClientConfig | str"] = None,
        *,
        caller: Optional[str] = None,
        retry_policy: Optional[object] = None,
        deadline_s: Optional[float] = None,
        breaker: Optional[object] = None,
    ) -> "MCSClient":
        """Connect over SOAP/HTTP.

        All construction options travel in one :class:`ClientConfig`:
        ``retry_policy`` (a :class:`repro.resilience.RetryPolicy`),
        ``deadline_s`` (a per-call time budget, propagated to the server
        via the SOAP ``Deadline`` header) or ``breaker`` (a shared
        :class:`repro.resilience.CircuitBreaker`) wrap the HTTP transport
        in a :class:`~repro.resilience.transport.ResilientTransport`:
        reads retry freely, writes retry under an idempotency token the
        server deduplicates on.  The legacy per-kwarg resilience options
        still work but emit :class:`DeprecationWarning`.
        """
        cfg = _resolve_config(config, caller, retry_policy, deadline_s, breaker)
        transport = _wrap_resilient(
            HttpTransport(
                host,
                port,
                timeout=cfg.timeout_s,
                simulated_latency_s=cfg.simulated_latency_s,
            ),
            f"{host}:{port}",
            cfg.retry_policy,
            cfg.deadline_s,
            cfg.breaker,
        )
        return cls(transport, caller=cfg.caller)

    def close(self) -> None:
        self._transport.close()

    def __enter__(self) -> "MCSClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- call plumbing -----------------------------------------------------------

    def _stamp(self, method: str, args: dict[str, Any]) -> dict[str, Any]:
        """Attach caller identity / CAS / GSI credentials to a request."""
        if self.caller is not None:
            args.setdefault("caller", self.caller)
        if self._cas is not None:
            args.setdefault("cas", self._cas)
        if self._gsi is not None:
            from repro.core.service import canonical_payload, token_to_dict

            token = self._gsi.sign_request(canonical_payload(method, args))
            args["auth"] = token_to_dict(token)
        return args

    def _call(self, method: str, **args: Any) -> Any:
        args = self._stamp(method, args)
        # Root span: mints the request id that rides the SOAP header so
        # server-side spans and logs correlate with this call.
        with _span("client.call", method=method):
            try:
                return self._transport.call(method, args)
            except SoapFault as fault:
                error = exception_from_fault(fault.code, fault.message)
                if error is not None:
                    raise error from None
                raise

    # -- bulk pipeline -----------------------------------------------------------

    def bulk(self) -> BulkContext:
        """Open a pipelined batch: queue calls, flush in one round trip."""
        return BulkContext(self)

    # ======================================================================
    # Files
    # ======================================================================

    def create_logical_file(
        self,
        name: str,
        version: int = 1,
        data_type: Optional[str] = None,
        collection: Optional[str] = None,
        container_id: Optional[str] = None,
        container_service: Optional[str] = None,
        master_copy: Optional[str] = None,
        audit_enabled: bool = False,
        attributes: Optional[dict[str, Any]] = None,
    ) -> dict:
        """Create a logical file, optionally with user-defined attributes."""
        return self._call(
            "create_logical_file",
            name=name,
            version=version,
            data_type=data_type,
            collection=collection,
            container_id=container_id,
            container_service=container_service,
            master_copy=master_copy,
            audit_enabled=audit_enabled,
            attributes=attributes,
        )

    def get_logical_file(self, name: str, version: Optional[int] = None) -> dict:
        """Static (predefined) attributes of a logical file."""
        return self._call("get_logical_file", name=name, version=version)

    def modify_logical_file(
        self, name: str, version: Optional[int] = None, **changes: Any
    ) -> bool:
        return self._call(
            "modify_logical_file", name=name, version=version, changes=changes
        )

    def delete_logical_file(self, name: str, version: Optional[int] = None) -> bool:
        return self._call("delete_logical_file", name=name, version=version)

    def invalidate_logical_file(self, name: str, version: Optional[int] = None) -> bool:
        return self.modify_logical_file(name, version, valid=False)

    def move_file_to_collection(
        self, name: str, collection: Optional[str], version: Optional[int] = None
    ) -> bool:
        return self._call(
            "move_file_to_collection", name=name, collection=collection, version=version
        )

    def list_versions(self, name: str) -> list[int]:
        return self._call("list_versions", name=name)

    # ======================================================================
    # Bulk operations (single transaction server-side)
    # ======================================================================

    def bulk_create_files(
        self, entries: Sequence[dict[str, Any]], atomic: bool = True
    ) -> dict:
        """Create many files in one call and one server transaction.

        Each entry holds :meth:`create_logical_file` keyword arguments.
        Returns ``{"items": [...], "ok": n}`` with one wire item per
        entry; with ``atomic=True`` any failure raises instead (nothing
        committed).
        """
        return self._call(
            "bulk_create_files", entries=list(entries), atomic=atomic
        )

    def bulk_set_attributes(
        self, items: Sequence[dict[str, Any]], atomic: bool = True
    ) -> dict:
        """Set attributes on many objects in one call and transaction."""
        return self._call("bulk_set_attributes", items=list(items), atomic=atomic)

    def bulk_query(self, queries: Sequence[ObjectQuery | dict]) -> dict:
        """Run many discovery queries in one round trip."""
        wire = [
            _query_to_dict(q) if isinstance(q, ObjectQuery) else q
            for q in queries
        ]
        return self._call("bulk_query", queries=wire)

    # ======================================================================
    # User-defined attributes
    # ======================================================================

    def define_attribute(
        self,
        name: str,
        value_type: str,
        object_types: Optional[Sequence[str]] = None,
        description: Optional[str] = None,
    ) -> int:
        return self._call(
            "define_attribute",
            name=name,
            value_type=value_type,
            object_types=list(object_types) if object_types else None,
            description=description,
        )

    def list_attribute_defs(self) -> list[AttributeDef]:
        """All user-defined attributes, as typed :class:`AttributeDef` records.

        The wire carries :meth:`AttributeDef.to_dict` dicts; this rebuilds
        the dataclasses so callers see the same shape the catalog returns.
        """
        return [
            AttributeDef.from_dict(d) for d in self._call("list_attribute_defs")
        ]

    def set_attributes(
        self,
        object_type: str,
        name: str,
        attributes: dict[str, Any],
        version: Optional[int] = None,
    ) -> bool:
        return self._call(
            "set_attributes",
            object_type=object_type,
            name=name,
            attributes=attributes,
            version=version,
        )

    def get_attributes(
        self, object_type: str, name: str, version: Optional[int] = None
    ) -> dict[str, Any]:
        """Return the object's user-defined attributes as ``{name: value}``.

        Values are typed per the attribute definitions (the SOAP codec
        round-trips dates/times), so the direct and HTTP transports
        return the same shapes.
        """
        return self._call(
            "get_attributes", object_type=object_type, name=name, version=version
        )

    def remove_attribute(
        self, object_type: str, name: str, attribute: str,
        version: Optional[int] = None,
    ) -> bool:
        return self._call(
            "remove_attribute",
            object_type=object_type,
            name=name,
            attribute=attribute,
            version=version,
        )

    # ======================================================================
    # Queries
    # ======================================================================

    def query(self, query: ObjectQuery) -> list[str]:
        """Attribute-based discovery: returns matching logical names."""
        return self._call("query", query=_query_to_dict(query))

    def query_files_by_attributes(self, conditions: dict[str, Any]) -> list[str]:
        """Deprecated: conjunctive equality query on user-defined attributes.

        Thin shim over :meth:`query`; build an :class:`ObjectQuery` instead.
        """
        warnings.warn(
            "MCSClient.query_files_by_attributes is deprecated; build an "
            "ObjectQuery and call query()",
            DeprecationWarning,
            stacklevel=2,
        )
        query = ObjectQuery()
        for name, value in conditions.items():
            query.where(name, "=", value)
        return self.query(query)

    def simple_query(self, field: str, value: Any) -> list[str]:
        """Deprecated: the paper's 'simple query' on one static attribute.

        Thin shim over :meth:`query`; use
        ``query(ObjectQuery().where_field(field, "=", value))`` instead.
        """
        warnings.warn(
            "MCSClient.simple_query is deprecated; build an ObjectQuery "
            "and call query()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.query(ObjectQuery().where_field(field, "=", value))

    def explain_query(self, query: ObjectQuery) -> list[str]:
        """The physical plan the query would execute (one line per step)."""
        return self._call("explain_query", query=_query_to_dict(query))

    def query_mql(self, text: str) -> list[str]:
        """Run one MQL statement, e.g. ``files where run = 7 limit 10``.

        The full language (dataset algebra included) is documented in
        INTERNALS.md; syntax errors raise :class:`repro.core.errors.QueryError`
        subclasses carrying line/column and a caret snippet.
        """
        return self._call("query_mql", text=text)

    def explain_mql(self, text: str) -> list[str]:
        """Strategy choice, cost model and algebra for an MQL statement."""
        return self._call("explain_mql", text=text)

    def analyze_attributes(self) -> int:
        """Recompute MQL planner statistics exactly (like SQL ANALYZE)."""
        return self._call("analyze_attributes")

    # ======================================================================
    # Collections
    # ======================================================================

    def create_collection(
        self,
        name: str,
        parent: Optional[str] = None,
        description: Optional[str] = None,
        audit_enabled: bool = False,
        attributes: Optional[dict[str, Any]] = None,
    ) -> int:
        return self._call(
            "create_collection",
            name=name,
            parent=parent,
            description=description,
            audit_enabled=audit_enabled,
            attributes=attributes,
        )

    def delete_collection(self, name: str) -> bool:
        return self._call("delete_collection", name=name)

    def list_collection(self, name: str) -> list[str]:
        return self._call("list_collection", name=name)

    def list_subcollections(self, name: str) -> list[str]:
        return self._call("list_subcollections", name=name)

    def set_collection_parent(self, name: str, parent: Optional[str]) -> bool:
        return self._call("set_collection_parent", name=name, parent=parent)

    # ======================================================================
    # Views
    # ======================================================================

    def create_view(
        self,
        name: str,
        description: Optional[str] = None,
        audit_enabled: bool = False,
        attributes: Optional[dict[str, Any]] = None,
    ) -> int:
        return self._call(
            "create_view",
            name=name,
            description=description,
            audit_enabled=audit_enabled,
            attributes=attributes,
        )

    def delete_view(self, name: str) -> bool:
        return self._call("delete_view", name=name)

    def add_to_view(
        self,
        view: str,
        files: Sequence[str] = (),
        collections: Sequence[str] = (),
        views: Sequence[str] = (),
    ) -> bool:
        return self._call(
            "add_to_view",
            view=view,
            files=list(files),
            collections=list(collections),
            views=list(views),
        )

    def remove_from_view(
        self,
        view: str,
        files: Sequence[str] = (),
        collections: Sequence[str] = (),
        views: Sequence[str] = (),
    ) -> bool:
        return self._call(
            "remove_from_view",
            view=view,
            files=list(files),
            collections=list(collections),
            views=list(views),
        )

    def list_view(self, name: str) -> list[dict]:
        return self._call("list_view", name=name)

    # ======================================================================
    # Annotations, provenance, audit
    # ======================================================================

    def annotate(
        self, object_type: str, name: str, text: str, version: Optional[int] = None
    ) -> bool:
        return self._call(
            "annotate", object_type=object_type, name=name, text=text, version=version
        )

    def get_annotations(
        self, object_type: str, name: str, version: Optional[int] = None
    ) -> list[dict]:
        return self._call(
            "get_annotations", object_type=object_type, name=name, version=version
        )

    def add_transformation(
        self, name: str, description: str, version: Optional[int] = None
    ) -> bool:
        return self._call(
            "add_transformation", name=name, description=description, version=version
        )

    def get_transformations(
        self, name: str, version: Optional[int] = None
    ) -> list[dict]:
        return self._call("get_transformations", name=name, version=version)

    def audit_log(
        self, object_type: str, name: str, version: Optional[int] = None
    ) -> list[dict]:
        return self._call(
            "audit_log", object_type=object_type, name=name, version=version
        )

    # ======================================================================
    # Users, catalogs, permissions, misc
    # ======================================================================

    def register_user(
        self,
        dn: str,
        description: str = "",
        institution: str = "",
        email: str = "",
        phone: str = "",
    ) -> bool:
        return self._call(
            "register_user",
            dn=dn,
            description=description,
            institution=institution,
            email=email,
            phone=phone,
        )

    def get_user(self, dn: str) -> dict:
        return self._call("get_user", dn=dn)

    def register_external_catalog(
        self, name: str, catalog_type: str, host: str, port: int, description: str = ""
    ) -> bool:
        return self._call(
            "register_external_catalog",
            name=name,
            catalog_type=catalog_type,
            host=host,
            port=port,
            description=description,
        )

    def list_external_catalogs(self) -> list[dict]:
        return self._call("list_external_catalogs")

    def set_permissions(
        self,
        object_type: str,
        name: Optional[str],
        principal: str,
        permissions: Sequence[str],
    ) -> bool:
        return self._call(
            "set_permissions",
            object_type=object_type,
            name=name,
            principal=principal,
            permissions=list(permissions),
        )

    def get_permissions(self, object_type: str, name: Optional[str] = None) -> dict:
        return self._call("get_permissions", object_type=object_type, name=name)

    def stats(self) -> dict:
        return self._call("stats")

    def ping(self) -> str:
        return self._call("ping")


def _query_to_dict(query: ObjectQuery) -> dict:
    return {
        "object_type": query.object_type.value,
        "conditions": [
            {"attribute": c.attribute, "op": c.op, "value": _encode_cond_value(c.value)}
            for c in query.conditions
        ],
        "predefined": [
            {"attribute": c.attribute, "op": c.op, "value": _encode_cond_value(c.value)}
            for c in query.predefined
        ],
        "collection": query.collection,
        "valid_only": query.valid_only,
        "limit": query.max_results,
        "offset": query.skip_results,
        "order_by": list(query.order) if query.order is not None else None,
    }


def _encode_cond_value(value: Any) -> Any:
    if isinstance(value, tuple):
        return list(value)
    return value
