"""Attribute-based query model → SQL translation.

The paper's MCS client "issues queries using the MySQL query language to
the MySQL relational database backend"; the MCS server converts API-level
attribute queries into SQL.  :class:`ObjectQuery` is that API-level form:

* conditions on *predefined* attributes (data type, creator, validity,
  collection membership, name patterns) become WHERE clauses on the
  object table;
* each condition on a *user-defined* attribute adds one join against the
  EAV ``attribute_value`` table — the physical shape whose cost the
  paper's "complex query" experiments (Figures 7, 10, 11) characterize.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from repro.core.errors import QueryError
from repro.core.model import AttributeType, ObjectType

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.catalog import MetadataCatalog

_OPS = ("=", "!=", "<", "<=", ">", ">=", "like", "between")

_PREDEFINED_FILE_FIELDS = {
    "name": "name",
    "version": "version",
    "data_type": "data_type",
    "valid": "valid",
    "creator": "creator",
    "last_modifier": "last_modifier",
    "container_id": "container_id",
    "master_copy": "master_copy",
}

_OBJECT_TABLE = {
    ObjectType.FILE: "logical_file",
    ObjectType.COLLECTION: "logical_collection",
    ObjectType.VIEW: "logical_view",
}


@dataclass(frozen=True)
class AttributeCondition:
    """One predicate: ``<attribute> <op> <value>``.

    ``op`` is one of ``= != < <= > >= like between``; for ``between`` the
    value must be a 2-sequence (low, high).
    """

    attribute: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise QueryError(f"unsupported operator {self.op!r}")
        if self.op == "between":
            try:
                low, high = self.value
            except (TypeError, ValueError):
                raise QueryError("between requires a (low, high) pair") from None


@dataclass
class ObjectQuery:
    """A conjunctive attribute query over one object type.

    The single client-facing query entry point.  Build it fluently::

        ObjectQuery().where("experiment", "=", "pulsar") \\
                     .where_field("data_type", "=", "binary") \\
                     .order_by("name").limit(50).offset(100)

    ``limit``/``offset``/``order_by`` thread through the SOAP envelope
    and into the generated SQL, so pagination happens server-side.
    """

    object_type: ObjectType = ObjectType.FILE
    conditions: list[AttributeCondition] = field(default_factory=list)
    predefined: list[AttributeCondition] = field(default_factory=list)
    collection: Optional[str] = None
    valid_only: bool = False
    max_results: Optional[int] = None
    skip_results: Optional[int] = None
    order: Optional[tuple[str, bool]] = None  # (predefined field, descending)

    def where(self, attribute: str, op: str, value: Any) -> "ObjectQuery":
        """Fluent helper: add a user-attribute condition."""
        self.conditions.append(AttributeCondition(attribute, op, value))
        return self

    def where_field(self, fieldname: str, op: str, value: Any) -> "ObjectQuery":
        """Fluent helper: add a predefined-attribute condition."""
        self.predefined.append(AttributeCondition(fieldname, op, value))
        return self

    def limit(self, n: Optional[int]) -> "ObjectQuery":
        """Return at most *n* names (``None`` clears the limit)."""
        if n is not None and int(n) < 0:
            raise QueryError("limit must be non-negative")
        self.max_results = None if n is None else int(n)
        return self

    def offset(self, n: Optional[int]) -> "ObjectQuery":
        """Skip the first *n* names (``None`` clears the offset).

        Pair with :meth:`order_by` for stable pagination — without an
        order the engine's row order is unspecified.
        """
        if n is not None and int(n) < 0:
            raise QueryError("offset must be non-negative")
        self.skip_results = None if n is None else int(n)
        return self

    def order_by(self, fieldname: str, descending: bool = False) -> "ObjectQuery":
        """Order results by a predefined field (e.g. ``name``)."""
        # Validate eagerly so a bad field fails at build time, not in to_sql.
        _predefined_column(self.object_type, fieldname)
        self.order = (fieldname, bool(descending))
        return self

    def touched_tables(self) -> tuple[str, ...]:
        """Tables this query's result depends on (sorted, deduplicated).

        The compiled SQL embeds attribute-definition ids and the resolved
        collection id, so those tables count as dependencies whenever the
        query references them — the read-cache invalidation contract.
        """
        tables = {_OBJECT_TABLE[self.object_type]}
        if self.conditions:
            tables.add("attribute_value")
            tables.add("attribute_def")
        if self.collection is not None:
            tables.add("logical_collection")
        return tuple(sorted(tables))

    # -- SQL generation -----------------------------------------------------

    def to_sql(
        self, catalog: "MetadataCatalog", select_key: bool = False
    ) -> tuple[str, tuple]:
        """Translate to (sql, params).

        Join order matters for the physical plan: the first user-attribute
        condition is the base table (its (attr_id, value) index supplies
        the candidate set); the object table and remaining attribute
        conditions join against it.

        ``select_key=True`` also selects the ``order_by`` column, so a
        scatter/gather router can k-way merge per-shard streams on the
        sort key.  (With DISTINCT the result is distinct over the
        *(name, key)* pair — identical to name-distinct unless versions
        of one name differ in the key column.)
        """
        table = _OBJECT_TABLE[self.object_type]
        select_cols = "obj.name"
        if select_key and self.order is not None:
            order_col = _predefined_column(self.object_type, self.order[0])
            select_cols = f"obj.name, obj.{order_col}"
        # Placeholders bind by lexical position, so parameters are collected
        # in textual order: JOIN clauses first, then the WHERE clause.
        join_params: list[Any] = []
        where_params: list[Any] = []
        joins: list[str] = []
        wheres: list[str] = []

        attr_infos = []
        for condition in self.conditions:
            definition = catalog.get_attribute_def(condition.attribute)
            if self.object_type not in definition.object_types:
                raise QueryError(
                    f"attribute {condition.attribute!r} does not apply to "
                    f"{self.object_type.value}s"
                )
            attr_infos.append((condition, definition))

        if attr_infos:
            first_cond, first_def = attr_infos[0]
            sql = [f"SELECT DISTINCT {select_cols} FROM attribute_value a0"]
            wheres.append("a0.attr_id = ?")
            where_params.append(first_def.id)
            wheres.append("a0.object_type = ?")
            where_params.append(self.object_type.value)
            clause, cond_params = _condition_sql(
                "a0", first_def.value_type, first_cond
            )
            wheres.append(clause)
            where_params.extend(cond_params)
            joins.append(f"JOIN {table} obj ON obj.id = a0.object_id")
            for pos, (condition, definition) in enumerate(attr_infos[1:], start=1):
                alias = f"a{pos}"
                clause, cond_params = _condition_sql(
                    alias, definition.value_type, condition
                )
                joins.append(
                    f"JOIN attribute_value {alias} ON {alias}.object_type = ? "
                    f"AND {alias}.object_id = obj.id AND {alias}.attr_id = ? "
                    f"AND {clause}"
                )
                join_params.append(self.object_type.value)
                join_params.append(definition.id)
                join_params.extend(cond_params)
        else:
            sql = [f"SELECT {select_cols} FROM {table} obj"]

        for condition in self.predefined:
            column = _predefined_column(self.object_type, condition.attribute)
            clause, cond_params = _plain_condition_sql(f"obj.{column}", condition)
            wheres.append(clause)
            where_params.extend(cond_params)

        if self.collection is not None:
            if self.object_type is not ObjectType.FILE:
                raise QueryError("collection filter applies only to file queries")
            collection_id = catalog.get_collection(self.collection).id
            wheres.append("obj.collection_id = ?")
            where_params.append(collection_id)

        if self.valid_only:
            if self.object_type is not ObjectType.FILE:
                raise QueryError("valid_only applies only to file queries")
            wheres.append("obj.valid = ?")
            where_params.append(True)

        text = " ".join(sql + joins)
        if wheres:
            text += " WHERE " + " AND ".join(wheres)
        if self.order is not None:
            fieldname, descending = self.order
            column = _predefined_column(self.object_type, fieldname)
            text += f" ORDER BY obj.{column}{' DESC' if descending else ''}"
        if self.max_results is not None:
            text += f" LIMIT {int(self.max_results)}"
        elif self.skip_results is not None:
            # The grammar only accepts OFFSET after LIMIT; an explicit
            # huge limit expresses "no limit, skip n".
            text += f" LIMIT {2 ** 62}"
        if self.skip_results is not None:
            text += f" OFFSET {int(self.skip_results)}"
        return text, tuple(join_params + where_params)


def _condition_sql(
    alias: str, value_type: AttributeType, condition: AttributeCondition
) -> tuple[str, list]:
    column = f"{alias}.{value_type.value_column}"
    return _plain_condition_sql(column, condition)


def _plain_condition_sql(column: str, condition: AttributeCondition) -> tuple[str, list]:
    if condition.op == "between":
        low, high = condition.value
        return f"{column} BETWEEN ? AND ?", [low, high]
    if condition.op == "like":
        return f"{column} LIKE ?", [condition.value]
    return f"{column} {condition.op} ?", [condition.value]


def _predefined_column(object_type: ObjectType, fieldname: str) -> str:
    if object_type is ObjectType.FILE:
        allowed = _PREDEFINED_FILE_FIELDS
    else:
        allowed = {"name": "name", "creator": "creator", "description": "description"}
    column = allowed.get(fieldname)
    if column is None:
        raise QueryError(
            f"{fieldname!r} is not a queryable predefined attribute of "
            f"{object_type.value}s"
        )
    return column
