"""MCS error hierarchy.

Every error carries a stable ``fault_code`` so the SOAP layer can map it
across the wire and the client can re-raise the same type.
"""

from __future__ import annotations


class MCSError(Exception):
    """Base class for Metadata Catalog Service errors."""

    fault_code = "MCS.Error"


class ObjectNotFoundError(MCSError):
    """The named logical file/collection/view does not exist."""

    fault_code = "MCS.NotFound"


class DuplicateObjectError(MCSError):
    """An object with this name (and version) already exists."""

    fault_code = "MCS.Duplicate"


class InvalidAttributeError(MCSError):
    """Unknown attribute, wrong value type, or bad attribute definition."""

    fault_code = "MCS.InvalidAttribute"


class CycleError(MCSError):
    """The requested membership would create a collection/view cycle."""

    fault_code = "MCS.Cycle"


class ObjectInUseError(MCSError):
    """The object cannot be deleted while it has members or references."""

    fault_code = "MCS.InUse"


class QueryError(MCSError):
    """Malformed attribute query."""

    fault_code = "MCS.Query"


class PermissionDeniedError(MCSError):
    """Authorization failed at the service policy layer."""

    fault_code = "MCS.PermissionDenied"


class NotAuthenticatedError(MCSError):
    """The request carried no (or an invalid) credential."""

    fault_code = "MCS.NotAuthenticated"


FAULT_CODE_TO_ERROR = {
    cls.fault_code: cls
    for cls in (
        MCSError,
        ObjectNotFoundError,
        DuplicateObjectError,
        InvalidAttributeError,
        CycleError,
        ObjectInUseError,
        QueryError,
        PermissionDeniedError,
        NotAuthenticatedError,
    )
}


def error_from_fault(code: str, message: str) -> Exception:
    """Rebuild a typed MCS error from a SOAP fault code."""
    cls = FAULT_CODE_TO_ERROR.get(code, MCSError)
    return cls(message)
