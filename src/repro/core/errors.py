"""MCS error hierarchy and the fault-code mapping table.

Every error carries a stable ``fault_code`` so the SOAP layer can map it
across the wire and the client can re-raise the same type.  The mapping
lives here — and only here — in :func:`fault_code_for` (server side) and
:func:`exception_from_fault` (client side); the service dispatcher, the
bulk executor, the SOAP server fallback and the client transports all
consult the same table, so the translation can never drift between call
sites.
"""

from __future__ import annotations

from typing import Optional

from repro.db.errors import DatabaseError, LockTimeoutError, ProgrammingError
from repro.security.errors import SecurityError


class MCSError(Exception):
    """Base class for Metadata Catalog Service errors."""

    fault_code = "MCS.Error"


class ObjectNotFoundError(MCSError):
    """The named logical file/collection/view does not exist."""

    fault_code = "MCS.NotFound"


class DuplicateObjectError(MCSError):
    """An object with this name (and version) already exists."""

    fault_code = "MCS.Duplicate"


class InvalidAttributeError(MCSError):
    """Unknown attribute, wrong value type, or bad attribute definition."""

    fault_code = "MCS.InvalidAttribute"


class CycleError(MCSError):
    """The requested membership would create a collection/view cycle."""

    fault_code = "MCS.Cycle"


class ObjectInUseError(MCSError):
    """The object cannot be deleted while it has members or references."""

    fault_code = "MCS.InUse"


class QueryError(MCSError):
    """Malformed attribute query."""

    fault_code = "MCS.Query"


class PermissionDeniedError(MCSError):
    """Authorization failed at the service policy layer."""

    fault_code = "MCS.PermissionDenied"


class NotAuthenticatedError(MCSError):
    """The request carried no (or an invalid) credential."""

    fault_code = "MCS.NotAuthenticated"


class NoSuchMethodError(MCSError):
    """The request named an operation the service does not dispatch."""

    fault_code = "MCS.NoSuchMethod"


class BadRequestError(MCSError):
    """The request's arguments do not fit the operation's signature."""

    fault_code = "MCS.BadRequest"


class ServiceBusyError(MCSError):
    """The server could not take a required lock in time; retry later.

    Wire face of :class:`repro.db.errors.LockTimeoutError` — contention
    is an operational condition the client can back off from, not an
    internal failure.
    """

    fault_code = "MCS.Busy"


class StorageError(MCSError):
    """The backend database failed while serving the request.

    Wire face of the remaining :class:`repro.db.errors.DatabaseError`
    family (schema, integrity, transaction, recovery): the request was
    understood but the storage layer could not complete it.
    """

    fault_code = "MCS.Storage"


FAULT_CODE_TO_ERROR = {
    cls.fault_code: cls
    for cls in (
        MCSError,
        ObjectNotFoundError,
        DuplicateObjectError,
        InvalidAttributeError,
        CycleError,
        ObjectInUseError,
        QueryError,
        PermissionDeniedError,
        NotAuthenticatedError,
        NoSuchMethodError,
        BadRequestError,
        ServiceBusyError,
        StorageError,
    )
}


#: Prefix that marks a wire fault as carrying a typed MCS error.
MCS_FAULT_PREFIX = "MCS."


def fault_code_for(exc: BaseException) -> Optional[str]:
    """Wire fault code for ``exc``, or ``None`` when it has no MCS mapping.

    ``None`` tells the caller to fall through to its own generic handling
    (an opaque ``Server`` fault, or re-raising).  Security failures of any
    kind deliberately collapse to ``MCS.PermissionDenied`` so the wire
    never leaks which security check rejected the caller.
    """
    if isinstance(exc, MCSError):
        return exc.fault_code
    if isinstance(exc, SecurityError):
        return PermissionDeniedError.fault_code
    # Database failures map by operational meaning, most specific first:
    # lock contention is retryable (Busy), bad SQL reached the engine
    # (Query), anything else is a storage-layer failure (Storage).  The
    # whole-program pass (MCS014) parses these isinstance arms to learn
    # which exception families the table covers.
    if isinstance(exc, LockTimeoutError):
        return ServiceBusyError.fault_code
    if isinstance(exc, ProgrammingError):
        return QueryError.fault_code
    if isinstance(exc, DatabaseError):
        return StorageError.fault_code
    return None


def exception_from_fault(code: str, message: str) -> Optional[MCSError]:
    """Typed MCS error for a wire fault, or ``None`` for foreign faults.

    Client-side half of the table: faults outside the ``MCS.`` namespace
    belong to the transport/SOAP layer and are left for the caller to
    raise as-is.
    """
    if not code.startswith(MCS_FAULT_PREFIX):
        return None
    cls = FAULT_CODE_TO_ERROR.get(code, MCSError)
    return cls(message)


def error_from_fault(code: str, message: str) -> Exception:
    """Rebuild a typed MCS error from a SOAP fault code."""
    cls = FAULT_CODE_TO_ERROR.get(code, MCSError)
    return cls(message)
