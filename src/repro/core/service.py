"""MCSService: the policy-enforcing request dispatcher.

This is the "MCS Server" box of the paper's Figure 4: it receives decoded
SOAP calls (``method`` + ``args`` dict), establishes the caller's
identity (GSI token, CAS assertion, or plain caller string in open mode),
checks authorization, performs the catalog operation, and records audit
metadata.

Authorization granularity is a policy knob (§3: "ranging from providing
access to the entire contents of the service to restricting access on
individual mappings"):

* ``granularity="none"``   — open service (the configuration benchmarked
  in §7, where all requests are trusted);
* ``granularity="service"``— one ACL for the whole catalog;
* ``granularity="object"`` — per-object ACLs with the paper's union rule
  up the collection hierarchy.
"""

from __future__ import annotations

import datetime as _dt
import json
import threading
import time
from typing import Any, Callable, Optional

from repro.core.catalog import MetadataCatalog
from repro.core.errors import (
    BadRequestError,
    MCSError,
    NoSuchMethodError,
    NotAuthenticatedError,
    PermissionDeniedError,
    QueryError,
    fault_code_for,
)
from repro.core.model import (
    AttributeType,
    ExternalCatalog,
    ObjectType,
    UserInfo,
)
from repro.core.query import AttributeCondition, ObjectQuery
from repro.db.errors import DatabaseError
from repro.security.acl import AccessControlList, Permission, effective_permissions
from repro.security.cas import CapabilityAssertion, PolicyRule, verify_assertion
from repro.security.errors import (
    AuthenticationError,
    CertificateError,
    SecurityError,
)
from repro.security.gsi import AuthToken, Certificate, GSIContext
from repro.security import rsa
from repro.security.identity import DistinguishedName
from repro.obs import trace as _trace
from repro.obs.metrics import (
    OBS,
    counter as _obs_counter,
    get_registry,
    histogram as _obs_histogram,
)
from repro.soap.envelope import SoapFault
from repro.soap.wsdl import ServiceDescription

ANONYMOUS = "anonymous"

_CATALOG_CALLS = _obs_counter(
    "mcs_catalog_calls_total",
    "Catalog API calls dispatched, per operation and outcome",
    labels=("operation", "status"),
)
_CATALOG_OP_SECONDS = _obs_histogram(
    "mcs_catalog_op_seconds",
    "Catalog API call latency (authn + authz + operation), per operation",
    labels=("operation",),
)
_AUTHZ_SECONDS = _obs_histogram(
    "mcs_catalog_authz_seconds",
    "Authorization-check time (granularity != 'none' only)",
)
_BULK_BATCH_SIZE = _obs_histogram(
    "mcs_catalog_bulk_batch_size",
    "Items per explicit bulk_* service call",
    labels=("operation",),
    buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
)
_BULK_ITEMS = _obs_counter(
    "mcs_catalog_bulk_items_total",
    "Per-item outcomes of explicit bulk_* service calls",
    labels=("operation", "status"),
)
_BULK_ITEM_SECONDS = _obs_histogram(
    "mcs_catalog_bulk_item_seconds",
    "Batch latency divided by item count — compare against the "
    "per-operation mcs_catalog_op_seconds to see the batching win",
    labels=("operation",),
)

# Per-operation metric children + span name, resolved once per method name
# (the dispatch path is the service's hot path).  Hits stay lock-free;
# only the one-time insert per method takes the guard (MCS015).
_OP_METRICS: dict[str, tuple] = {}
_OP_METRICS_GUARD = threading.Lock()


def _op_metrics(method: str) -> tuple:
    entry = _OP_METRICS.get(method)
    if entry is None:
        with _OP_METRICS_GUARD:
            entry = _OP_METRICS.get(method)
            if entry is None:
                entry = (
                    f"catalog.{method}",
                    _CATALOG_OP_SECONDS.labels(method),
                    _CATALOG_CALLS.labels(method, "ok"),
                    _CATALOG_CALLS.labels(method, "fault"),
                )
                _OP_METRICS[method] = entry
    return entry


def canonical_payload(method: str, args: dict[str, Any]) -> bytes:
    """Stable byte encoding of a request, used for GSI token signing."""

    def default(value: Any) -> str:
        if isinstance(value, (_dt.date, _dt.time, _dt.datetime)):
            return value.isoformat()
        return str(value)

    filtered = {k: v for k, v in args.items() if k not in ("auth", "cas")}
    return json.dumps([method, filtered], sort_keys=True, default=default).encode()


# --------------------------------------------------------------------------
# Credential (de)serialization for transport through SOAP structs
# --------------------------------------------------------------------------


def certificate_to_dict(cert: Certificate) -> dict:
    return {
        "subject": str(cert.subject),
        "issuer": str(cert.issuer),
        "public_key": cert.public_key.to_text(),
        "serial": cert.serial,
        "not_before": cert.not_before,
        "not_after": cert.not_after,
        "is_ca": cert.is_ca,
        "is_proxy": cert.is_proxy,
        "signature": hex(cert.signature),
    }


def certificate_from_dict(data: dict) -> Certificate:
    return Certificate(
        subject=DistinguishedName.parse(data["subject"]),
        issuer=DistinguishedName.parse(data["issuer"]),
        public_key=rsa.PublicKey.from_text(data["public_key"]),
        serial=int(data["serial"]),
        not_before=float(data["not_before"]),
        not_after=float(data["not_after"]),
        is_ca=bool(data["is_ca"]),
        is_proxy=bool(data["is_proxy"]),
        signature=int(data["signature"], 16),
    )


def token_to_dict(token: AuthToken) -> dict:
    return {
        "chain": [certificate_to_dict(c) for c in token.chain],
        "timestamp": token.timestamp,
        "digest": token.payload_digest,
        "signature": hex(token.signature),
    }


def token_from_dict(data: dict) -> AuthToken:
    return AuthToken(
        chain=tuple(certificate_from_dict(c) for c in data["chain"]),
        timestamp=float(data["timestamp"]),
        payload_digest=data["digest"],
        signature=int(data["signature"], 16),
    )


def assertion_to_dict(assertion: CapabilityAssertion) -> dict:
    return {
        "community": assertion.community,
        "user": str(assertion.user),
        "rules": [
            {
                "pattern": rule.object_pattern,
                "permissions": [p.name for p in Permission if p in rule.permissions and p.name],
            }
            for rule in assertion.rules
        ],
        "issued": assertion.issued,
        "expires": assertion.expires,
        "signature": hex(assertion.signature),
    }


def assertion_from_dict(data: dict) -> CapabilityAssertion:
    rules = tuple(
        PolicyRule(
            rule["pattern"],
            frozenset(Permission[p] for p in rule["permissions"]),
        )
        for rule in data["rules"]
    )
    return CapabilityAssertion(
        community=data["community"],
        user=DistinguishedName.parse(data["user"]),
        rules=rules,
        issued=float(data["issued"]),
        expires=float(data["expires"]),
        signature=int(data["signature"], 16),
    )


# --------------------------------------------------------------------------
# The service
# --------------------------------------------------------------------------


class MCSService:
    """Dispatches decoded requests against a :class:`MetadataCatalog`."""

    def __init__(
        self,
        catalog: Optional[MetadataCatalog] = None,
        granularity: str = "none",
        gsi_context: Optional[GSIContext] = None,
        trusted_cas: tuple[Certificate, ...] = (),
        audit_default: bool = False,
    ) -> None:
        if granularity not in ("none", "service", "object"):
            raise ValueError(f"unknown granularity {granularity!r}")
        self.catalog = catalog if catalog is not None else MetadataCatalog()
        self.granularity = granularity
        self.gsi = gsi_context
        self.trusted_cas = trusted_cas
        self.audit_default = audit_default
        self._methods: dict[str, Callable[..., Any]] = {}
        self._register_methods()

    # -- SOAP integration -----------------------------------------------------

    def handle(self, method: str, args: dict[str, Any]) -> Any:
        """Entry point for transports: authn → authz → operate → audit."""
        span_name, op_seconds, ok_calls, fault_calls = _op_metrics(method)
        if not OBS.enabled:
            try:
                result = self._dispatch(method, args)
            except Exception:
                fault_calls.inc()
                raise
            ok_calls.inc()
            return result
        active = _trace.current_span()
        if active is not None and active.name != "soap.server":
            # In-process caller (direct/loopback): its client.call span
            # already traces this request — a nested span would double the
            # hot-path cost for no extra information.  Keep the histogram.
            # The server's own soap.server dispatch span does NOT suppress
            # the catalog span: there the nesting is the point — it is what
            # separates catalog time from codec/queue time in a waterfall.
            start = time.perf_counter()
            try:
                result = self._dispatch(method, args)
            except Exception:
                fault_calls.inc()
                op_seconds.observe(time.perf_counter() - start)
                raise
            ok_calls.inc()
            op_seconds.observe(time.perf_counter() - start)
            return result
        # When tracing is toggled off the span records nothing and its
        # duration stays None — keep the histogram fed either way.
        s = _trace.span(span_name)
        start = time.perf_counter()
        try:
            with s:
                result = self._dispatch(method, args)
        except Exception:
            fault_calls.inc()
            op_seconds.observe(
                s.duration
                if s.duration is not None
                else time.perf_counter() - start
            )
            raise
        ok_calls.inc()
        op_seconds.observe(
            s.duration if s.duration is not None else time.perf_counter() - start
        )
        return result

    def _dispatch(self, method: str, args: dict[str, Any]) -> Any:
        handler = self._methods.get(method)
        if handler is None:
            raise SoapFault(
                NoSuchMethodError.fault_code, f"unknown method {method!r}"
            )
        try:
            caller, assertion = self._authenticate(method, args)
        except (MCSError, SecurityError, DatabaseError) as exc:
            raise SoapFault(fault_code_for(exc), str(exc)) from exc
        call_args = {k: v for k, v in args.items() if k not in ("auth", "cas", "caller")}
        try:
            return handler(caller=caller, assertion=assertion, **call_args)
        except (MCSError, SecurityError, DatabaseError) as exc:
            # DatabaseError rides the same central table: LockTimeout →
            # MCS.Busy, ProgrammingError → MCS.Query, rest → MCS.Storage
            raise SoapFault(fault_code_for(exc), str(exc)) from exc
        except TypeError as exc:
            raise SoapFault(BadRequestError.fault_code, str(exc)) from exc

    def fault_mapper(self, exc: Exception) -> Optional[SoapFault]:
        """Shared fault translation (the table in :mod:`repro.core.errors`)."""
        code = fault_code_for(exc)
        return SoapFault(code, str(exc)) if code is not None else None

    def description(self) -> ServiceDescription:
        desc = ServiceDescription("MetadataCatalogService")
        for name in sorted(self._methods):
            desc.add(name, ("...",))
        return desc

    # -- authentication ---------------------------------------------------------

    def _authenticate(
        self, method: str, args: dict[str, Any]
    ) -> tuple[str, Optional[CapabilityAssertion]]:
        assertion: Optional[CapabilityAssertion] = None
        if "cas" in args and args["cas"] is not None:
            assertion = assertion_from_dict(args["cas"])
            verify_assertion(assertion, self.trusted_cas)
        if self.gsi is not None:
            token_data = args.get("auth")
            if token_data is None:
                if self.granularity == "none":
                    return str(args.get("caller") or ANONYMOUS), assertion
                raise NotAuthenticatedError(f"method {method!r} requires GSI credentials")
            token = token_from_dict(token_data)
            try:
                identity = self.gsi.authenticate(
                    token, canonical_payload(method, args)
                )
            except (AuthenticationError, CertificateError) as exc:
                raise NotAuthenticatedError(str(exc)) from exc
            if assertion is not None and str(assertion.user) != str(identity):
                raise NotAuthenticatedError(
                    "CAS assertion subject does not match authenticated identity"
                )
            return str(identity), assertion
        return str(args.get("caller") or ANONYMOUS), assertion

    # -- authorization ------------------------------------------------------------

    def _check(
        self,
        caller: str,
        permission: Permission,
        object_type: ObjectType = ObjectType.SERVICE,
        name: Optional[str] = None,
        version: Optional[int] = None,
        assertion: Optional[CapabilityAssertion] = None,
    ) -> None:
        if self.granularity == "none":
            return
        start = time.perf_counter() if OBS.enabled else 0.0
        try:
            self._check_inner(
                caller, permission, object_type, name, version, assertion
            )
        finally:
            if OBS.enabled:
                _AUTHZ_SECONDS.observe(time.perf_counter() - start)

    def _check_inner(
        self,
        caller: str,
        permission: Permission,
        object_type: ObjectType,
        name: Optional[str],
        version: Optional[int],
        assertion: Optional[CapabilityAssertion],
    ) -> None:
        granted = Permission.NONE
        service_acl = self.catalog.get_acl(ObjectType.SERVICE, None)
        granted |= service_acl.permissions_for(caller)
        if self.granularity == "object" and object_type is not ObjectType.SERVICE and name:
            own_acl = self.catalog.get_acl(object_type, name, version)
            chain_acls: list[AccessControlList] = []
            if object_type is ObjectType.FILE:
                for coll in self.catalog.file_collection_chain(name, version):
                    chain_acls.append(self.catalog.get_acl(ObjectType.COLLECTION, coll))
            elif object_type is ObjectType.COLLECTION:
                chain = self.catalog.collection_chain(name)
                for coll in chain:
                    chain_acls.append(self.catalog.get_acl(ObjectType.COLLECTION, coll))
            granted |= effective_permissions(caller, own_acl, chain_acls)
        if assertion is not None and name:
            for perm in (p for p in Permission if p.name and p.value):
                if assertion.grants(name, perm):
                    granted |= perm
        if permission not in granted:
            raise PermissionDeniedError(
                f"{caller} lacks {permission} on "
                f"{object_type.value}{'' if not name else ' ' + name}"
            )

    def _audit(
        self,
        object_type: ObjectType,
        object_id: int,
        enabled: bool,
        action: str,
        detail: str,
        caller: str,
        name: Optional[str] = None,
        version: Optional[int] = None,
    ) -> None:
        if enabled or self.audit_default:
            # name/version let a sharded catalog place the record on the
            # object's owning backend; a single engine ignores them.
            self.catalog.record_audit(
                object_type, object_id, action, detail, caller,
                name=name, version=version,
            )

    # -- method registration ---------------------------------------------------------

    def _register_methods(self) -> None:
        prefix = "op_"
        for attr_name in dir(self):
            if attr_name.startswith(prefix):
                self._methods[attr_name[len(prefix):]] = getattr(self, attr_name)

    # ======================================================================
    # Logical file operations
    # ======================================================================

    def op_create_logical_file(
        self,
        caller: str,
        assertion: Optional[CapabilityAssertion],
        name: str,
        version: int = 1,
        data_type: Optional[str] = None,
        collection: Optional[str] = None,
        container_id: Optional[str] = None,
        container_service: Optional[str] = None,
        master_copy: Optional[str] = None,
        audit_enabled: bool = False,
        attributes: Optional[dict[str, Any]] = None,
    ) -> dict:
        self._check(caller, Permission.WRITE, assertion=assertion)
        if collection is not None and self.granularity == "object":
            self._check(
                caller,
                Permission.WRITE,
                ObjectType.COLLECTION,
                collection,
                assertion=assertion,
            )
        file_id = self.catalog.create_file(
            name,
            version=version,
            data_type=data_type,
            collection=collection,
            container_id=container_id,
            container_service=container_service,
            master_copy=master_copy,
            creator=caller,
            audit_enabled=audit_enabled,
            attributes=attributes,
        )
        self._audit(
            ObjectType.FILE, file_id, audit_enabled, "create", f"name={name}",
            caller, name=name, version=version,
        )
        return {"id": file_id, "name": name, "version": version}

    def op_get_logical_file(
        self,
        caller: str,
        assertion: Optional[CapabilityAssertion],
        name: str,
        version: Optional[int] = None,
    ) -> dict:
        self._check(
            caller, Permission.READ, ObjectType.FILE, name, version, assertion
        )
        file = self.catalog.get_file(name, version)
        self._audit(
            ObjectType.FILE, file.id, file.audit_enabled, "read", "", caller,
            name=name, version=file.version,
        )
        return {
            "id": file.id,
            "name": file.name,
            "version": file.version,
            "data_type": file.data_type,
            "valid": file.valid,
            "collection_id": file.collection_id,
            "container_id": file.container_id,
            "container_service": file.container_service,
            "master_copy": file.master_copy,
            "creator": file.creator,
            "created": file.created,
            "last_modifier": file.last_modifier,
            "modified": file.modified,
            "audit_enabled": file.audit_enabled,
        }

    def op_modify_logical_file(
        self,
        caller: str,
        assertion: Optional[CapabilityAssertion],
        name: str,
        version: Optional[int] = None,
        changes: Optional[dict[str, Any]] = None,
    ) -> bool:
        self._check(
            caller, Permission.WRITE, ObjectType.FILE, name, version, assertion
        )
        self.catalog.update_file(name, version, modifier=caller, **(changes or {}))
        file = self.catalog.get_file(name, version)
        self._audit(
            ObjectType.FILE,
            file.id,
            file.audit_enabled,
            "modify",
            json.dumps(changes or {}, default=str),
            caller,
        )
        return True

    def op_delete_logical_file(
        self,
        caller: str,
        assertion: Optional[CapabilityAssertion],
        name: str,
        version: Optional[int] = None,
    ) -> bool:
        self._check(
            caller, Permission.DELETE, ObjectType.FILE, name, version, assertion
        )
        file = self.catalog.get_file(name, version)
        self.catalog.delete_file(name, version)
        self._audit(
            ObjectType.FILE, file.id, file.audit_enabled, "delete", "", caller,
            name=name,
        )
        return True

    def op_move_file_to_collection(
        self,
        caller: str,
        assertion: Optional[CapabilityAssertion],
        name: str,
        collection: Optional[str] = None,
        version: Optional[int] = None,
    ) -> bool:
        self._check(
            caller, Permission.WRITE, ObjectType.FILE, name, version, assertion
        )
        if collection is not None and self.granularity == "object":
            self._check(
                caller, Permission.WRITE, ObjectType.COLLECTION, collection,
                assertion=assertion,
            )
        self.catalog.move_file_to_collection(name, collection, version, caller)
        return True

    def op_list_versions(
        self, caller: str, assertion: Optional[CapabilityAssertion], name: str
    ) -> list[int]:
        self._check(caller, Permission.READ, ObjectType.FILE, name, assertion=assertion)
        return self.catalog.list_versions(name)

    # ======================================================================
    # User-defined attributes
    # ======================================================================

    def op_define_attribute(
        self,
        caller: str,
        assertion: Optional[CapabilityAssertion],
        name: str,
        value_type: str,
        object_types: Optional[list[str]] = None,
        description: Optional[str] = None,
    ) -> int:
        self._check(caller, Permission.WRITE, assertion=assertion)
        types = (
            tuple(ObjectType(t) for t in object_types)
            if object_types
            else (ObjectType.FILE, ObjectType.COLLECTION, ObjectType.VIEW)
        )
        return self.catalog.define_attribute(
            name, value_type, types, description, creator=caller
        )

    def op_list_attribute_defs(
        self, caller: str, assertion: Optional[CapabilityAssertion]
    ) -> list[dict]:
        self._check(caller, Permission.READ, assertion=assertion)
        return [d.to_dict() for d in self.catalog.list_attribute_defs()]

    def op_set_attributes(
        self,
        caller: str,
        assertion: Optional[CapabilityAssertion],
        object_type: str,
        name: str,
        attributes: dict[str, Any],
        version: Optional[int] = None,
    ) -> bool:
        otype = ObjectType(object_type)
        self._check(caller, Permission.WRITE, otype, name, version, assertion)
        self.catalog.set_attributes(otype, name, attributes, version)
        return True

    def op_get_attributes(
        self,
        caller: str,
        assertion: Optional[CapabilityAssertion],
        object_type: str,
        name: str,
        version: Optional[int] = None,
    ) -> dict[str, Any]:
        otype = ObjectType(object_type)
        self._check(caller, Permission.READ, otype, name, version, assertion)
        return self.catalog.get_attributes(otype, name, version)

    def op_remove_attribute(
        self,
        caller: str,
        assertion: Optional[CapabilityAssertion],
        object_type: str,
        name: str,
        attribute: str,
        version: Optional[int] = None,
    ) -> bool:
        otype = ObjectType(object_type)
        self._check(caller, Permission.WRITE, otype, name, version, assertion)
        self.catalog.remove_attribute(otype, name, attribute, version)
        return True

    # ======================================================================
    # Queries
    # ======================================================================

    def op_query(
        self,
        caller: str,
        assertion: Optional[CapabilityAssertion],
        query: dict[str, Any],
    ) -> list[str]:
        self._check(caller, Permission.READ, assertion=assertion)
        return self.catalog.query(_query_from_dict(query))

    def op_query_files_by_attributes(
        self,
        caller: str,
        assertion: Optional[CapabilityAssertion],
        conditions: dict[str, Any],
    ) -> list[str]:
        # Wire-compatible legacy operation, served by the fluent query
        # path so the deprecated catalog shim has no in-tree callers.
        self._check(caller, Permission.READ, assertion=assertion)
        query = ObjectQuery()
        for name, value in conditions.items():
            query.where(name, "=", value)
        return self.catalog.query(query)

    def op_explain_query(
        self,
        caller: str,
        assertion: Optional[CapabilityAssertion],
        query: dict[str, Any],
    ) -> list[str]:
        """Physical plan of an attribute query — for operators/tuning."""
        self._check(caller, Permission.READ, assertion=assertion)
        return self.catalog.explain_query(_query_from_dict(query))

    def op_query_mql(
        self,
        caller: str,
        assertion: Optional[CapabilityAssertion],
        text: str,
    ) -> list[str]:
        """Run one MQL statement; syntax errors fault as MCS.Query."""
        self._check(caller, Permission.READ, assertion=assertion)
        return self.catalog.query_mql(text)

    def op_explain_mql(
        self,
        caller: str,
        assertion: Optional[CapabilityAssertion],
        text: str,
    ) -> list[str]:
        """Per-leaf strategy choice + costs for one MQL statement."""
        self._check(caller, Permission.READ, assertion=assertion)
        return self.catalog.explain_mql(text)

    def op_analyze_attributes(
        self, caller: str, assertion: Optional[CapabilityAssertion]
    ) -> int:
        """Exact recompute of the MQL planner statistics (ANALYZE)."""
        self._check(caller, Permission.WRITE, assertion=assertion)
        return self.catalog.analyze_attributes()

    # ======================================================================
    # Bulk operations
    # ======================================================================
    #
    # Explicit batch handlers: authorization runs once per distinct
    # object (single-pass), the catalog executes the batch in one
    # transaction, and every item's outcome comes back as a wire dict —
    # ``{"ok": True, "result": ...}`` or ``{"ok": False, "code": ...,
    # "message": ...}``.  With ``atomic=True`` a failing item raises a
    # single batch-level fault instead (nothing was committed).

    @staticmethod
    def _bulk_item_error(exc: Exception) -> dict:
        code = fault_code_for(exc)
        if code is not None:
            return {"ok": False, "code": code, "message": str(exc)}
        return {
            "ok": False,
            "code": "Server",
            "message": f"{type(exc).__name__}: {exc}",
        }

    @staticmethod
    def _bulk_wire_items(outcomes: list[tuple[bool, Any]]) -> list[dict]:
        return [
            {"ok": True, "result": value}
            if ok
            else MCSService._bulk_item_error(value)
            for ok, value in outcomes
        ]

    def _bulk_observe(
        self, operation: str, n_items: int, items: list[dict], start: float
    ) -> None:
        if not OBS.enabled or not n_items:
            return
        elapsed = time.perf_counter() - start
        _BULK_BATCH_SIZE.labels(operation).observe(n_items)
        _BULK_ITEM_SECONDS.labels(operation).observe(elapsed / n_items)
        ok = sum(1 for item in items if item.get("ok"))
        if ok:
            _BULK_ITEMS.labels(operation, "ok").inc(ok)
        if n_items - ok:
            _BULK_ITEMS.labels(operation, "fault").inc(n_items - ok)

    def op_bulk_create_files(
        self,
        caller: str,
        assertion: Optional[CapabilityAssertion],
        entries: list[dict[str, Any]],
        atomic: bool = True,
    ) -> dict:
        start = time.perf_counter() if OBS.enabled else 0.0
        self._check(caller, Permission.WRITE, assertion=assertion)
        if self.granularity == "object":
            # Single-pass authz: each distinct target collection once,
            # not once per file.
            seen: set[str] = set()
            for entry in entries:
                collection = entry.get("collection")
                if collection is not None and collection not in seen:
                    seen.add(collection)
                    self._check(
                        caller,
                        Permission.WRITE,
                        ObjectType.COLLECTION,
                        collection,
                        assertion=assertion,
                    )
        outcomes = self.catalog.bulk_create_files(
            entries, creator=caller, atomic=atomic
        )
        for (ok, value), entry in zip(outcomes, entries):
            if ok:
                self._audit(
                    ObjectType.FILE,
                    value,
                    bool(entry.get("audit_enabled", False)),
                    "create",
                    f"name={entry.get('name')} (bulk)",
                    caller,
                )
        items = self._bulk_wire_items(outcomes)
        for item, (ok, value) in zip(items, outcomes):
            if ok:
                item["result"] = {"id": value}
        self._bulk_observe("bulk_create_files", len(entries), items, start)
        return {"items": items, "ok": sum(1 for i in items if i["ok"])}

    def op_bulk_set_attributes(
        self,
        caller: str,
        assertion: Optional[CapabilityAssertion],
        items: list[dict[str, Any]],
        atomic: bool = True,
    ) -> dict:
        start = time.perf_counter() if OBS.enabled else 0.0
        self._check(caller, Permission.WRITE, assertion=assertion)
        if self.granularity == "object":
            seen: set[tuple] = set()
            for item in items:
                key = (
                    item.get("object_type", "file"),
                    item.get("name"),
                    item.get("version"),
                )
                if key[1] is not None and key not in seen:
                    seen.add(key)
                    self._check(
                        caller,
                        Permission.WRITE,
                        ObjectType(key[0]),
                        key[1],
                        key[2],
                        assertion,
                    )
        outcomes = self.catalog.bulk_set_attributes(items, atomic=atomic)
        wire = self._bulk_wire_items(outcomes)
        self._bulk_observe("bulk_set_attributes", len(items), wire, start)
        return {"items": wire, "ok": sum(1 for i in wire if i["ok"])}

    def op_bulk_query(
        self,
        caller: str,
        assertion: Optional[CapabilityAssertion],
        queries: list[dict[str, Any]],
    ) -> dict:
        start = time.perf_counter() if OBS.enabled else 0.0
        self._check(caller, Permission.READ, assertion=assertion)
        outcomes: list[tuple[bool, Any]] = []
        for data in queries:
            try:
                parsed = _query_from_dict(data)
            except Exception as exc:  # noqa: BLE001 - per-item boundary
                outcomes.append((False, exc))
                continue
            outcomes.extend(self.catalog.bulk_query([parsed]))
        wire = self._bulk_wire_items(outcomes)
        self._bulk_observe("bulk_query", len(queries), wire, start)
        return {"items": wire, "ok": sum(1 for i in wire if i["ok"])}

    # ======================================================================
    # Collections
    # ======================================================================

    def op_create_collection(
        self,
        caller: str,
        assertion: Optional[CapabilityAssertion],
        name: str,
        parent: Optional[str] = None,
        description: Optional[str] = None,
        audit_enabled: bool = False,
        attributes: Optional[dict[str, Any]] = None,
    ) -> int:
        self._check(caller, Permission.WRITE, assertion=assertion)
        if parent is not None and self.granularity == "object":
            self._check(
                caller, Permission.WRITE, ObjectType.COLLECTION, parent,
                assertion=assertion,
            )
        collection_id = self.catalog.create_collection(
            name, parent, description, creator=caller,
            audit_enabled=audit_enabled, attributes=attributes,
        )
        self._audit(
            ObjectType.COLLECTION, collection_id, audit_enabled, "create",
            f"name={name}", caller, name=name,
        )
        return collection_id

    def op_delete_collection(
        self, caller: str, assertion: Optional[CapabilityAssertion], name: str
    ) -> bool:
        self._check(
            caller, Permission.DELETE, ObjectType.COLLECTION, name, assertion=assertion
        )
        self.catalog.delete_collection(name)
        return True

    def op_list_collection(
        self, caller: str, assertion: Optional[CapabilityAssertion], name: str
    ) -> list[str]:
        self._check(
            caller, Permission.READ, ObjectType.COLLECTION, name, assertion=assertion
        )
        return self.catalog.list_collection(name)

    def op_list_subcollections(
        self, caller: str, assertion: Optional[CapabilityAssertion], name: str
    ) -> list[str]:
        self._check(
            caller, Permission.READ, ObjectType.COLLECTION, name, assertion=assertion
        )
        return self.catalog.list_subcollections(name)

    def op_set_collection_parent(
        self,
        caller: str,
        assertion: Optional[CapabilityAssertion],
        name: str,
        parent: Optional[str] = None,
    ) -> bool:
        self._check(
            caller, Permission.WRITE, ObjectType.COLLECTION, name, assertion=assertion
        )
        self.catalog.set_collection_parent(name, parent)
        return True

    # ======================================================================
    # Views
    # ======================================================================

    def op_create_view(
        self,
        caller: str,
        assertion: Optional[CapabilityAssertion],
        name: str,
        description: Optional[str] = None,
        audit_enabled: bool = False,
        attributes: Optional[dict[str, Any]] = None,
    ) -> int:
        self._check(caller, Permission.WRITE, assertion=assertion)
        view_id = self.catalog.create_view(
            name, description, creator=caller,
            audit_enabled=audit_enabled, attributes=attributes,
        )
        self._audit(
            ObjectType.VIEW, view_id, audit_enabled, "create", f"name={name}",
            caller, name=name,
        )
        return view_id

    def op_delete_view(
        self, caller: str, assertion: Optional[CapabilityAssertion], name: str
    ) -> bool:
        self._check(
            caller, Permission.DELETE, ObjectType.VIEW, name, assertion=assertion
        )
        self.catalog.delete_view(name)
        return True

    def op_add_to_view(
        self,
        caller: str,
        assertion: Optional[CapabilityAssertion],
        view: str,
        files: Optional[list[str]] = None,
        collections: Optional[list[str]] = None,
        views: Optional[list[str]] = None,
    ) -> bool:
        self._check(
            caller, Permission.WRITE, ObjectType.VIEW, view, assertion=assertion
        )
        self.catalog.add_to_view(
            view, files or (), collections or (), views or ()
        )
        return True

    def op_remove_from_view(
        self,
        caller: str,
        assertion: Optional[CapabilityAssertion],
        view: str,
        files: Optional[list[str]] = None,
        collections: Optional[list[str]] = None,
        views: Optional[list[str]] = None,
    ) -> bool:
        self._check(
            caller, Permission.WRITE, ObjectType.VIEW, view, assertion=assertion
        )
        self.catalog.remove_from_view(
            view, files or (), collections or (), views or ()
        )
        return True

    def op_list_view(
        self, caller: str, assertion: Optional[CapabilityAssertion], name: str
    ) -> list[dict]:
        self._check(
            caller, Permission.READ, ObjectType.VIEW, name, assertion=assertion
        )
        return [
            {"type": m.member_type.value, "id": m.member_id, "name": m.name}
            for m in self.catalog.list_view(name)
        ]

    # ======================================================================
    # Annotations, provenance, audit
    # ======================================================================

    def op_annotate(
        self,
        caller: str,
        assertion: Optional[CapabilityAssertion],
        object_type: str,
        name: str,
        text: str,
        version: Optional[int] = None,
    ) -> bool:
        otype = ObjectType(object_type)
        self._check(caller, Permission.ANNOTATE, otype, name, version, assertion)
        self.catalog.annotate(otype, name, text, caller, version)
        return True

    def op_get_annotations(
        self,
        caller: str,
        assertion: Optional[CapabilityAssertion],
        object_type: str,
        name: str,
        version: Optional[int] = None,
    ) -> list[dict]:
        otype = ObjectType(object_type)
        self._check(caller, Permission.READ, otype, name, version, assertion)
        return [
            {"text": a.text, "creator": a.creator, "created": a.created}
            for a in self.catalog.annotations(otype, name, version)
        ]

    def op_add_transformation(
        self,
        caller: str,
        assertion: Optional[CapabilityAssertion],
        name: str,
        description: str,
        version: Optional[int] = None,
    ) -> bool:
        self._check(
            caller, Permission.WRITE, ObjectType.FILE, name, version, assertion
        )
        self.catalog.add_transformation(name, description, version)
        return True

    def op_get_transformations(
        self,
        caller: str,
        assertion: Optional[CapabilityAssertion],
        name: str,
        version: Optional[int] = None,
    ) -> list[dict]:
        self._check(
            caller, Permission.READ, ObjectType.FILE, name, version, assertion
        )
        return [
            {"description": t.description, "created": t.created}
            for t in self.catalog.transformations(name, version)
        ]

    def op_audit_log(
        self,
        caller: str,
        assertion: Optional[CapabilityAssertion],
        object_type: str,
        name: str,
        version: Optional[int] = None,
    ) -> list[dict]:
        otype = ObjectType(object_type)
        self._check(caller, Permission.ADMIN, otype, name, version, assertion)
        return [
            {
                "action": r.action,
                "detail": r.detail,
                "actor": r.actor,
                "created": r.created,
            }
            for r in self.catalog.audit_log(otype, name, version)
        ]

    # ======================================================================
    # Users, external catalogs, permissions, misc
    # ======================================================================

    def op_register_user(
        self,
        caller: str,
        assertion: Optional[CapabilityAssertion],
        dn: str,
        description: str = "",
        institution: str = "",
        email: str = "",
        phone: str = "",
    ) -> bool:
        self._check(caller, Permission.WRITE, assertion=assertion)
        self.catalog.register_user(UserInfo(dn, description, institution, email, phone))
        return True

    def op_get_user(
        self, caller: str, assertion: Optional[CapabilityAssertion], dn: str
    ) -> dict:
        self._check(caller, Permission.READ, assertion=assertion)
        user = self.catalog.get_user(dn)
        return {
            "dn": user.dn,
            "description": user.description,
            "institution": user.institution,
            "email": user.email,
            "phone": user.phone,
        }

    def op_register_external_catalog(
        self,
        caller: str,
        assertion: Optional[CapabilityAssertion],
        name: str,
        catalog_type: str,
        host: str,
        port: int,
        description: str = "",
    ) -> bool:
        self._check(caller, Permission.WRITE, assertion=assertion)
        self.catalog.register_external_catalog(
            ExternalCatalog(name, catalog_type, host, port, description)
        )
        return True

    def op_list_external_catalogs(
        self, caller: str, assertion: Optional[CapabilityAssertion]
    ) -> list[dict]:
        self._check(caller, Permission.READ, assertion=assertion)
        return [
            {
                "name": c.name,
                "catalog_type": c.catalog_type,
                "host": c.host,
                "port": c.port,
                "description": c.description,
            }
            for c in self.catalog.list_external_catalogs()
        ]

    def op_set_permissions(
        self,
        caller: str,
        assertion: Optional[CapabilityAssertion],
        object_type: str,
        name: Optional[str],
        principal: str,
        permissions: list[str],
    ) -> bool:
        otype = ObjectType(object_type)
        if otype is not ObjectType.SERVICE:
            self._check(caller, Permission.ADMIN, otype, name, assertion=assertion)
        bits = Permission.NONE
        for p in permissions:
            bits |= Permission[p.upper()]
        self.catalog.set_permissions(otype, name, principal, bits)
        return True

    def op_get_permissions(
        self,
        caller: str,
        assertion: Optional[CapabilityAssertion],
        object_type: str,
        name: Optional[str] = None,
    ) -> dict[str, list[str]]:
        otype = ObjectType(object_type)
        self._check(caller, Permission.READ, assertion=assertion)
        acl = self.catalog.get_acl(otype, name)
        out = {
            principal: [p.name for p in Permission if p.name and p in bits]
            for principal, bits in acl.entries.items()
        }
        if acl.public is not Permission.NONE:
            out["*"] = [p.name for p in Permission if p.name and p in acl.public]
        return out

    def op_stats(self, caller: str, assertion: Optional[CapabilityAssertion]) -> dict:
        stats = self.catalog.stats()
        stats["cache"] = self.catalog.cache.stats()
        stats["metrics"] = get_registry().snapshot()
        return stats

    def op_ping(self, caller: str, assertion: Optional[CapabilityAssertion]) -> str:
        return "pong"


def _query_from_dict(data: dict[str, Any]) -> ObjectQuery:
    try:
        query = ObjectQuery(
            object_type=ObjectType(data.get("object_type", "file")),
            collection=data.get("collection"),
            valid_only=bool(data.get("valid_only", False)),
        )
        if data.get("limit") is not None:
            query.limit(data["limit"])
        if data.get("offset") is not None:
            query.offset(data["offset"])
        order = data.get("order_by")
        if order:
            fieldname, descending = order
            query.order_by(fieldname, bool(descending))
        for cond in data.get("conditions", []):
            query.where(cond["attribute"], cond["op"], cond["value"])
        for cond in data.get("predefined", []):
            query.where_field(cond["attribute"], cond["op"], cond["value"])
        return query
    except (KeyError, ValueError) as exc:
        raise QueryError(f"malformed query: {exc}") from exc
