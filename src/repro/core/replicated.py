"""A replicated MCS deployment (§9).

"Until now, we have assumed that strict consistency is required ... and
have assumed that we would eventually replicate the MCS over a small
number of sites to improve performance and reliability."

:class:`ReplicatedMCS` is that deployment: one writable primary plus N
read replicas fed by logical WAL shipping.  Synchronous shipping gives
the strict consistency the paper assumes (a read issued after a write
sees it on every replica); asynchronous shipping is the relaxed model the
paper defers to future work, with observable, bounded staleness.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.core.catalog import MetadataCatalog
from repro.core.client import MCSClient
from repro.core.service import MCSService
from repro.db import Database
from repro.db.replication import Replica, ReplicationPublisher, seed_replica


class ReplicatedMCS:
    """Primary MCS with read replicas.

    Parameters
    ----------
    replicas:
        Number of read replicas.
    synchronous:
        True (default) → strict consistency: commits apply to every
        replica before the write returns.  False → asynchronous apply
        with ``flush()`` to force convergence.
    """

    def __init__(self, replicas: int = 2, synchronous: bool = True) -> None:
        if replicas < 1:
            raise ValueError("need at least one replica")
        self.primary_db = Database()
        self.publisher = ReplicationPublisher(self.primary_db)
        # Attach replicas *before* schema installation so the DDL ships.
        self._replicas: list[Replica] = []
        for index in range(replicas):
            replica = Replica(f"replica-{index}", asynchronous=not synchronous)
            self.publisher.add_replica(replica)
            self._replicas.append(replica)
        self.catalog = MetadataCatalog(self.primary_db)  # installs schema
        self.service = MCSService(self.catalog)
        if not synchronous:
            self.publisher.flush_all()
        self._replica_catalogs = [
            MetadataCatalog(replica.database, install=False)
            for replica in self._replicas
        ]
        self._replica_services = [
            MCSService(catalog) for catalog in self._replica_catalogs
        ]
        self._read_cycle = itertools.cycle(range(replicas))
        self.synchronous = synchronous

    # -- clients -------------------------------------------------------------

    def write_client(self, caller: Optional[str] = None) -> MCSClient:
        """A client bound to the primary (reads and writes)."""
        return MCSClient.in_process(self.service, caller=caller)

    def read_client(self, caller: Optional[str] = None) -> MCSClient:
        """A client bound to the next read replica (round robin)."""
        index = next(self._read_cycle)
        return MCSClient.in_process(self._replica_services[index], caller=caller)

    def replica_client(self, index: int, caller: Optional[str] = None) -> MCSClient:
        return MCSClient.in_process(self._replica_services[index], caller=caller)

    # -- management ----------------------------------------------------------------

    @property
    def replica_count(self) -> int:
        return len(self._replicas)

    def lag(self) -> list[int]:
        """Pending commit batches per replica (always 0 when synchronous)."""
        return [replica.lag() for replica in self._replicas]

    def flush(self, timeout: float = 10.0) -> None:
        """Force every replica to catch up (asynchronous mode)."""
        self.publisher.flush_all(timeout)

    def promote(self, index: int) -> "ReplicatedMCS":
        """Fail over: detach a replica and make it the (new) primary.

        Returns a new ReplicatedMCS-shaped handle whose primary is the
        promoted replica (with no replicas of its own); the old primary
        keeps its remaining replicas.  Asynchronous replicas should be
        flushed first or the promoted copy loses in-flight commits.
        """
        replica = self._replicas[index]
        replica.flush()
        self.publisher.remove_replica(replica.name)
        replica.stop()
        promoted = ReplicatedMCS.__new__(ReplicatedMCS)
        promoted.primary_db = replica.database
        promoted.publisher = ReplicationPublisher(replica.database)
        promoted._replicas = []
        promoted.catalog = self._replica_catalogs[index]
        promoted.service = self._replica_services[index]
        promoted._replica_catalogs = []
        promoted._replica_services = []
        promoted._read_cycle = itertools.cycle([0])
        promoted.synchronous = True
        # Remove from this cluster's read rotation.
        del self._replicas[index]
        del self._replica_catalogs[index]
        del self._replica_services[index]
        if self._replicas:
            self._read_cycle = itertools.cycle(range(len(self._replicas)))
        return promoted

    def close(self) -> None:
        self.publisher.close()
