"""The MCS relational schema.

Table layout mirrors the paper's schema categories (§5): logical file
metadata, collection metadata, view metadata, authorization metadata,
user metadata, audit metadata, user-defined attributes, annotations,
transformation history and external catalog pointers.

User-defined attribute values use an entity-attribute-value (EAV) table
with one typed column per attribute type, indexed on
``(attr_id, value_<type>)`` for attribute-match queries and on
``(object_type, object_id, attr_id)`` for per-object lookups and join
probes — the same physical design choices whose cost behaviour the
paper's §7 measures.
"""

from __future__ import annotations

from repro.db import Database
from repro.db.schema import Column, ForeignKey, IndexDef, TableDef
from repro.db.types import ColumnType

SCHEMA_VERSION = 1


def _col(name: str, ctype: ColumnType, **kwargs) -> Column:
    return Column(name, ctype, **kwargs)


def install_schema(db: Database) -> None:
    """Create every MCS table and index (idempotent)."""
    tables = [
        TableDef(
            "mcs_meta",
            [
                _col("meta_key", ColumnType.STRING, nullable=False),
                _col("meta_value", ColumnType.STRING),
            ],
            primary_key=("meta_key",),
        ),
        TableDef(
            "logical_collection",
            [
                _col("id", ColumnType.INTEGER, autoincrement=True, nullable=False),
                _col("name", ColumnType.STRING, nullable=False),
                _col("description", ColumnType.STRING),
                _col("parent_id", ColumnType.INTEGER),
                _col("creator", ColumnType.STRING),
                _col("created", ColumnType.DATETIME),
                _col("last_modifier", ColumnType.STRING),
                _col("modified", ColumnType.DATETIME),
                _col("audit_enabled", ColumnType.BOOLEAN, default=False),
            ],
            primary_key=("id",),
            unique=[("name",)],
            foreign_keys=[ForeignKey(("parent_id",), "logical_collection", ("id",))],
        ),
        TableDef(
            "logical_file",
            [
                _col("id", ColumnType.INTEGER, autoincrement=True, nullable=False),
                _col("name", ColumnType.STRING, nullable=False),
                _col("version", ColumnType.INTEGER, nullable=False, default=1),
                _col("data_type", ColumnType.STRING),
                _col("valid", ColumnType.BOOLEAN, default=True),
                _col("collection_id", ColumnType.INTEGER),
                _col("container_id", ColumnType.STRING),
                _col("container_service", ColumnType.STRING),
                _col("master_copy", ColumnType.STRING),
                _col("creator", ColumnType.STRING),
                _col("created", ColumnType.DATETIME),
                _col("last_modifier", ColumnType.STRING),
                _col("modified", ColumnType.DATETIME),
                _col("audit_enabled", ColumnType.BOOLEAN, default=False),
            ],
            primary_key=("id",),
            unique=[("name", "version")],
            foreign_keys=[
                ForeignKey(("collection_id",), "logical_collection", ("id",))
            ],
        ),
        TableDef(
            "logical_view",
            [
                _col("id", ColumnType.INTEGER, autoincrement=True, nullable=False),
                _col("name", ColumnType.STRING, nullable=False),
                _col("description", ColumnType.STRING),
                _col("creator", ColumnType.STRING),
                _col("created", ColumnType.DATETIME),
                _col("last_modifier", ColumnType.STRING),
                _col("modified", ColumnType.DATETIME),
                _col("audit_enabled", ColumnType.BOOLEAN, default=False),
            ],
            primary_key=("id",),
            unique=[("name",)],
        ),
        TableDef(
            "view_member",
            [
                _col("id", ColumnType.INTEGER, autoincrement=True, nullable=False),
                _col("view_id", ColumnType.INTEGER, nullable=False),
                _col("member_type", ColumnType.STRING, nullable=False),
                _col("member_id", ColumnType.INTEGER, nullable=False),
            ],
            primary_key=("id",),
            unique=[("view_id", "member_type", "member_id")],
            foreign_keys=[ForeignKey(("view_id",), "logical_view", ("id",))],
        ),
        TableDef(
            "attribute_def",
            [
                _col("id", ColumnType.INTEGER, autoincrement=True, nullable=False),
                _col("name", ColumnType.STRING, nullable=False),
                _col("value_type", ColumnType.STRING, nullable=False),
                _col("object_types", ColumnType.STRING, nullable=False),
                _col("description", ColumnType.STRING),
                _col("creator", ColumnType.STRING),
                _col("created", ColumnType.DATETIME),
            ],
            primary_key=("id",),
            unique=[("name",)],
        ),
        TableDef(
            "attribute_value",
            [
                _col("id", ColumnType.INTEGER, autoincrement=True, nullable=False),
                _col("attr_id", ColumnType.INTEGER, nullable=False),
                _col("object_type", ColumnType.STRING, nullable=False),
                _col("object_id", ColumnType.INTEGER, nullable=False),
                _col("value_string", ColumnType.STRING),
                _col("value_int", ColumnType.INTEGER),
                _col("value_float", ColumnType.FLOAT),
                _col("value_date", ColumnType.DATE),
                _col("value_time", ColumnType.TIME),
                _col("value_datetime", ColumnType.DATETIME),
            ],
            primary_key=("id",),
            unique=[("attr_id", "object_type", "object_id")],
            foreign_keys=[ForeignKey(("attr_id",), "attribute_def", ("id",))],
        ),
        TableDef(
            # Incrementally maintained planner statistics for the MQL
            # cost model (repro.mql.stats): one row per (attribute,
            # object type).  min/max are canonical strings (str() /
            # isoformat) so one column pair covers every value type.
            "attribute_stats",
            [
                _col("id", ColumnType.INTEGER, autoincrement=True, nullable=False),
                _col("attr_id", ColumnType.INTEGER, nullable=False),
                _col("object_type", ColumnType.STRING, nullable=False),
                _col("row_count", ColumnType.INTEGER, nullable=False, default=0),
                _col("distinct_count", ColumnType.INTEGER, nullable=False, default=0),
                _col("min_value", ColumnType.STRING),
                _col("max_value", ColumnType.STRING),
            ],
            primary_key=("id",),
            unique=[("attr_id", "object_type")],
            foreign_keys=[ForeignKey(("attr_id",), "attribute_def", ("id",))],
        ),
        TableDef(
            "annotation",
            [
                _col("id", ColumnType.INTEGER, autoincrement=True, nullable=False),
                _col("object_type", ColumnType.STRING, nullable=False),
                _col("object_id", ColumnType.INTEGER, nullable=False),
                _col("annotation", ColumnType.STRING, nullable=False),
                _col("creator", ColumnType.STRING, nullable=False),
                _col("created", ColumnType.DATETIME, nullable=False),
            ],
            primary_key=("id",),
        ),
        TableDef(
            "audit_record",
            [
                _col("id", ColumnType.INTEGER, autoincrement=True, nullable=False),
                _col("object_type", ColumnType.STRING, nullable=False),
                _col("object_id", ColumnType.INTEGER, nullable=False),
                _col("action", ColumnType.STRING, nullable=False),
                _col("detail", ColumnType.STRING),
                _col("actor", ColumnType.STRING, nullable=False),
                _col("created", ColumnType.DATETIME, nullable=False),
            ],
            primary_key=("id",),
        ),
        TableDef(
            "transformation",
            [
                _col("id", ColumnType.INTEGER, autoincrement=True, nullable=False),
                _col("file_id", ColumnType.INTEGER, nullable=False),
                _col("description", ColumnType.STRING, nullable=False),
                _col("created", ColumnType.DATETIME, nullable=False),
            ],
            primary_key=("id",),
            foreign_keys=[ForeignKey(("file_id",), "logical_file", ("id",))],
        ),
        TableDef(
            "user_info",
            [
                _col("id", ColumnType.INTEGER, autoincrement=True, nullable=False),
                _col("dn", ColumnType.STRING, nullable=False),
                _col("description", ColumnType.STRING),
                _col("institution", ColumnType.STRING),
                _col("email", ColumnType.STRING),
                _col("phone", ColumnType.STRING),
            ],
            primary_key=("id",),
            unique=[("dn",)],
        ),
        TableDef(
            "external_catalog",
            [
                _col("id", ColumnType.INTEGER, autoincrement=True, nullable=False),
                _col("name", ColumnType.STRING, nullable=False),
                _col("catalog_type", ColumnType.STRING, nullable=False),
                _col("host", ColumnType.STRING, nullable=False),
                _col("port", ColumnType.INTEGER, nullable=False),
                _col("description", ColumnType.STRING),
            ],
            primary_key=("id",),
            unique=[("name",)],
        ),
        TableDef(
            "acl_entry",
            [
                _col("id", ColumnType.INTEGER, autoincrement=True, nullable=False),
                _col("object_type", ColumnType.STRING, nullable=False),
                _col("object_id", ColumnType.INTEGER, nullable=False),
                _col("principal", ColumnType.STRING, nullable=False),
                _col("permissions", ColumnType.INTEGER, nullable=False),
            ],
            primary_key=("id",),
            unique=[("object_type", "object_id", "principal")],
        ),
    ]
    for definition in tables:
        db.create_table(definition, if_not_exists=True)

    indexes = [
        # The paper builds indexes on logical file/collection/view names,
        # on the database-assigned identifiers, and on (name, id) pairs.
        IndexDef("lf_name", "logical_file", ("name",)),
        IndexDef("lf_name_id", "logical_file", ("name", "id")),
        IndexDef("lf_collection", "logical_file", ("collection_id",)),
        IndexDef("lc_parent", "logical_collection", ("parent_id",)),
        IndexDef("vm_view", "view_member", ("view_id",)),
        IndexDef("vm_member", "view_member", ("member_type", "member_id")),
        # EAV access paths: per-object probe and per-(attr, value) match.
        IndexDef("av_object", "attribute_value", ("object_type", "object_id", "attr_id")),
        IndexDef("av_string", "attribute_value", ("attr_id", "value_string")),
        IndexDef("av_int", "attribute_value", ("attr_id", "value_int")),
        IndexDef("av_float", "attribute_value", ("attr_id", "value_float")),
        IndexDef("av_date", "attribute_value", ("attr_id", "value_date")),
        IndexDef("av_time", "attribute_value", ("attr_id", "value_time")),
        IndexDef("av_datetime", "attribute_value", ("attr_id", "value_datetime")),
        IndexDef("as_attr", "attribute_stats", ("attr_id", "object_type")),
        IndexDef("as_object_type", "attribute_stats", ("object_type",)),
        IndexDef("ann_object", "annotation", ("object_type", "object_id")),
        IndexDef("audit_object", "audit_record", ("object_type", "object_id")),
        IndexDef("tr_file", "transformation", ("file_id",)),
        IndexDef("acl_object", "acl_entry", ("object_type", "object_id")),
    ]
    for index_def in indexes:
        db.create_index(index_def, if_not_exists=True)

    conn = db.connect()
    existing = conn.execute(
        "SELECT meta_value FROM mcs_meta WHERE meta_key = 'schema_version'"
    ).scalar()
    if existing is None:
        conn.execute(
            "INSERT INTO mcs_meta (meta_key, meta_value) VALUES ('schema_version', ?)",
            (str(SCHEMA_VERSION),),
        )
    conn.close()
