"""Domain objects of the MCS data model (§5, Figure 3).

These are plain value objects; persistence lives in
:mod:`repro.core.catalog`.
"""

from __future__ import annotations

import datetime as _dt
import enum
from dataclasses import dataclass, field
from typing import Any, Optional


class ObjectType(enum.Enum):
    """Kinds of logical objects metadata can attach to."""

    FILE = "file"
    COLLECTION = "collection"
    VIEW = "view"
    SERVICE = "service"  # the MCS itself, for service-level permissions

    @classmethod
    def parse(cls, text: str) -> "ObjectType":
        return cls(text.lower())


class AttributeType(enum.Enum):
    """Value types for user-defined attributes (§5: string, float, int,
    date, time and date/time)."""

    STRING = "string"
    INT = "int"
    FLOAT = "float"
    DATE = "date"
    TIME = "time"
    DATETIME = "datetime"

    @classmethod
    def parse(cls, text: str) -> "AttributeType":
        aliases = {"integer": "int", "double": "float", "timestamp": "datetime"}
        key = text.lower()
        return cls(aliases.get(key, key))

    @property
    def value_column(self) -> str:
        """The attribute_value column holding this type."""
        return {
            AttributeType.STRING: "value_string",
            AttributeType.INT: "value_int",
            AttributeType.FLOAT: "value_float",
            AttributeType.DATE: "value_date",
            AttributeType.TIME: "value_time",
            AttributeType.DATETIME: "value_datetime",
        }[self]

    def python_type(self) -> tuple[type, ...]:
        return {
            AttributeType.STRING: (str,),
            AttributeType.INT: (int,),
            AttributeType.FLOAT: (int, float),
            AttributeType.DATE: (_dt.date,),
            AttributeType.TIME: (_dt.time,),
            AttributeType.DATETIME: (_dt.datetime,),
        }[self]


@dataclass
class LogicalFile:
    """A logical file: the basic item of the MCS data model.

    Uniquely identified by (logical name, version); most files have the
    default version 1.  ``collection_id`` implements the at-most-one-
    collection rule.
    """

    id: int
    name: str
    version: int = 1
    data_type: Optional[str] = None
    valid: bool = True
    collection_id: Optional[int] = None
    container_id: Optional[str] = None
    container_service: Optional[str] = None
    master_copy: Optional[str] = None
    creator: Optional[str] = None
    created: Optional[_dt.datetime] = None
    last_modifier: Optional[str] = None
    modified: Optional[_dt.datetime] = None
    audit_enabled: bool = False


@dataclass
class LogicalCollection:
    """A user-defined aggregation used for grouping *and authorization*."""

    id: int
    name: str
    description: Optional[str] = None
    parent_id: Optional[int] = None
    creator: Optional[str] = None
    created: Optional[_dt.datetime] = None
    last_modifier: Optional[str] = None
    modified: Optional[_dt.datetime] = None
    audit_enabled: bool = False


@dataclass
class LogicalView:
    """An acyclic aggregation of files/collections/views; no authorization
    effect (like a directory of symbolic links)."""

    id: int
    name: str
    description: Optional[str] = None
    creator: Optional[str] = None
    created: Optional[_dt.datetime] = None
    last_modifier: Optional[str] = None
    modified: Optional[_dt.datetime] = None
    audit_enabled: bool = False


@dataclass(frozen=True)
class ViewMember:
    """One member of a logical view."""

    member_type: ObjectType
    member_id: int
    name: str = ""


@dataclass
class AttributeDef:
    """A user-defined attribute: schema extensibility (§5)."""

    id: int
    name: str
    value_type: AttributeType
    object_types: frozenset[ObjectType] = frozenset(
        {ObjectType.FILE, ObjectType.COLLECTION, ObjectType.VIEW}
    )
    description: Optional[str] = None
    creator: Optional[str] = None
    created: Optional[_dt.datetime] = None

    def to_dict(self) -> dict:
        """Wire/JSON form; :meth:`from_dict` round-trips it exactly.

        Enums flatten to their string values and ``object_types`` to a
        sorted list, so the dict is stable and codec-friendly.
        """
        return {
            "id": self.id,
            "name": self.name,
            "value_type": self.value_type.value,
            "object_types": sorted(t.value for t in self.object_types),
            "description": self.description,
            "creator": self.creator,
            "created": self.created,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AttributeDef":
        """Rebuild from :meth:`to_dict` output (ISO strings accepted)."""
        created = data.get("created")
        if isinstance(created, str):
            created = _dt.datetime.fromisoformat(created)
        return cls(
            id=int(data.get("id", 0)),
            name=data["name"],
            value_type=AttributeType(data["value_type"]),
            object_types=frozenset(
                ObjectType(t) for t in data.get("object_types") or ()
            ),
            description=data.get("description"),
            creator=data.get("creator"),
            created=created,
        )


@dataclass(frozen=True)
class Annotation:
    """A free-text annotation attached to a logical object."""

    object_type: ObjectType
    object_name: str
    text: str
    creator: str
    created: _dt.datetime


@dataclass(frozen=True)
class AuditRecord:
    """One audited action (§5, Audit metadata)."""

    object_type: ObjectType
    object_id: int
    action: str
    detail: str
    actor: str
    created: _dt.datetime


@dataclass(frozen=True)
class TransformationRecord:
    """Creation/transformation history entry (provenance)."""

    file_name: str
    description: str
    created: _dt.datetime


@dataclass(frozen=True)
class ExternalCatalog:
    """Pointer to an external metadata catalog (§5)."""

    name: str
    catalog_type: str
    host: str
    port: int
    description: str = ""


@dataclass(frozen=True)
class UserInfo:
    """Contact metadata for writers of metadata (§5, User metadata)."""

    dn: str
    description: str = ""
    institution: str = ""
    email: str = ""
    phone: str = ""
