"""The Metadata Catalog Service (MCS) — the paper's contribution.

Layers, bottom-up:

* :mod:`repro.core.schema_def` — the MCS relational schema (§5) on top of
  :mod:`repro.db`.
* :mod:`repro.core.catalog` — :class:`MetadataCatalog`, the storage-level
  operations (files, collections, views, user-defined attributes,
  annotations, provenance, external catalogs, users, ACL rows).
* :mod:`repro.core.query` — attribute-based query model translated to SQL.
* :mod:`repro.core.service` — :class:`MCSService`, the policy-enforcing
  dispatcher (GSI authentication, ACL authorization, auditing) exposed
  over SOAP.
* :mod:`repro.core.client` — :class:`MCSClient`, the synchronous client
  API of §5 ("MCS Query Mechanisms and APIs"), transport-agnostic.
* :mod:`repro.core.aclient` — :class:`AsyncMCSClient`, the same surface
  as coroutines over asyncio transports; both consume one
  :class:`ClientConfig`.
"""

from repro.core.aclient import AsyncBulkContext, AsyncMCSClient
from repro.core.catalog import MetadataCatalog
from repro.core.client import BulkContext, BulkResult, ClientConfig, MCSClient
from repro.core.errors import (
    CycleError,
    DuplicateObjectError,
    InvalidAttributeError,
    MCSError,
    ObjectInUseError,
    ObjectNotFoundError,
)
from repro.core.model import (
    Annotation,
    AttributeDef,
    AttributeType,
    AuditRecord,
    ExternalCatalog,
    LogicalCollection,
    LogicalFile,
    LogicalView,
    ObjectType,
    TransformationRecord,
    UserInfo,
)
from repro.core.query import AttributeCondition, ObjectQuery
from repro.core.service import MCSService

__all__ = [
    "MetadataCatalog",
    "MCSService",
    "MCSClient",
    "AsyncMCSClient",
    "AsyncBulkContext",
    "ClientConfig",
    "BulkContext",
    "BulkResult",
    "ObjectQuery",
    "AttributeCondition",
    "ObjectType",
    "AttributeType",
    "LogicalFile",
    "LogicalCollection",
    "LogicalView",
    "AttributeDef",
    "Annotation",
    "AuditRecord",
    "TransformationRecord",
    "ExternalCatalog",
    "UserInfo",
    "MCSError",
    "ObjectNotFoundError",
    "DuplicateObjectError",
    "InvalidAttributeError",
    "CycleError",
    "ObjectInUseError",
]
