"""Federated MCS (the paper's §9 future-work design).

"Consistent local catalogs use soft state update mechanisms to send
periodic summaries of metadata discovery information to aggregating index
nodes.  Clients query these indexes to discover desirable data sets
across a collection of metadata services and then issue subqueries to the
underlying local catalogs."

* :class:`~repro.federation.localcatalog.LocalMCS` — a self-consistent
  MCS plus summary generation;
* :class:`~repro.federation.indexnode.MCSIndexNode` — the aggregating
  index (soft state, expiry);
* :class:`~repro.federation.federated.FederatedMCS` — the client that
  scatters subqueries to candidate catalogs and merges results.
"""

from repro.federation.localcatalog import CatalogSummary, LocalMCS
from repro.federation.indexnode import MCSIndexNode
from repro.federation.federated import FederatedMCS

__all__ = ["LocalMCS", "CatalogSummary", "MCSIndexNode", "FederatedMCS"]
