"""A local MCS participating in a federation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.core.catalog import MetadataCatalog
from repro.core.client import MCSClient
from repro.core.model import ObjectType
from repro.core.service import MCSService
from repro.rls.softstate import BloomFilter


@dataclass
class CatalogSummary:
    """Soft-state summary of one local catalog's discovery information.

    Carries, per user-defined attribute, a Bloom filter of the *string
    values* present plus numeric [min, max] ranges — enough for an index
    node to rule catalogs in or out without holding their contents.
    """

    catalog_id: str
    sequence: int
    attribute_names: frozenset[str]
    string_values: dict[str, BloomFilter]
    numeric_ranges: dict[str, tuple[float, float]]
    file_count: int

    def might_match(self, attribute: str, op: str, value: Any) -> bool:
        """Could this catalog hold objects matching the condition?

        Conservative: unknown attribute → False; unknown shape → True.
        """
        if attribute not in self.attribute_names:
            return False
        if op == "=" and isinstance(value, str):
            bloom = self.string_values.get(attribute)
            if bloom is not None:
                return value in bloom
            return True
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            bounds = self.numeric_ranges.get(attribute)
            if bounds is None:
                return True
            low, high = bounds
            if op == "=":
                return low <= value <= high
            if op in ("<", "<="):
                return low < value or (op == "<=" and low <= value)
            if op in (">", ">="):
                return high > value or (op == ">=" and high >= value)
        return True


class LocalMCS:
    """One federation member: a full MCS plus summary generation."""

    def __init__(self, catalog_id: str) -> None:
        self.catalog_id = catalog_id
        self.catalog = MetadataCatalog()
        self.service = MCSService(self.catalog)
        self.client = MCSClient.in_process(self.service, caller=f"site:{catalog_id}")
        self._sequence = 0

    def make_summary(self) -> CatalogSummary:
        """Scan attribute values and build the next soft-state summary."""
        self._sequence += 1
        conn = self.catalog._conn
        names: set[str] = set()
        string_values: dict[str, list[str]] = {}
        numeric_ranges: dict[str, tuple[float, float]] = {}
        rows = conn.execute(
            "SELECT d.name, v.value_string, v.value_int, v.value_float "
            "FROM attribute_value v JOIN attribute_def d ON v.attr_id = d.id"
        ).fetchall()
        for name, s, i, f in rows:
            names.add(name)
            if s is not None:
                string_values.setdefault(name, []).append(s)
            numeric = i if i is not None else f
            if numeric is not None:
                low, high = numeric_ranges.get(name, (numeric, numeric))
                numeric_ranges[name] = (min(low, numeric), max(high, numeric))
        blooms = {
            name: BloomFilter.from_items(values)
            for name, values in string_values.items()
        }
        file_count = conn.execute("SELECT COUNT(*) FROM logical_file").scalar()
        return CatalogSummary(
            catalog_id=self.catalog_id,
            sequence=self._sequence,
            attribute_names=frozenset(names),
            string_values=blooms,
            numeric_ranges=numeric_ranges,
            file_count=file_count,
        )
