"""The aggregating index node of the federated MCS design."""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from repro.federation.localcatalog import CatalogSummary

DEFAULT_TIMEOUT = 120.0


class MCSIndexNode:
    """Holds soft-state catalog summaries; answers candidate queries."""

    def __init__(
        self,
        timeout: float = DEFAULT_TIMEOUT,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.timeout = timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._state: dict[str, tuple[CatalogSummary, float]] = {}

    def receive_summary(self, summary: CatalogSummary) -> bool:
        """Accept a summary; stale sequence numbers are dropped."""
        with self._lock:
            current = self._state.get(summary.catalog_id)
            if current is not None and current[0].sequence >= summary.sequence:
                return False
            self._state[summary.catalog_id] = (summary, self._clock())
            return True

    def candidate_catalogs(
        self, conditions: list[tuple[str, str, Any]]
    ) -> list[str]:
        """Catalog ids that might satisfy *all* the (attr, op, value)
        conditions, within the soft-state timeout."""
        now = self._clock()
        out: list[str] = []
        with self._lock:
            for catalog_id, (summary, received) in self._state.items():
                if now - received > self.timeout:
                    continue
                if all(
                    summary.might_match(attr, op, value)
                    for attr, op, value in conditions
                ):
                    out.append(catalog_id)
        return sorted(out)

    def expire(self) -> int:
        now = self._clock()
        with self._lock:
            stale = [
                cid
                for cid, (_, received) in self._state.items()
                if now - received > self.timeout
            ]
            for cid in stale:
                del self._state[cid]
        return len(stale)

    def known_catalogs(self) -> list[str]:
        with self._lock:
            return sorted(self._state)

    def total_files(self) -> int:
        with self._lock:
            return sum(s.file_count for s, _ in self._state.values())
