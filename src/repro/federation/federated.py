"""The federated query client: index scatter + local-catalog subqueries."""

from __future__ import annotations

import warnings
from typing import Any, Mapping

from repro.core.query import ObjectQuery
from repro.federation.indexnode import MCSIndexNode
from repro.federation.localcatalog import LocalMCS


class FederatedMCS:
    """Queries a federation of local catalogs through an index node.

    The client (1) asks the index node which catalogs might match, then
    (2) issues the full query only to those catalogs, merging the name
    lists with catalog provenance attached.
    """

    def __init__(
        self,
        index: MCSIndexNode,
        catalogs: Mapping[str, LocalMCS],
    ) -> None:
        self.index = index
        self.catalogs = dict(catalogs)
        self.subqueries_issued = 0

    def refresh_all(self) -> None:
        """Push fresh summaries from every catalog (the soft-state tick)."""
        for member in self.catalogs.values():
            self.index.receive_summary(member.make_summary())

    def query_files_by_attributes(
        self, conditions: dict[str, Any]
    ) -> dict[str, list[str]]:
        """Deprecated: build an :class:`ObjectQuery` and call :meth:`query`."""
        warnings.warn(
            "FederatedMCS.query_files_by_attributes() is deprecated; "
            "build an ObjectQuery and call query() instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.query(self._equality_query(conditions))

    def query(self, query: ObjectQuery) -> dict[str, list[str]]:
        """Full ObjectQuery across the federation."""
        cond_list = [
            (c.attribute, c.op, c.value) for c in query.conditions
        ]
        out: dict[str, list[str]] = {}
        for catalog_id in self.index.candidate_catalogs(cond_list):
            member = self.catalogs.get(catalog_id)
            if member is None:
                continue
            self.subqueries_issued += 1
            names = member.client.query(query)
            if names:
                out[catalog_id] = names
        return out

    def flat_query(self, conditions: dict[str, Any]) -> list[str]:
        """Merged, de-duplicated name list across all catalogs."""
        merged: set[str] = set()
        for names in self.query(self._equality_query(conditions)).values():
            merged.update(names)
        return sorted(merged)

    @staticmethod
    def _equality_query(conditions: dict[str, Any]) -> ObjectQuery:
        query = ObjectQuery()
        for attr, value in conditions.items():
            query.where(attr, "=", value)
        return query
