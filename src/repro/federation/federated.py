"""The federated query client: index scatter + local-catalog subqueries."""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro.core.query import ObjectQuery
from repro.federation.indexnode import MCSIndexNode
from repro.federation.localcatalog import LocalMCS


class FederatedMCS:
    """Queries a federation of local catalogs through an index node.

    The client (1) asks the index node which catalogs might match, then
    (2) issues the full query only to those catalogs, merging the name
    lists with catalog provenance attached.
    """

    def __init__(
        self,
        index: MCSIndexNode,
        catalogs: Mapping[str, LocalMCS],
    ) -> None:
        self.index = index
        self.catalogs = dict(catalogs)
        self.subqueries_issued = 0

    def refresh_all(self) -> None:
        """Push fresh summaries from every catalog (the soft-state tick)."""
        for member in self.catalogs.values():
            self.index.receive_summary(member.make_summary())

    def query_files_by_attributes(
        self, conditions: dict[str, Any]
    ) -> dict[str, list[str]]:
        """Conjunctive equality query; returns {catalog_id: names}."""
        subquery = ObjectQuery()
        for attr, value in conditions.items():
            subquery.where(attr, "=", value)
        cond_list = [(attr, "=", value) for attr, value in conditions.items()]
        out: dict[str, list[str]] = {}
        for catalog_id in self.index.candidate_catalogs(cond_list):
            member = self.catalogs.get(catalog_id)
            if member is None:
                continue
            self.subqueries_issued += 1
            names = member.client.query(subquery)
            if names:
                out[catalog_id] = names
        return out

    def query(self, query: ObjectQuery) -> dict[str, list[str]]:
        """Full ObjectQuery across the federation."""
        cond_list = [
            (c.attribute, c.op, c.value) for c in query.conditions
        ]
        out: dict[str, list[str]] = {}
        for catalog_id in self.index.candidate_catalogs(cond_list):
            member = self.catalogs.get(catalog_id)
            if member is None:
                continue
            self.subqueries_issued += 1
            names = member.client.query(query)
            if names:
                out[catalog_id] = names
        return out

    def flat_query(self, conditions: dict[str, Any]) -> list[str]:
        """Merged, de-duplicated name list across all catalogs."""
        merged: set[str] = set()
        for names in self.query_files_by_attributes(conditions).values():
            merged.update(names)
        return sorted(merged)
