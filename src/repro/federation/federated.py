"""The federated query client: index scatter + local-catalog subqueries."""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional

from repro import faults as _faults
from repro.core.query import ObjectQuery
from repro.obs import trace as _trace
from repro.federation.indexnode import MCSIndexNode
from repro.federation.localcatalog import LocalMCS
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.retry import RETRY_ATTEMPTS, RetryPolicy
from repro.soap.envelope import SoapFault
from repro.soap.errors import CircuitOpenError, EncodingError, TransportError


@dataclass
class FederationResult:
    """Outcome of a federated query that may have degraded gracefully.

    ``results`` maps catalog id → matching names; ``skipped`` maps
    catalog id → the reason it contributed nothing (open circuit,
    transport failure after retries, ...).  ``partial`` is True whenever
    any candidate catalog was skipped — the caller knows the answer may
    be an undercount.
    """

    results: dict[str, list[str]] = field(default_factory=dict)
    skipped: dict[str, str] = field(default_factory=dict)

    @property
    def partial(self) -> bool:
        return bool(self.skipped)


class FederatedMCS:
    """Queries a federation of local catalogs through an index node.

    The client (1) asks the index node which catalogs might match, then
    (2) issues the full query only to those catalogs, merging the name
    lists with catalog provenance attached.

    Each member is guarded by its own circuit breaker; with a
    ``retry_policy`` the per-member subquery retries transient failures
    with the policy's backoff.  :meth:`query` keeps the historical strict
    semantics (a failing member raises); :meth:`query_detailed` degrades
    gracefully instead, skipping broken or open-circuit members and
    flagging the result as partial.
    """

    def __init__(
        self,
        index: MCSIndexNode,
        catalogs: Mapping[str, LocalMCS],
        retry_policy: Optional[RetryPolicy] = None,
        breaker_factory: Optional[Callable[[str], CircuitBreaker]] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.index = index
        self.catalogs = dict(catalogs)
        self.subqueries_issued = 0
        self.retry_policy = retry_policy
        self._breaker_factory = breaker_factory or (
            lambda catalog_id: CircuitBreaker(f"fed:{catalog_id}")
        )
        self._breakers: dict[str, CircuitBreaker] = {}
        self._sleep = sleep

    def breaker(self, catalog_id: str) -> CircuitBreaker:
        """The member's circuit breaker (created on first use)."""
        guard = self._breakers.get(catalog_id)
        if guard is None:
            guard = self._breaker_factory(catalog_id)
            self._breakers[catalog_id] = guard
        return guard

    def refresh_all(self) -> None:
        """Push fresh summaries from every catalog (the soft-state tick)."""
        for member in self.catalogs.values():
            self.index.receive_summary(member.make_summary())

    def query_files_by_attributes(
        self, conditions: dict[str, Any]
    ) -> dict[str, list[str]]:
        """Deprecated: build an :class:`ObjectQuery` and call :meth:`query`."""
        warnings.warn(
            "FederatedMCS.query_files_by_attributes() is deprecated; "
            "build an ObjectQuery and call query() instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.query(self._equality_query(conditions))

    def query(self, query: ObjectQuery) -> dict[str, list[str]]:
        """Full ObjectQuery across the federation; member failures raise."""
        return self.query_detailed(query, strict=True).results

    def query_detailed(
        self, query: ObjectQuery, strict: bool = False
    ) -> FederationResult:
        """Federated query with graceful degradation.

        A member whose breaker is open, or that keeps failing after the
        retry budget, is recorded in ``skipped`` instead of sinking the
        whole scatter (unless ``strict``).
        """
        cond_list = [(c.attribute, c.op, c.value) for c in query.conditions]
        result = FederationResult()
        for catalog_id in self.index.candidate_catalogs(cond_list):
            member = self.catalogs.get(catalog_id)
            if member is None:
                continue
            try:
                names = self._subquery(catalog_id, member, query)
            except CircuitOpenError:
                if strict:
                    raise
                result.skipped[catalog_id] = "circuit-open"
                continue
            except (TransportError, EncodingError, SoapFault) as exc:
                if strict:
                    raise
                result.skipped[catalog_id] = f"{type(exc).__name__}: {exc}"
                continue
            if names:
                result.results[catalog_id] = names
        return result

    def flat_query(self, conditions: dict[str, Any]) -> list[str]:
        """Merged, de-duplicated name list across all catalogs."""
        merged: set[str] = set()
        for names in self.query(self._equality_query(conditions)).values():
            merged.update(names)
        return sorted(merged)

    def _subquery(
        self, catalog_id: str, member: LocalMCS, query: ObjectQuery
    ) -> list[str]:
        """One member subquery: breaker admission, injection, retries."""
        from repro.resilience.transport import RETRYABLE_FAULT_CODES

        policy = self.retry_policy
        guard = self.breaker(catalog_id)
        attempt = 0
        with _trace.span("fed.subquery", member=catalog_id):
            while True:
                attempt += 1
                if not guard.allow():
                    _trace.annotate(f"breaker open member={catalog_id}")
                    raise CircuitOpenError(
                        f"circuit open for federation member {catalog_id!r}"
                    )
                self.subqueries_issued += 1
                try:
                    inj = _faults.check("fed.query", catalog_id)
                    if inj is not None:
                        inj.fail()
                    names = member.client.query(query)
                except SoapFault as fault:
                    if fault.code not in RETRYABLE_FAULT_CODES:
                        guard.record_success()  # the member answered
                        raise
                    guard.record_failure()
                    if policy is None or attempt >= policy.max_attempts:
                        raise
                    RETRY_ATTEMPTS.labels(f"fed:{catalog_id}", "retried").inc()
                    _trace.annotate(
                        f"retry attempt={attempt} member={catalog_id}"
                    )
                    self._sleep(policy.backoff(attempt))
                    continue
                except (TransportError, EncodingError):
                    guard.record_failure()
                    if policy is None or attempt >= policy.max_attempts:
                        RETRY_ATTEMPTS.labels(
                            f"fed:{catalog_id}", "exhausted"
                        ).inc()
                        raise
                    RETRY_ATTEMPTS.labels(f"fed:{catalog_id}", "retried").inc()
                    _trace.annotate(
                        f"retry attempt={attempt} member={catalog_id}"
                    )
                    self._sleep(policy.backoff(attempt))
                    continue
                guard.record_success()
                return names

    @staticmethod
    def _equality_query(conditions: dict[str, Any]) -> ObjectQuery:
        query = ObjectQuery()
        for attr, value in conditions.items():
            query.where(attr, "=", value)
        return query
