"""Asyncio pipelined SOAP front end (stdlib-only).

One event loop multiplexes thousands of keep-alive connections; decoded
envelopes run on a bounded thread pool through the same
:class:`~repro.soap.server.SoapDispatcher` pipeline as the threaded
server, so chaos and observability semantics are identical under either
front end.  See :mod:`repro.aserve.server` for the architecture notes.
"""

from repro.aserve.httpproto import (
    DEFAULT_MAX_BODY_BYTES,
    DEFAULT_MAX_HEADER_BYTES,
    HttpProtocolError,
    HttpRequest,
    RequestParser,
    render_response,
)
from repro.aserve.scan import fast_response, scan_request
from repro.aserve.server import AsyncSoapServer

__all__ = [
    "AsyncSoapServer",
    "DEFAULT_MAX_BODY_BYTES",
    "DEFAULT_MAX_HEADER_BYTES",
    "HttpProtocolError",
    "HttpRequest",
    "RequestParser",
    "fast_response",
    "render_response",
    "scan_request",
]
