"""Hot-path envelope codecs: a streaming scanner and response templates.

The generic SOAP codec builds a full ElementTree for every envelope.
For the request shapes that dominate real traffic — one ``<Call>`` with
scalar arguments, produced by our own clients — that tree is pure
overhead: the grammar is fixed, so a single left-to-right scan over the
bytes recovers the same :class:`~repro.soap.envelope.ParsedRequest`
without allocating a tree.  Symmetrically, the responses hot operations
produce (``None``/bool/int/str results, lists of names from ``query``)
serialize into byte templates that skip ElementTree entirely.

Both paths are **accelerators, not a second protocol**: they handle a
deliberately narrow grammar and return ``None`` for anything else, and
the dispatcher falls back to the full codec.  Anything that could parse
differently from ElementTree — entity escapes (``&``), carriage returns
(whose text expat normalizes), nested values, foreign namespaces — is a
bail-out, so the fast path can never *disagree* with the slow path, only
decline.  ``tests/aserve/test_scan.py`` fuzzes that equivalence, and the
template side asserts byte-equality with ``build_response``.
"""

from __future__ import annotations

import re
from typing import Any, Optional

from repro.obs.metrics import OBS, counter as _obs_counter
from repro.soap.envelope import ParsedRequest

_SCANS = _obs_counter(
    "mcs_aserve_scan_total",
    "Envelope-scanner outcomes (hit = full-tree XML parse avoided)",
    labels=("outcome",),
)
_SCAN_HIT = _SCANS.labels("hit")
_SCAN_MISS = _SCANS.labels("miss")
_TEMPLATES = _obs_counter(
    "mcs_aserve_template_responses_total",
    "Responses serialized from a pre-built template (no ElementTree)",
)

_ENVELOPE_OPEN = b'<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/">'
_HEADER_ELEMENT = re.compile(
    rb"<([A-Za-z][A-Za-z0-9]*)(?: />|>([^<]*)</([A-Za-z][A-Za-z0-9]*)>)"
)
_CALL_OPEN = re.compile(rb'<Call method="([^"<>\n\t]*)"(?:( />)|>)')
_ARG_OPEN = re.compile(rb'<arg name="([^"<>\n\t]*)">')
_VALUE = re.compile(
    rb'<value t="(null|boolean|int|double|string)"(?: />|>([^<]*)</value>)'
)


def _decode_scalar(kind: bytes, text: Optional[bytes]) -> Any:
    raw = text or b""
    if kind == b"null":
        return None
    if kind == b"boolean":
        return raw == b"1"
    if kind == b"int":
        return int(raw)  # ValueError bails to the full parse
    if kind == b"double":
        return float(raw)
    return raw.decode("utf-8")


def scan_request(payload: bytes) -> Optional[ParsedRequest]:
    """Decode a single-``<Call>``, scalar-args envelope without a tree.

    Returns ``None`` whenever the payload strays from the narrow grammar
    our own clients emit — the caller then runs the full XML parse.
    """
    try:
        parsed = _scan(payload)
    except (ValueError, UnicodeDecodeError):
        parsed = None
    if OBS.enabled:
        (_SCAN_HIT if parsed is not None else _SCAN_MISS).inc()
    return parsed


def _scan(payload: bytes) -> Optional[ParsedRequest]:
    # Entities would need unescaping; expat normalizes \r out of text.
    # Either would make the scan disagree with the tree parse: bail.
    if b"&" in payload or b"\r" in payload:
        return None
    if not payload.startswith(_ENVELOPE_OPEN):
        return None
    pos = len(_ENVELOPE_OPEN)
    request_id: Optional[str] = None
    headers: dict[str, str] = {}
    if payload.startswith(b"<Header>", pos):
        pos += len(b"<Header>")
        while not payload.startswith(b"</Header>", pos):
            match = _HEADER_ELEMENT.match(payload, pos)
            if match is None:
                return None
            name_b, text, close = match.group(1), match.group(2), match.group(3)
            if close is not None and close != name_b:
                return None
            name = name_b.decode("ascii")
            if name == "RequestId":
                request_id = None if text is None else text.decode("utf-8")
            else:
                headers[name] = (text or b"").decode("utf-8")
            pos = match.end()
        pos += len(b"</Header>")
    if not payload.startswith(b"<Body>", pos):
        return None
    pos += len(b"<Body>")
    call = _CALL_OPEN.match(payload, pos)
    if call is None:
        return None
    method = call.group(1).decode("utf-8")
    if not method:
        return None
    pos = call.end()
    args: dict[str, Any] = {}
    if call.group(2) is None:  # open tag: scan <arg> children
        while not payload.startswith(b"</Call>", pos):
            arg = _ARG_OPEN.match(payload, pos)
            if arg is None:
                return None
            pos = arg.end()
            value = _VALUE.match(payload, pos)
            if value is None:
                return None
            args[arg.group(1).decode("utf-8")] = _decode_scalar(
                value.group(1), value.group(2)
            )
            pos = value.end()
            if not payload.startswith(b"</arg>", pos):
                return None
            pos += len(b"</arg>")
        pos += len(b"</Call>")
    if payload[pos:] != b"</Body></Envelope>":
        return None
    return ParsedRequest(
        calls=[(method, args)],
        bulk=False,
        request_id=request_id,
        headers=headers,
    )


# --------------------------------------------------------------------------
# Pre-serialized response templates
# --------------------------------------------------------------------------

_RESP_PREFIX = (
    b'<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/">'
    b"<Body><Response>"
)
_RESP_SUFFIX = b"</Response></Body></Envelope>"

_NONE_RESPONSE = _RESP_PREFIX + b'<result t="null" />' + _RESP_SUFFIX
_TRUE_RESPONSE = _RESP_PREFIX + b'<result t="boolean">1</result>' + _RESP_SUFFIX
_FALSE_RESPONSE = _RESP_PREFIX + b'<result t="boolean">0</result>' + _RESP_SUFFIX
_EMPTY_STR_RESPONSE = _RESP_PREFIX + b'<result t="string" />' + _RESP_SUFFIX
_EMPTY_LIST_RESPONSE = _RESP_PREFIX + b'<result t="array" />' + _RESP_SUFFIX

#: Characters ElementTree would escape in text — a string containing any
#: of them takes the generic path so template bytes stay identical to
#: ``build_response`` output.
_UNSAFE_TEXT = re.compile(r"[&<>\r]")


def _safe_text(value: str) -> bool:
    return _UNSAFE_TEXT.search(value) is None


def fast_response(result: Any) -> Optional[bytes]:
    """Template-serialize a hot result shape; ``None`` → generic codec.

    Byte-for-byte identical to
    :func:`repro.soap.envelope.build_response` for every shape it
    accepts (pinned by ``tests/aserve/test_scan.py``).
    """
    body = _render(result)
    if body is not None and OBS.enabled:
        _TEMPLATES.inc()
    return body


def _render(result: Any) -> Optional[bytes]:
    if result is None:
        return _NONE_RESPONSE
    if result is True:
        return _TRUE_RESPONSE
    if result is False:
        return _FALSE_RESPONSE
    if isinstance(result, int):
        return (
            _RESP_PREFIX
            + b'<result t="int">'
            + str(result).encode("ascii")
            + b"</result>"
            + _RESP_SUFFIX
        )
    if isinstance(result, str):
        if not result:
            return _EMPTY_STR_RESPONSE
        if not _safe_text(result):
            return None
        return (
            _RESP_PREFIX
            + b'<result t="string">'
            + result.encode("utf-8")
            + b"</result>"
            + _RESP_SUFFIX
        )
    if isinstance(result, list):
        if not result:
            return _EMPTY_LIST_RESPONSE
        parts = [_RESP_PREFIX, b'<result t="array">']
        for item in result:
            # The hot list shape is query()'s list of logical names.
            if not isinstance(item, str) or isinstance(item, bool):
                return None
            if not item or not _safe_text(item):
                return None
            parts.append(b'<item t="string">' + item.encode("utf-8") + b"</item>")
        parts.append(b"</result>")
        parts.append(_RESP_SUFFIX)
        return b"".join(parts)
    return None
