"""Asyncio pipelined SOAP front end.

``AsyncSoapServer`` terminates sockets on a selector event loop and runs
the *same* dispatch pipeline as the threaded :class:`~repro.soap.server.
SoapServer` — one :class:`~repro.soap.server.SoapDispatcher` carries the
envelope codec, trace/deadline adoption, idempotency replay, fault
mapping and SLO accounting for both front ends, so swapping servers
changes connection mechanics and nothing else.

The division of labor per connection:

* the **event loop** owns every socket: it feeds arriving bytes to a
  sans-IO :class:`~repro.aserve.httpproto.RequestParser`, frames
  responses, and enforces read deadlines.  An idle keep-alive connection
  costs one parser buffer and no thread, which is what lets one process
  hold thousands of mostly-idle clients;
* a **bounded thread pool** runs the dispatch path (handler code is
  synchronous and may block on locks, the DB engine, or injected
  faults).  ``loop.run_in_executor`` bridges the two worlds; the
  executor's queue is the same backpressure point the threaded server's
  worker semaphore provides.

Pipelining: a client may write several requests back-to-back without
waiting.  Each parsed request is submitted to the pool immediately, and
a per-connection writer task emits responses strictly in request order
(HTTP/1.1 requires it).  At most ``max_pipeline`` responses may be in
flight per connection — beyond that the reader stops consuming the
socket and TCP pushes back on the client.
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time
import urllib.parse
from typing import Any, Optional, Union

from repro.obs.log import get_logger
from repro.obs.metrics import (
    OBS,
    counter as _obs_counter,
    gauge as _obs_gauge,
)
from repro.soap.server import (
    FaultMapper,
    Handler,
    SoapDispatcher,
    collection_get,
)
from repro.soap.wsdl import ServiceDescription

from repro.aserve.httpproto import (
    DEFAULT_MAX_BODY_BYTES,
    DEFAULT_MAX_HEADER_BYTES,
    HttpProtocolError,
    HttpRequest,
    RequestParser,
    reason_for,
    render_response,
)
from repro.aserve.scan import fast_response, scan_request

_log = get_logger("repro.aserve")

_CONNS_OPEN = _obs_gauge(
    "mcs_aserve_connections_open", "Currently open async front-end connections"
)
_CONNS_TOTAL = _obs_counter(
    "mcs_aserve_connections_total", "Async front-end connections accepted"
)
_INFLIGHT = _obs_gauge(
    "mcs_aserve_inflight_requests",
    "Requests handed to the worker pool and not yet answered",
)
_PIPELINE_DEPTH = _obs_gauge(
    "mcs_aserve_pipeline_depth",
    "Responses pending in per-connection pipeline queues",
)
_PARSE_ERRORS = _obs_counter(
    "mcs_aserve_parse_errors_total",
    "Connections failed on malformed or abusive HTTP framing",
)

_TEXT = "text/plain; charset=utf-8"
_XML = "text/xml; charset=utf-8"

#: Queue items: (response, close_after).  The response is either final
#: bytes or an awaitable producing them; ``None`` ends the writer.
_Payload = Union[bytes, "asyncio.Future[bytes]", Any]
_QueueItem = Optional[tuple[_Payload, bool]]


class AsyncSoapServer:
    """Event-loop front end over the shared SOAP dispatch pipeline.

    Public surface mirrors :class:`repro.soap.server.SoapServer` —
    ``start``/``stop``, context-manager lifecycle, ``host``/``port``/
    ``endpoint``, ``requests_served``/``faults_served`` — so service and
    shard wiring can substitute one for the other without caring which
    front end terminates the socket.  The loop runs on a daemon thread;
    callers stay synchronous.
    """

    def __init__(
        self,
        handler: Handler,
        host: str = "127.0.0.1",
        port: int = 0,
        description: Optional[ServiceDescription] = None,
        fault_mapper: Optional[FaultMapper] = None,
        max_workers: int = 4,
        max_bulk_items: int = 1024,
        idempotency_cache_size: int = 1024,
        max_pipeline: int = 8,
        header_timeout_s: float = 10.0,
        idle_timeout_s: Optional[float] = None,
        max_header_bytes: int = DEFAULT_MAX_HEADER_BYTES,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    ) -> None:
        self._description = description
        self._dispatcher = SoapDispatcher(
            handler,
            fault_mapper=fault_mapper,
            max_bulk_items=max_bulk_items,
            idempotency_cache_size=idempotency_cache_size,
            # The hot-path accelerators; either may decline per request
            # and the generic codec runs instead.
            scanner=scan_request,
            responder=fast_response,
        )
        self._max_workers = max_workers
        self.max_pipeline = max(1, max_pipeline)
        self._header_timeout_s = header_timeout_s
        self._idle_timeout_s = idle_timeout_s
        self._max_header_bytes = max_header_bytes
        self._max_body_bytes = max_body_bytes
        # Bind in the constructor (like SoapServer) so the endpoint is
        # known before start() — tests and shard wiring rely on it.
        self._sock = socket.create_server((host, port), backlog=128)
        self.host, self.port = self._sock.getsockname()[:2]
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._executor: Optional[Any] = None
        self._thread: Optional[threading.Thread] = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._startup_error: Optional[BaseException] = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "AsyncSoapServer":
        from concurrent.futures import ThreadPoolExecutor

        if self._thread is not None:
            return self
        self._executor = ThreadPoolExecutor(
            max_workers=self._max_workers, thread_name_prefix="aserve-worker"
        )
        self._loop = asyncio.new_event_loop()
        started = threading.Event()
        self._thread = threading.Thread(
            target=self._run_loop, args=(started,), daemon=True
        )
        self._thread.start()
        started.wait(5)
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run_loop(self, started: threading.Event) -> None:
        loop = self._loop
        assert loop is not None
        asyncio.set_event_loop(loop)
        try:
            self._server = loop.run_until_complete(
                asyncio.start_server(self._serve_connection, sock=self._sock)
            )
        except BaseException as exc:  # surface bind/start failures to start()
            self._startup_error = exc
            started.set()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            # Drain whatever stop() left behind, then tear the loop down.
            pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        tasks = [t for t in self._conn_tasks if not t.done()]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    def stop(self) -> None:
        loop = self._loop
        if loop is None or self._thread is None:
            # Never started: just release the listening socket.
            self._sock.close()
            return
        try:
            asyncio.run_coroutine_threadsafe(self._shutdown(), loop).result(5)
        except Exception:  # pragma: no cover - best-effort teardown
            pass
        loop.call_soon_threadsafe(loop.stop)
        self._thread.join(5)
        self._thread = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "AsyncSoapServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    @property
    def requests_served(self) -> int:
        return self._dispatcher.requests_served

    @property
    def faults_served(self) -> int:
        return self._dispatcher.faults_served

    @property
    def endpoint(self) -> tuple[str, int]:
        return self.host, self.port

    # -- per-connection protocol --------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        _CONNS_TOTAL.inc()
        _CONNS_OPEN.inc()
        peername = writer.get_extra_info("peername")
        peer = peername[0] if peername else "<unknown>"
        parser = RequestParser(
            max_header_bytes=self._max_header_bytes,
            max_body_bytes=self._max_body_bytes,
        )
        queue: asyncio.Queue[_QueueItem] = asyncio.Queue(
            maxsize=self.max_pipeline
        )
        writer_task = asyncio.ensure_future(self._write_loop(queue, writer))
        try:
            closing = await self._read_loop(reader, parser, queue, peer)
            if not closing:
                await queue.put(None)
            await writer_task
        except asyncio.CancelledError:
            # Shutdown cancellation is this task's normal teardown path;
            # ending cancelled would make asyncio.streams' done-callback
            # log a spurious traceback, so absorb it and exit cleanly.
            writer_task.cancel()
        finally:
            writer.close()
            _CONNS_OPEN.dec()

    async def _read_loop(
        self,
        reader: asyncio.StreamReader,
        parser: RequestParser,
        queue: "asyncio.Queue[_QueueItem]",
        peer: str,
    ) -> bool:
        """Parse and submit requests until EOF/close.

        Returns True when a close-after item was enqueued (the writer
        ends on it; no sentinel needed).
        """
        while True:
            try:
                request = parser.next_request()
            except HttpProtocolError as err:
                _PARSE_ERRORS.inc()
                _log.debug(
                    "protocol error from %s: %s", peer, err,
                    extra={"client": peer, "status": err.status},
                )
                body = (str(err) + "\n").encode("utf-8", "replace")
                await queue.put(
                    (render_response(err.status, err.reason, _TEXT, body, False), True)
                )
                return True
            if request is not None:
                item = self._start_request(request, peer)
                await queue.put(item)
                _PIPELINE_DEPTH.inc()
                if item[1]:
                    return True
                continue
            timeout = (
                self._header_timeout_s
                if parser.mid_request
                else self._idle_timeout_s
            )
            try:
                chunk = await asyncio.wait_for(reader.read(65536), timeout)
            except asyncio.TimeoutError:
                if parser.mid_request:
                    # Slowloris: a request that started framing and then
                    # stalled. Answer and hang up; an *idle* keep-alive
                    # connection never lands here unless idle_timeout_s
                    # is configured.
                    _PARSE_ERRORS.inc()
                    await queue.put(
                        (
                            render_response(
                                408,
                                "Request Timeout",
                                _TEXT,
                                b"request framing timed out\n",
                                False,
                            ),
                            True,
                        )
                    )
                    return True
                return False
            except (ConnectionError, OSError):
                return False
            if not chunk:
                return False
            parser.feed(chunk)

    async def _write_loop(
        self, queue: "asyncio.Queue[_QueueItem]", writer: asyncio.StreamWriter
    ) -> None:
        """Emit responses in request order; one writer per connection.

        After a transport error the loop keeps *consuming* (so producer
        puts never deadlock and executor results are retrieved) but
        stops writing.
        """
        broken = False
        while True:
            item = await queue.get()
            if item is None:
                return
            payload, close_after = item
            if isinstance(payload, (bytes, bytearray)):
                data = bytes(payload)
            else:
                data = await payload
            _PIPELINE_DEPTH.dec()
            if not broken:
                try:
                    writer.write(data)
                    await writer.drain()
                except (ConnectionError, OSError):
                    broken = True
            if close_after:
                return

    # -- request routing ----------------------------------------------------

    def _start_request(
        self, request: HttpRequest, peer: str
    ) -> tuple[_Payload, bool]:
        """Route one framed request; dispatch work starts immediately.

        Returns ``(payload, close_after)`` for the writer queue.  POST
        and GET submit to the worker pool *now* (pipelined requests
        overlap in the pool) and hand the writer an awaitable; cheap
        error answers are plain bytes.
        """
        keep = request.keep_alive
        loop = asyncio.get_event_loop()
        if request.method == "POST":
            if request.target.split("?", 1)[0] != "/soap":
                self._dispatcher.count_request(fault=False)
                return (
                    render_response(404, "Not Found", _TEXT, b"not found\n", keep),
                    not keep,
                )
            start = time.perf_counter() if OBS.enabled else 0.0
            _INFLIGHT.inc()
            assert self._executor is not None
            future = loop.run_in_executor(
                self._executor,
                self._dispatcher.dispatch,
                request.body,
                peer,
                start,
            )
            return self._frame_dispatch(future, keep), not keep
        if request.method == "GET":
            parts = urllib.parse.urlsplit(request.target)
            query = urllib.parse.parse_qs(parts.query)
            assert self._executor is not None
            # collection_get may block (/profile samples the process), so
            # it runs on a worker thread like everything else that might.
            future = loop.run_in_executor(
                self._executor,
                collection_get,
                parts.path,
                query,
                self._description,
                (self.host, self.port),
            )
            return self._frame_get(future, keep), not keep
        return (
            render_response(
                501, "Not Implemented", _TEXT, b"method not implemented\n", keep
            ),
            not keep,
        )

    async def _frame_dispatch(
        self, future: "asyncio.Future[Any]", keep: bool
    ) -> bytes:
        try:
            result = await future
        except Exception:
            _log.exception("dispatch raised past the fault mapper")
            return render_response(
                500, "Internal Server Error", _TEXT, b"internal error\n", False
            )
        finally:
            _INFLIGHT.dec()
        return render_response(
            result.status, reason_for(result.status), _XML, result.body, keep
        )

    async def _frame_get(
        self, future: "asyncio.Future[Any]", keep: bool
    ) -> bytes:
        try:
            routed = await future
        except Exception:
            _log.exception("collection GET raised")
            return render_response(
                500, "Internal Server Error", _TEXT, b"internal error\n", False
            )
        if routed is None:
            return render_response(
                404, "Not Found", _TEXT, b"not found\n", keep
            )
        status, ctype, body = routed
        return render_response(status, reason_for(status), ctype, body, keep)
