"""Sans-IO incremental HTTP/1.1 request parser for the asyncio front end.

The parser owns no socket: the server feeds it whatever bytes arrived
and asks for complete requests, so thousands of mostly-idle keep-alive
connections cost one small buffer each, and the framing logic is
fuzzable byte-by-byte without any event loop (see
``tests/aserve/test_httpproto.py``).

Properties the front end's robustness rests on:

* **Bounded buffers.**  A header section larger than
  ``max_header_bytes`` or a declared body larger than
  ``max_body_bytes`` raises :class:`HttpProtocolError` (431/413) the
  moment the bound is crossed — a slowloris drip or an oversized upload
  can never grow the buffer past the caps.
* **Pipelining.**  Bytes beyond the current request stay buffered;
  :meth:`RequestParser.next_request` yields back-to-back requests
  without further ``feed`` calls, in arrival order.
* **Fail-closed.**  Any malformed framing raises; the connection is
  answered with the carried status code and closed.  The parser is
  single-use after an error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Conservative default caps; generous for SOAP envelopes, small enough
#: that an abusive connection cannot balloon server memory.
DEFAULT_MAX_HEADER_BYTES = 16 * 1024
DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024


class HttpProtocolError(Exception):
    """Malformed or abusive framing; carries the HTTP status to answer."""

    def __init__(self, status: int, reason: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.reason = reason


@dataclass
class HttpRequest:
    """One fully-framed request, ready for routing."""

    method: str
    target: str
    version: str
    headers: dict[str, str]
    body: bytes
    keep_alive: bool


def _decode_latin1(raw: bytes, what: str) -> str:
    try:
        return raw.decode("latin-1")
    except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 is total
        raise HttpProtocolError(400, "Bad Request", f"undecodable {what}") from exc


class RequestParser:
    """Incremental request framing over a byte stream.

    Usage::

        parser.feed(chunk)
        while (request := parser.next_request()) is not None:
            ...handle...

    ``next_request`` returns ``None`` when more bytes are needed and
    raises :class:`HttpProtocolError` on malformed input.
    """

    def __init__(
        self,
        max_header_bytes: int = DEFAULT_MAX_HEADER_BYTES,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    ) -> None:
        self.max_header_bytes = max_header_bytes
        self.max_body_bytes = max_body_bytes
        self._buf = bytearray()
        #: Parsed head waiting for its body: (request-sans-body, length).
        self._pending: Optional[tuple[HttpRequest, int]] = None
        self._broken = False

    # -- feeding -------------------------------------------------------------

    def feed(self, data: bytes) -> None:
        if self._broken:
            raise HttpProtocolError(
                400, "Bad Request", "parser already failed; connection must close"
            )
        self._buf.extend(data)

    @property
    def buffered_bytes(self) -> int:
        """Bytes held for requests not yet yielded (pipelining depth proxy)."""
        return len(self._buf)

    @property
    def mid_request(self) -> bool:
        """True when a request's framing has started but not completed.

        The idle-vs-slowloris distinction: an empty buffer between
        requests is a healthy keep-alive connection, while a partial
        request that stops progressing deserves a read deadline.
        """
        return bool(self._buf) or self._pending is not None

    # -- extraction ----------------------------------------------------------

    def next_request(self) -> Optional[HttpRequest]:
        try:
            return self._next_request()
        except HttpProtocolError:
            self._broken = True
            raise

    def _next_request(self) -> Optional[HttpRequest]:
        if self._pending is not None:
            return self._finish_body()
        # Tolerate inter-request CRLF padding (RFC 9112 §2.2).
        while self._buf[:2] == b"\r\n":
            del self._buf[:2]
        while self._buf[:1] == b"\n":
            del self._buf[:1]
        if not self._buf:
            return None
        end, body_at = self._find_header_end()
        if end < 0:
            if len(self._buf) > self.max_header_bytes:
                raise HttpProtocolError(
                    431,
                    "Request Header Fields Too Large",
                    f"header section exceeds {self.max_header_bytes} bytes",
                )
            return None
        if end > self.max_header_bytes:
            raise HttpProtocolError(
                431,
                "Request Header Fields Too Large",
                f"header section exceeds {self.max_header_bytes} bytes",
            )
        head = bytes(self._buf[:end])
        del self._buf[:body_at]
        request, length = self._parse_head(head)
        self._pending = (request, length)
        return self._finish_body()

    def _finish_body(self) -> Optional[HttpRequest]:
        assert self._pending is not None
        request, length = self._pending
        if len(self._buf) < length:
            return None
        request.body = bytes(self._buf[:length])
        del self._buf[:length]
        self._pending = None
        return request

    def _find_header_end(self) -> tuple[int, int]:
        """Locate the head/body boundary: ``(head_end, body_start)``.

        Accepts both CRLF and bare-LF line endings (curl and test
        harnesses produce either); returns ``(-1, -1)`` when the
        terminator has not arrived yet.
        """
        crlf = self._buf.find(b"\r\n\r\n")
        lf = self._buf.find(b"\n\n")
        candidates = []
        if crlf >= 0:
            candidates.append((crlf, crlf + 4))
        if lf >= 0:
            candidates.append((lf + 1, lf + 2))
        if not candidates:
            return -1, -1
        return min(candidates, key=lambda pair: pair[1])

    def _parse_head(self, head: bytes) -> tuple[HttpRequest, int]:
        lines = head.replace(b"\r\n", b"\n").split(b"\n")
        request_line = _decode_latin1(lines[0], "request line")
        parts = request_line.split(" ")
        if len(parts) != 3:
            raise HttpProtocolError(
                400, "Bad Request", f"malformed request line {request_line!r}"
            )
        method, target, version = parts
        if not method.isalpha() or not method.isupper():
            raise HttpProtocolError(
                400, "Bad Request", f"malformed method {method!r}"
            )
        if version not in ("HTTP/1.1", "HTTP/1.0"):
            raise HttpProtocolError(
                505, "HTTP Version Not Supported", f"unsupported {version!r}"
            )
        headers: dict[str, str] = {}
        for raw in lines[1:]:
            if not raw:
                continue
            line = _decode_latin1(raw, "header line")
            name, sep, value = line.partition(":")
            if not sep or not name or name != name.strip() or " " in name:
                raise HttpProtocolError(
                    400, "Bad Request", f"malformed header line {line!r}"
                )
            headers[name.lower()] = value.strip()
        if "transfer-encoding" in headers:
            # Our clients always frame with Content-Length; a chunked
            # request is answered 501 rather than mis-framed.
            raise HttpProtocolError(
                501, "Not Implemented", "Transfer-Encoding is not supported"
            )
        raw_length = headers.get("content-length", "0")
        if not raw_length.isdigit():
            raise HttpProtocolError(
                400, "Bad Request", f"malformed Content-Length {raw_length!r}"
            )
        length = int(raw_length)
        if length > self.max_body_bytes:
            raise HttpProtocolError(
                413,
                "Content Too Large",
                f"declared body of {length} bytes exceeds {self.max_body_bytes}",
            )
        connection = headers.get("connection", "").lower()
        if version == "HTTP/1.1":
            keep_alive = connection != "close"
        else:
            keep_alive = connection == "keep-alive"
        request = HttpRequest(
            method=method,
            target=target,
            version=version,
            headers=headers,
            body=b"",
            keep_alive=keep_alive,
        )
        return request, length


def render_response(
    status: int,
    reason: str,
    content_type: str,
    body: bytes,
    keep_alive: bool,
) -> bytes:
    """Frame one HTTP/1.1 response (always with Content-Length)."""
    connection = "keep-alive" if keep_alive else "close"
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {connection}\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body


#: Reason phrases for the statuses the front end emits.
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    413: "Content Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    505: "HTTP Version Not Supported",
}


def reason_for(status: int) -> str:
    return REASONS.get(status, "Unknown")
