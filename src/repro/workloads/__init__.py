"""Workload generation for the §7 scalability study.

The paper's setup: databases of 100 k / 1 M / 5 M logical files, 1000
files per collection, 10 user-defined attributes of mixed types per file
and per collection.  :mod:`repro.workloads.population` reproduces that
layout at configurable scale; :mod:`repro.workloads.queries` generates
the matching simple/complex query streams.
"""

from repro.workloads.population import (
    STANDARD_ATTRIBUTES,
    PopulationSpec,
    attribute_values_for,
    populate_catalog,
)
from repro.workloads.queries import QueryWorkload

__all__ = [
    "STANDARD_ATTRIBUTES",
    "PopulationSpec",
    "attribute_values_for",
    "populate_catalog",
    "QueryWorkload",
]
