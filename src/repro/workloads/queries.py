"""Query and operation streams for the §7 measurements."""

from __future__ import annotations

import random
from typing import Any, Optional

from repro.workloads.population import (
    STANDARD_ATTRIBUTES,
    PopulationSpec,
    attribute_values_for,
)


class QueryWorkload:
    """Generates the paper's operation mix against a populated catalog.

    * ``simple_query_args`` — "value match for a single static attribute
      associated with a logical file" (a logical-name lookup);
    * ``complex_query_conditions`` — "value matches for all ten
      user-defined attributes associated with a logical file";
    * ``add_args`` — a new logical file with ten attributes (each add is
      paired with a delete by the driver, keeping the database size
      constant).
    """

    def __init__(self, spec: PopulationSpec, seed: int = 12345) -> None:
        self.spec = spec
        self._rng = random.Random(seed)
        self._add_counter = 0

    # -- simple queries -------------------------------------------------------

    def simple_query_args(self) -> tuple[str, str]:
        """(field, value) for a static-attribute lookup."""
        index = self._rng.randrange(self.spec.total_files)
        return "name", self.spec.file_name(index)

    # -- complex queries ---------------------------------------------------------

    def complex_query_conditions(self, num_attributes: int = 10) -> dict[str, Any]:
        """Conjunctive conditions matching the attribute vector of a
        randomly chosen existing file, truncated to *num_attributes*."""
        if not 1 <= num_attributes <= len(STANDARD_ATTRIBUTES):
            raise ValueError("num_attributes must be between 1 and 10")
        index = self._rng.randrange(self.spec.total_files)
        values = attribute_values_for(index, self.spec)
        names = [name for name, _ in STANDARD_ATTRIBUTES[:num_attributes]]
        return {name: values[name] for name in names}

    # -- add/delete pairs ------------------------------------------------------------

    def add_args(self, worker_id: str = "w") -> tuple[str, dict[str, Any]]:
        """(logical name, attributes) for a fresh add (unique per call)."""
        self._add_counter += 1
        index = self.spec.total_files + self._add_counter
        name = f"add.{worker_id}.{self._add_counter:09d}"
        return name, attribute_values_for(index, self.spec)
