"""Deterministic catalog population (§7 experimental setup).

"For each size, we created logical collections with 1000 logical files
per collection.  With each logical file, we associated 10 user-defined
attributes of different types (string, float, integer, date and
datetime) ... Likewise, we associated 10 attributes with each logical
collection."
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.catalog import MetadataCatalog
from repro.core.errors import DuplicateObjectError

#: The 10 standard workload attributes: (name, type) in the §7 mix.
STANDARD_ATTRIBUTES: tuple[tuple[str, str], ...] = (
    ("wl_str_a", "string"),
    ("wl_str_b", "string"),
    ("wl_str_c", "string"),
    ("wl_int_a", "int"),
    ("wl_int_b", "int"),
    ("wl_float_a", "float"),
    ("wl_float_b", "float"),
    ("wl_date_a", "date"),
    ("wl_dt_a", "datetime"),
    ("wl_str_d", "string"),
)


@dataclass(frozen=True)
class PopulationSpec:
    """Parameters of one populated database."""

    total_files: int
    files_per_collection: int = 1000
    value_cardinality: int = 50
    """Distinct values per attribute; controls complex-query selectivity."""
    seed: int = 0

    @property
    def collections(self) -> int:
        return max(1, -(-self.total_files // self.files_per_collection))

    def file_name(self, index: int) -> str:
        return f"lfn.{self.seed:02d}.{index:09d}"

    def collection_name(self, index: int) -> str:
        return f"coll.{self.seed:02d}.{index:06d}"


def attribute_values_for(index: int, spec: PopulationSpec) -> dict[str, Any]:
    """The 10 attribute values of file #index.

    Values are deterministic functions of the index with period
    ``value_cardinality``, mixed so no two attributes are perfectly
    correlated (each uses a different multiplier).
    """
    card = spec.value_cardinality
    out: dict[str, Any] = {}
    for position, (name, value_type) in enumerate(STANDARD_ATTRIBUTES):
        bucket = (index * (position * 2 + 3) + position) % card
        if value_type == "string":
            out[name] = f"v{bucket:05d}"
        elif value_type == "int":
            out[name] = bucket
        elif value_type == "float":
            out[name] = bucket + 0.5
        elif value_type == "date":
            out[name] = _dt.date(2003, 1, 1) + _dt.timedelta(days=bucket)
        else:  # datetime
            out[name] = _dt.datetime(2003, 1, 1) + _dt.timedelta(hours=bucket)
    return out


def define_standard_attributes(catalog: MetadataCatalog) -> None:
    for name, value_type in STANDARD_ATTRIBUTES:
        try:
            catalog.define_attribute(name, value_type, description="workload attribute")
        except DuplicateObjectError:
            pass


def populate_catalog(
    catalog: MetadataCatalog,
    spec: PopulationSpec,
    progress: Optional[callable] = None,
) -> None:
    """Fill *catalog* per the spec (idempotence is not attempted)."""
    define_standard_attributes(catalog)
    for c in range(spec.collections):
        catalog.create_collection(
            spec.collection_name(c),
            description=f"workload collection {c}",
            attributes=attribute_values_for(c, spec),
            creator="workload",
        )
    for index in range(spec.total_files):
        collection = spec.collection_name(index // spec.files_per_collection)
        catalog.create_file(
            spec.file_name(index),
            data_type="binary",
            collection=collection,
            attributes=attribute_values_for(index, spec),
            creator="workload",
        )
        if progress is not None and index and index % 10000 == 0:
            progress(index)
