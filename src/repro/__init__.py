"""repro — reproduction of "A Metadata Catalog Service for Data Intensive
Applications" (Singh et al., SC 2003).

Subpackages
-----------

``repro.core``
    The Metadata Catalog Service itself: data model, schema, catalog
    operations, attribute-query translation, policy-enforcing service and
    the synchronous client API.
``repro.db``
    The embedded relational database engine backing the catalog.
``repro.soap``
    The SOAP-over-HTTP web service stack (and in-process transports).
``repro.security``
    Simulated GSI (CAs, proxies, signed request tokens), CAS capability
    assertions, and the MCS authorization model.
``repro.rls`` / ``repro.gridftp`` / ``repro.pegasus``
    The surrounding Grid data-management substrate: replica location,
    data transfer, and workflow planning.
``repro.esg`` / ``repro.ligo``
    The paper's two application integrations.
``repro.federation``
    The §9 future-work federated-catalog design.
``repro.workloads`` / ``repro.bench``
    The §7 scalability-study workloads and measurement harness.

Quickest start::

    from repro.core import MCSService, MCSClient, ObjectQuery

    client = MCSClient.in_process(MCSService(), caller="/O=Grid/CN=You")
    client.define_attribute("experiment", "string")
    client.create_logical_file("f1", attributes={"experiment": "pulsar"})
    client.query(ObjectQuery().where("experiment", "=", "pulsar"))
"""

__version__ = "1.1.0"

# Opt-in runtime lock-order sanitizer: instrument the engine's RWLock
# layer for the whole process when REPRO_SANITIZER is set (the
# `pytest -m sanitizer` lane and ad-hoc sanitized runs use this).
import os as _os

if _os.environ.get("REPRO_SANITIZER", "") in ("1", "true", "yes", "on"):
    from repro.analysis import sanitizer as _sanitizer

    _sanitizer.install()
__paper__ = (
    "Singh, Bharathi, Chervenak, Deelman, Kesselman, Manohar, Patil, "
    "Pearlman. A Metadata Catalog Service for Data Intensive Applications. "
    "SC'03, Phoenix, AZ, 2003."
)
