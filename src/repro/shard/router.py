"""ShardedCatalog: one logical catalog over N engine shards.

Drop-in for :class:`repro.core.catalog.MetadataCatalog` in front of
:class:`repro.core.service.MCSService` — every public catalog method is
implemented by routing:

* **Partitioned state** (``logical_file`` and its dependent attribute /
  annotation / transformation / view-membership / ACL rows) lives on
  exactly one shard, chosen by :class:`repro.shard.map.ShardMap`
  (collection affinity: a collection's files co-locate).
* **Replicated state** (collections, views, attribute definitions,
  users, external catalogs, service/collection/view ACLs) is broadcast
  to every shard, so any shard can answer structural reads and each
  shard can run collection joins and cycle checks locally.

Single-shard ops go straight to the owning shard; ordered scatter
queries over-fetch per shard and k-way merge
(:mod:`repro.shard.merge`); bulk batches split per shard and reassemble
per-item results in submission order; cross-shard writes (file moves,
multi-shard atomic bulks, broadcasts) run two-phase commit
(:mod:`repro.shard.twopc`).  Every shard call passes a per-shard
circuit breaker with read retries (``repro.resilience``), a
``shard.call`` fault-injection point, and ``shard.route`` tracing.

Known divergences from a single engine, by design:

* database ids are shard-local (a cross-shard move assigns a new id);
* cross-shard uniqueness of ``(name, version)`` is checked by a scatter
  read before insert, not by a global lock — two racing creates of the
  same name routed to *different* shards can both land;
* replicated rows carry per-shard timestamps.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Callable, Iterable, Optional, Sequence, TypeVar

from repro import faults as _faults
from repro.cache.lru import LRUCache
from repro.core.catalog import MetadataCatalog
from repro.core.errors import (
    DuplicateObjectError,
    InvalidAttributeError,
    ObjectNotFoundError,
    QueryError,
)
from repro.core.model import (
    AttributeDef,
    LogicalCollection,
    LogicalFile,
    LogicalView,
    ObjectType,
    ViewMember,
)
from repro.core.query import AttributeCondition, ObjectQuery
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.retry import RetryPolicy
from repro.shard.map import ShardMap
from repro.shard.merge import merge_sorted
from repro.shard.twopc import ShardOp, TwoPhaseCoordinator
from repro.soap.envelope import SoapFault
from repro.soap.errors import TransportError

T = TypeVar("T")

_OPS_TOTAL = _metrics.counter(
    "mcs_shard_ops_total",
    "Catalog operations by routing kind",
    labels=("kind", "status"),
)
_MERGE_SECONDS = _metrics.histogram(
    "mcs_shard_merge_seconds",
    "Scatter/gather query merge latency",
)


class ShardUnavailableError(TransportError):
    """A shard's circuit breaker rejected the call."""


class _ShardedCacheView:
    """Aggregated view over the per-shard strict-consistency caches."""

    def __init__(self, shards: Sequence[MetadataCatalog]) -> None:
        self._shards = shards

    @property
    def enabled(self) -> bool:
        return all(s.cache.enabled for s in self._shards)

    @enabled.setter
    def enabled(self, flag: bool) -> None:
        for shard in self._shards:
            shard.cache.enabled = flag

    def clear(self) -> None:
        for shard in self._shards:
            shard.cache.clear()

    def stats(self) -> dict[str, Any]:
        out: dict[str, Any] = {"enabled": self.enabled, "shards": len(self._shards)}
        per_shard = [s.cache.stats() for s in self._shards]
        for cache_name in ("attr_def", "object", "query"):
            totals: dict[str, float] = {}
            for stats in per_shard:
                for key, value in stats.get(cache_name, {}).items():
                    if isinstance(value, (int, float)):
                        totals[key] = totals.get(key, 0) + value
            hits, misses = totals.get("hits", 0), totals.get("misses", 0)
            if hits or misses:
                totals["hit_ratio"] = round(hits / (hits + misses), 4)
            out[cache_name] = totals
        return out


class ShardedCatalog:
    """Routes the MetadataCatalog API across independent engine shards."""

    def __init__(
        self,
        shards: Sequence[MetadataCatalog],
        directory: Optional[str] = None,
        retry_policy: Optional[RetryPolicy] = None,
        breaker_threshold: int = 5,
        breaker_reset_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not shards:
            raise ValueError("at least one shard is required")
        self.shards = list(shards)
        self.map = ShardMap(len(self.shards))
        self.coordinator = TwoPhaseCoordinator(self.shards, directory)
        self.recovery_stats = self.coordinator.recover()
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=2, base_delay_s=0.001, max_delay_s=0.01
        )
        self.breakers = [
            CircuitBreaker(
                f"shard-{idx}",
                failure_threshold=breaker_threshold,
                reset_timeout_s=breaker_reset_s,
                clock=clock,
            )
            for idx in range(len(self.shards))
        ]
        # Owning-shard hints (name → shard index) to short-circuit the
        # scatter locate; purely advisory, verified before use.
        self._hints: LRUCache[str, int] = LRUCache(capacity=4096)
        # Router-side compiled MQL statements (parse + compile only; leaf
        # planning is per shard, against each shard's own statistics).
        self._mql_compiled: LRUCache[str, Any] = LRUCache(capacity=128)
        self.cache = _ShardedCacheView(self.shards)

    # -- lifecycle ---------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    @property
    def db(self) -> Any:
        """First shard's engine (compatibility accessor for callers that
        inspect ``catalog.db``; per-shard engines via ``shards[i].db``)."""
        return self.shards[0].db

    def checkpoint(self) -> None:
        for shard in self.shards:
            shard.db.checkpoint()

    def close(self) -> None:
        for shard in self.shards:
            shard.db.close()

    # -- guarded per-shard calls -------------------------------------------

    def _call(
        self,
        idx: int,
        op: str,
        fn: Callable[[MetadataCatalog], T],
        kind: str = "single",
        idempotent: bool = False,
    ) -> T:
        """Run one operation against one shard behind its breaker.

        Transport-level failures (injected or real) trip the breaker and
        are retried for idempotent reads; catalog-domain errors (not
        found, duplicate, ...) are successful calls that raised.
        """
        breaker = self.breakers[idx]
        attempt = 0
        while True:
            attempt += 1
            if not breaker.allow():
                _OPS_TOTAL.labels(kind, "rejected").inc()
                raise ShardUnavailableError(
                    f"shard {idx} unavailable (circuit open) for {op!r}"
                )
            try:
                with _trace.span("shard.route", op=op, shard=str(idx), kind=kind):
                    injection = _faults.check("shard.call", f"{op}@{idx}")
                    if injection is not None:
                        injection.fail()
                    result = fn(self.shards[idx])
            except (TransportError, SoapFault):
                breaker.record_failure()
                _OPS_TOTAL.labels(kind, "error").inc()
                if idempotent and attempt < self.retry_policy.max_attempts:
                    time.sleep(self.retry_policy.backoff(attempt))
                    continue
                raise
            except Exception:
                # Domain error: the shard answered; don't punish it.
                breaker.record_success()
                _OPS_TOTAL.labels(kind, "ok").inc()
                raise
            breaker.record_success()
            _OPS_TOTAL.labels(kind, "ok").inc()
            return result

    def _replicated_read(self, op: str, fn: Callable[[MetadataCatalog], T]) -> T:
        """Read replicated state from the first shard whose breaker admits."""
        last_error: Optional[Exception] = None
        for idx in self.map.all_shards():
            try:
                return self._call(idx, op, fn, kind="replicated", idempotent=True)
            except (ShardUnavailableError, TransportError, SoapFault) as exc:
                last_error = exc
        raise last_error if last_error is not None else ShardUnavailableError(op)

    def _broadcast(
        self, op: str, fn: Callable[[MetadataCatalog], T], primary: int = 0
    ) -> T:
        """Apply a replicated-state write to every shard, primary first.

        The primary (the shard whose answer the caller sees) validates;
        if it raises, no replica has been touched.  Replica failures
        after a primary success indicate replica divergence and
        propagate — deterministic ops on replicated state cannot
        normally disagree.
        """
        result = self._call(primary, op, fn, kind="broadcast")
        for idx in self.map.all_shards():
            if idx != primary:
                self._call(idx, op, fn, kind="broadcast")
        return result

    # -- file location -----------------------------------------------------

    def _locate_file(
        self, name: str, version: Optional[int] = None
    ) -> tuple[int, LogicalFile]:
        """Owning shard of a file (scatter with an advisory hint)."""
        hinted = self._hints.get(name)
        if hinted is not None:
            try:
                file = self._call(
                    hinted,
                    "get_file",
                    lambda s: s.get_file(name, version),
                    idempotent=True,
                )
            except (ObjectNotFoundError, InvalidAttributeError):
                self._hints.discard(name)
            else:
                if version is not None or len(self.list_versions(name)) == 1:
                    return hinted, file
                self._hints.discard(name)
        found: list[tuple[int, LogicalFile]] = []
        ambiguous = False
        for idx in self.map.all_shards():
            try:
                file = self._call(
                    idx,
                    "get_file",
                    lambda s: s.get_file(name, version),
                    kind="scatter",
                    idempotent=True,
                )
                found.append((idx, file))
            except ObjectNotFoundError:
                continue
            except InvalidAttributeError:
                ambiguous = True
        if ambiguous or len(found) > 1:
            total = sum(
                len(self.shards[idx].list_versions(name))
                for idx in self.map.all_shards()
            )
            raise InvalidAttributeError(
                f"logical file {name!r} has {total} versions; "
                "specify one explicitly"
            )
        if not found:
            raise ObjectNotFoundError(f"no logical file {name!r}")
        idx, file = found[0]
        self._hints.put(name, idx)
        return idx, file

    def _exists_elsewhere(
        self, name: str, version: int, home: int
    ) -> bool:
        """Cross-shard (name, version) uniqueness probe before a create.

        This runs on every create, so it deliberately skips the
        per-call span/metric/retry ceremony of :meth:`_call` — the
        probe is a point read against an in-process engine.  Breakers
        and the ``shard.call`` fault layer still apply so chaos plans
        and open circuits behave exactly as for a routed read.
        """
        for idx in self.map.all_shards():
            if idx == home:
                continue
            breaker = self.breakers[idx]
            if not breaker.allow():
                raise ShardUnavailableError(
                    f"shard {idx} unavailable (circuit open) for 'file_exists'"
                )
            # wp-ok: MCS016 hot-path probe skips span ceremony by design (see docstring)
            injection = _faults.check("shard.call", f"file_exists@{idx}")
            try:
                if injection is not None:
                    injection.fail()
                hit = self.shards[idx].file_exists(name, version)
            except (TransportError, SoapFault):
                breaker.record_failure()
                raise
            breaker.record_success()
            if hit:
                return True
        return False

    # ======================================================================
    # Logical files
    # ======================================================================

    def create_file(
        self,
        name: str,
        version: int = 1,
        data_type: Optional[str] = None,
        collection: Optional[str] = None,
        container_id: Optional[str] = None,
        container_service: Optional[str] = None,
        master_copy: Optional[str] = None,
        creator: Optional[str] = None,
        audit_enabled: bool = False,
        attributes: Optional[dict[str, Any]] = None,
    ) -> int:
        idx = self.map.shard_for_file(name, collection)
        if self._exists_elsewhere(name, version, idx):
            raise DuplicateObjectError(
                f"logical file {name!r} version {version} already exists"
            )
        file_id = self._call(
            idx,
            "create_file",
            lambda s: s.create_file(
                name,
                version=version,
                data_type=data_type,
                collection=collection,
                container_id=container_id,
                container_service=container_service,
                master_copy=master_copy,
                creator=creator,
                audit_enabled=audit_enabled,
                attributes=attributes,
            ),
        )
        self._hints.put(name, idx)
        return file_id

    def get_file(self, name: str, version: Optional[int] = None) -> LogicalFile:
        _idx, file = self._locate_file(name, version)
        return file

    def file_exists(self, name: str, version: Optional[int] = None) -> bool:
        try:
            self.get_file(name, version)
            return True
        except ObjectNotFoundError:
            return False

    def list_versions(self, name: str) -> list[int]:
        versions: list[int] = []
        for idx in self.map.all_shards():
            versions.extend(
                self._call(
                    idx,
                    "list_versions",
                    lambda s: s.list_versions(name),
                    kind="scatter",
                    idempotent=True,
                )
            )
        return sorted(versions)

    def update_file(
        self,
        name: str,
        version: Optional[int] = None,
        modifier: Optional[str] = None,
        **changes: Any,
    ) -> None:
        idx, _file = self._locate_file(name, version)
        self._call(
            idx,
            "update_file",
            lambda s: s.update_file(name, version, modifier=modifier, **changes),
        )

    def invalidate_file(
        self,
        name: str,
        version: Optional[int] = None,
        modifier: Optional[str] = None,
    ) -> None:
        self.update_file(name, version, modifier=modifier, valid=False)

    def move_file_to_collection(
        self,
        name: str,
        collection: Optional[str],
        version: Optional[int] = None,
        modifier: Optional[str] = None,
    ) -> None:
        source, file = self._locate_file(name, version)
        if collection is not None:
            # Validate up front, as the single engine does before writing.
            self.get_collection(collection)
        target = self.map.shard_for_file(name, collection)
        if target == source:
            self._call(
                source,
                "move_file_to_collection",
                lambda s: s.move_file_to_collection(
                    name, collection, version=file.version, modifier=modifier
                ),
            )
            return
        state = self._call(
            source,
            "export_file_state",
            lambda s: s.export_file_state(name, version=file.version),
            idempotent=True,
        )
        state["file"]["collection"] = collection
        self.coordinator.run(
            {
                source: [
                    ShardOp(
                        "delete_file", {"name": name, "version": file.version}
                    )
                ],
                target: [
                    ShardOp(
                        "import_file_state",
                        {"state": state, "modifier": modifier},
                    )
                ],
            }
        )
        self._hints.put(name, target)

    def delete_file(self, name: str, version: Optional[int] = None) -> None:
        idx, file = self._locate_file(name, version)
        self._call(
            idx, "delete_file", lambda s: s.delete_file(name, file.version)
        )
        self._hints.discard(name)

    # ======================================================================
    # Collections (replicated)
    # ======================================================================

    def create_collection(
        self,
        name: str,
        parent: Optional[str] = None,
        description: Optional[str] = None,
        creator: Optional[str] = None,
        audit_enabled: bool = False,
        attributes: Optional[dict[str, Any]] = None,
    ) -> int:
        return self._broadcast(
            "create_collection",
            lambda s: s.create_collection(
                name,
                parent=parent,
                description=description,
                creator=creator,
                audit_enabled=audit_enabled,
                attributes=attributes,
            ),
            primary=self.map.shard_for_collection(name),
        )

    def get_collection(self, name: str) -> LogicalCollection:
        return self._replicated_read(
            "get_collection", lambda s: s.get_collection(name)
        )

    def set_collection_parent(self, name: str, parent: Optional[str]) -> None:
        self._broadcast(
            "set_collection_parent",
            lambda s: s.set_collection_parent(name, parent),
            primary=self.map.shard_for_collection(name),
        )

    def delete_collection(self, name: str) -> None:
        # The owning shard sees the collection's files, so it alone can
        # veto a non-empty delete; it must validate first.
        self._broadcast(
            "delete_collection",
            lambda s: s.delete_collection(name),
            primary=self.map.shard_for_collection(name),
        )

    def list_collection(self, name: str) -> list[str]:
        return self._call(
            self.map.shard_for_collection(name),
            "list_collection",
            lambda s: s.list_collection(name),
            idempotent=True,
        )

    def list_subcollections(self, name: str) -> list[str]:
        return self._replicated_read(
            "list_subcollections", lambda s: s.list_subcollections(name)
        )

    def collection_chain(self, name: str) -> list[str]:
        return self._replicated_read(
            "collection_chain", lambda s: s.collection_chain(name)
        )

    def file_collection_chain(
        self, name: str, version: Optional[int] = None
    ) -> list[str]:
        idx, _file = self._locate_file(name, version)
        return self._call(
            idx,
            "file_collection_chain",
            lambda s: s.file_collection_chain(name, version),
            idempotent=True,
        )

    # ======================================================================
    # Views (structure replicated, file members partitioned)
    # ======================================================================

    def create_view(
        self,
        name: str,
        description: Optional[str] = None,
        creator: Optional[str] = None,
        audit_enabled: bool = False,
        attributes: Optional[dict[str, Any]] = None,
    ) -> int:
        return self._broadcast(
            "create_view",
            lambda s: s.create_view(
                name,
                description=description,
                creator=creator,
                audit_enabled=audit_enabled,
                attributes=attributes,
            ),
            primary=self.map.shard_for_name(name),
        )

    def get_view(self, name: str) -> LogicalView:
        return self._replicated_read("get_view", lambda s: s.get_view(name))

    def add_to_view(
        self,
        view: str,
        files: Iterable[str] = (),
        collections: Iterable[str] = (),
        views: Iterable[str] = (),
    ) -> None:
        files = tuple(files)
        collections = tuple(collections)
        views = tuple(views)
        self.get_view(view)  # single-engine validation order: view first
        if collections or views:
            self._broadcast(
                "add_to_view",
                lambda s: s.add_to_view(
                    view, collections=collections, views=views
                ),
                primary=self.map.shard_for_name(view),
            )
        for file_name in files:
            idx, _file = self._locate_file(file_name)
            self._call(
                idx,
                "add_to_view",
                lambda s, f=file_name: s.add_to_view(view, files=(f,)),
            )

    def remove_from_view(
        self,
        view: str,
        files: Iterable[str] = (),
        collections: Iterable[str] = (),
        views: Iterable[str] = (),
    ) -> None:
        files = tuple(files)
        collections = tuple(collections)
        views = tuple(views)
        self.get_view(view)
        if collections or views:
            self._broadcast(
                "remove_from_view",
                lambda s: s.remove_from_view(
                    view, collections=collections, views=views
                ),
                primary=self.map.shard_for_name(view),
            )
        for file_name in files:
            idx, _file = self._locate_file(file_name)
            self._call(
                idx,
                "remove_from_view",
                lambda s, f=file_name: s.remove_from_view(view, files=(f,)),
            )

    def list_view(self, name: str) -> list[ViewMember]:
        primary = self.map.shard_for_name(name)
        members: list[ViewMember] = []
        for member in self._call(
            primary, "list_view", lambda s: s.list_view(name), idempotent=True
        ):
            if member.member_type is not ObjectType.FILE:
                members.append(member)
        for idx in self.map.all_shards():
            for member in self._call(
                idx,
                "list_view",
                lambda s: s.list_view(name),
                kind="scatter",
                idempotent=True,
            ):
                if member.member_type is ObjectType.FILE:
                    members.append(member)
        return sorted(members, key=lambda m: (m.member_type.value, m.name))

    def delete_view(self, name: str) -> None:
        self._broadcast(
            "delete_view",
            lambda s: s.delete_view(name),
            primary=self.map.shard_for_name(name),
        )

    # ======================================================================
    # Attribute definitions (replicated)
    # ======================================================================

    def define_attribute(
        self,
        name: str,
        value_type: Any,
        object_types: Iterable[ObjectType] = (
            ObjectType.FILE,
            ObjectType.COLLECTION,
            ObjectType.VIEW,
        ),
        description: Optional[str] = None,
        creator: Optional[str] = None,
    ) -> int:
        object_types = tuple(object_types)
        return self._broadcast(
            "define_attribute",
            lambda s: s.define_attribute(
                name,
                value_type,
                object_types=object_types,
                description=description,
                creator=creator,
            ),
        )

    def get_attribute_def(self, name: str) -> AttributeDef:
        return self._replicated_read(
            "get_attribute_def", lambda s: s.get_attribute_def(name)
        )

    def list_attribute_defs(self) -> list[AttributeDef]:
        return self._replicated_read(
            "list_attribute_defs", lambda s: s.list_attribute_defs()
        )

    # ======================================================================
    # User-defined attribute values
    # ======================================================================

    def set_attributes(
        self,
        object_type: ObjectType,
        name: str,
        attributes: dict[str, Any],
        version: Optional[int] = None,
    ) -> None:
        if object_type is ObjectType.FILE:
            idx, _file = self._locate_file(name, version)
            self._call(
                idx,
                "set_attributes",
                lambda s: s.set_attributes(object_type, name, attributes, version),
            )
        else:
            self._broadcast(
                "set_attributes",
                lambda s: s.set_attributes(object_type, name, attributes, version),
                primary=self.map.shard_for_name(name),
            )

    def get_attributes(
        self,
        object_type: ObjectType,
        name: str,
        version: Optional[int] = None,
    ) -> dict[str, Any]:
        if object_type is ObjectType.FILE:
            idx, _file = self._locate_file(name, version)
            return self._call(
                idx,
                "get_attributes",
                lambda s: s.get_attributes(object_type, name, version),
                idempotent=True,
            )
        return self._replicated_read(
            "get_attributes",
            lambda s: s.get_attributes(object_type, name, version),
        )

    def remove_attribute(
        self,
        object_type: ObjectType,
        name: str,
        attr_name: str,
        version: Optional[int] = None,
    ) -> None:
        if object_type is ObjectType.FILE:
            idx, _file = self._locate_file(name, version)
            self._call(
                idx,
                "remove_attribute",
                lambda s: s.remove_attribute(object_type, name, attr_name, version),
            )
        else:
            self._broadcast(
                "remove_attribute",
                lambda s: s.remove_attribute(object_type, name, attr_name, version),
                primary=self.map.shard_for_name(name),
            )

    # ======================================================================
    # Query (scatter/gather)
    # ======================================================================

    def query(self, query: ObjectQuery) -> list[str]:
        if query.object_type is not ObjectType.FILE:
            return self._replicated_read("query", lambda s: s.query(query))
        if query.collection is not None:
            # Collection affinity: all of the collection's files live on
            # one shard, so the query runs there unchanged.
            return self._call(
                self.map.shard_for_collection(query.collection),
                "query",
                lambda s: s.query(query),
                idempotent=True,
            )
        return self._scatter_query(query)

    def _per_shard_query(self, query: ObjectQuery) -> ObjectQuery:
        """Rewrite offset/limit for shard-local execution: the global
        offset may fall inside any one shard, so shards over-fetch
        ``offset+limit`` rows from position 0."""
        limit = query.max_results
        if limit is not None:
            limit = limit + (query.skip_results or 0)
        return dataclasses.replace(query, max_results=limit, skip_results=None)

    def _scatter_query(self, query: ObjectQuery) -> list[str]:
        shard_query = self._per_shard_query(query)
        if query.order is None:
            names: list[str] = []
            for idx in self.map.all_shards():
                names.extend(
                    self._call(
                        idx,
                        "query",
                        lambda s: s.query(shard_query),
                        kind="scatter",
                        idempotent=True,
                    )
                )
            skip = query.skip_results or 0
            if query.max_results is not None:
                return names[skip : skip + query.max_results]
            return names[skip:]
        per_shard: list[list[tuple[Any, str]]] = [
            self._call(
                idx,
                "query_rows",
                lambda s: s.query_rows(shard_query),
                kind="scatter",
                idempotent=True,
            )
            for idx in self.map.all_shards()
        ]
        _fieldname, descending = query.order
        started = time.perf_counter()
        merged = merge_sorted(
            per_shard,
            descending=descending,
            offset=query.skip_results,
            limit=query.max_results,
        )
        _MERGE_SECONDS.observe(time.perf_counter() - started)
        return merged

    def explain_query(self, query: ObjectQuery) -> list[str]:
        if query.object_type is ObjectType.FILE and query.collection is None:
            plan = self._call(
                0, "explain_query", lambda s: s.explain_query(query), idempotent=True
            )
            order = "unordered" if query.order is None else f"merge on {query.order[0]}"
            return [f"Scatter [shards={self.shard_count}, {order}]"] + plan
        return self._replicated_read(
            "explain_query", lambda s: s.explain_query(query)
        )

    # -- MQL (scatter/gather over compiled leaves) -------------------------

    @property
    def mql_strategy(self) -> Optional[str]:
        """Forced per-leaf strategy (None / "index" / "join" / "scan"),
        forwarded to every shard so equivalence harnesses can pin the
        whole fleet to one execution strategy at once."""
        return self.shards[0].mql_strategy

    @mql_strategy.setter
    def mql_strategy(self, value: Optional[str]) -> None:
        for shard in self.shards:
            shard.mql_strategy = value

    def _compile_mql(self, text: str) -> Any:
        """Parse + compile once on the router.

        Compilation is purely syntactic (predefined-vs-user attribute
        split is by static name sets), so the cache needs no
        attribute-def generation key — per-shard *planning* carries the
        generation-sensitive state and happens inside each shard's own
        plan cache.  Mixed object types cannot scatter coherently (files
        are partitioned, collections/views replicated) and are rejected
        the way a single engine rejects unknown fields: as a QueryError.
        """
        compiled = self._mql_compiled.get(text)
        if compiled is None:
            from repro import mql
            from repro.mql import compiler as mql_compiler

            compiled = mql_compiler.compile_statement(mql.parse(text))
            self._mql_compiled.put(text, compiled)
        if len(compiled.object_types) > 1:
            names = ", ".join(sorted(t.value for t in compiled.object_types))
            raise QueryError(
                f"sharded MQL statements must stay within one object type; "
                f"this one mixes {names}"
            )
        return compiled

    def query_mql(self, text: str) -> list[str]:
        """Run one MQL statement across the fleet.

        FILE statements scatter per compiled leaf: every shard answers
        ``mql_leaf_rows(leaf)`` with its own planner choice (the three
        strategies are answer-equivalent, so heterogeneous per-shard
        choices cannot skew the result), and the router re-runs the
        dataset algebra, dedup, ordering and pagination over the
        concatenated ``(sort key, name)`` streams.  Collection/view
        statements run whole on any replica.
        """
        from repro.mql import executor as mql_executor

        compiled = self._compile_mql(text)
        if ObjectType.FILE not in compiled.object_types:
            return self._replicated_read("query_mql", lambda s: s.query_mql(text))

        def leaf_runner(leaf: Any) -> list[tuple[Any, str]]:
            rows: list[tuple[Any, str]] = []
            for idx in self.map.all_shards():
                rows.extend(
                    self._call(
                        idx,
                        "mql_leaf_rows",
                        lambda s: s.mql_leaf_rows(leaf),
                        kind="scatter",
                        idempotent=True,
                    )
                )
            return rows

        started = time.perf_counter()
        names = mql_executor.execute_compiled(compiled, leaf_runner)
        _MERGE_SECONDS.observe(time.perf_counter() - started)
        return names

    def explain_mql(self, text: str) -> list[str]:
        """Fleet plan: a scatter header plus shard 0's physical plan
        (replicas share schema and statistics shape; per-shard row counts
        may of course differ)."""
        compiled = self._compile_mql(text)
        if ObjectType.FILE not in compiled.object_types:
            return self._replicated_read(
                "explain_mql", lambda s: s.explain_mql(text)
            )
        plan = self._call(
            0, "explain_mql", lambda s: s.explain_mql(text), idempotent=True
        )
        header = (
            f"Scatter [shards={self.shard_count}, "
            f"merge on {compiled.order_field}, per-leaf]"
        )
        return [header] + plan

    def analyze_attributes(self) -> int:
        """Recompute ``attribute_stats`` on every shard; total rows written."""
        written = 0
        for idx in self.map.all_shards():
            written += self._call(
                idx,
                "analyze_attributes",
                lambda s: s.analyze_attributes(),
                kind="scatter",
            )
        return written

    def query_files_by_attributes(self, conditions: dict[str, Any]) -> list[str]:
        return self.query(
            ObjectQuery(
                object_type=ObjectType.FILE,
                conditions=[
                    AttributeCondition(name, "=", value)
                    for name, value in conditions.items()
                ],
            )
        )

    # ======================================================================
    # Bulk operations (split per shard, reassemble in submission order)
    # ======================================================================

    def bulk_create_files(
        self,
        entries: Sequence[dict[str, Any]],
        creator: Optional[str] = None,
        atomic: bool = True,
    ) -> list[tuple[bool, Any]]:
        if not entries:
            return []
        results: list[Optional[tuple[bool, Any]]] = [None] * len(entries)
        groups: dict[int, list[tuple[int, dict[str, Any]]]] = {}
        batch_homes: dict[tuple[str, int], int] = {}
        for position, entry in enumerate(entries):
            name = entry.get("name")
            if not isinstance(name, str):
                # Let a shard produce the canonical validation error.
                groups.setdefault(0, []).append((position, entry))
                continue
            version = int(entry.get("version", 1))
            idx = self.map.shard_for_file(name, entry.get("collection"))
            duplicate = batch_homes.get((name, version), idx) != idx or (
                self._exists_elsewhere(name, version, idx)
            )
            if duplicate:
                error = DuplicateObjectError(
                    f"logical file {name!r} version {version} already exists"
                )
                if atomic:
                    raise error
                results[position] = (False, error)
                continue
            batch_homes.setdefault((name, version), idx)
            groups.setdefault(idx, []).append((position, entry))
        if atomic and len(groups) > 1:
            self._bulk_create_2pc(groups, creator, results)
        else:
            for idx, group in groups.items():
                sub_entries = [entry for _pos, entry in group]
                sub_results = self._call(
                    idx,
                    "bulk_create_files",
                    lambda s, e=sub_entries: s.bulk_create_files(
                        e, creator=creator, atomic=atomic
                    ),
                    kind="bulk",
                )
                for (position, entry), item in zip(group, sub_results):
                    results[position] = item
                    if item[0] and isinstance(entry.get("name"), str):
                        self._hints.put(entry["name"], idx)
        return [item if item is not None else (False, RuntimeError("unrouted"))
                for item in results]

    def _bulk_create_2pc(
        self,
        groups: dict[int, list[tuple[int, dict[str, Any]]]],
        creator: Optional[str],
        results: list[Optional[tuple[bool, Any]]],
    ) -> None:
        """Atomic multi-shard create: validate, then two-phase commit."""

        def validate() -> None:
            ordered = sorted(
                (position, idx, entry)
                for idx, group in groups.items()
                for position, entry in group
            )
            for _position, idx, entry in ordered:
                self._validate_create_entry(self.shards[idx], entry)

        ops = {
            idx: [
                ShardOp(
                    "bulk_create_files",
                    {
                        "entries": [entry for _pos, entry in group],
                        "creator": creator,
                        "atomic": True,
                    },
                )
            ]
            for idx, group in groups.items()
        }
        shard_results = self.coordinator.run(ops, validate=validate)
        for idx, group in groups.items():
            for (position, entry), item in zip(group, shard_results[idx][0]):
                results[position] = item
                if item[0]:
                    self._hints.put(entry["name"], idx)

    @staticmethod
    def _validate_create_entry(shard: MetadataCatalog, entry: dict[str, Any]) -> None:
        """Re-create the failure modes of a shard-local create without
        writing, so a doomed atomic batch aborts before prepare."""
        from repro.core.catalog import _coerce_attr_value

        kwargs = MetadataCatalog._file_entry_kwargs(entry)
        if kwargs["collection"] is not None:
            shard.get_collection(kwargs["collection"])
        if shard.file_exists(kwargs["name"], kwargs["version"]):
            raise DuplicateObjectError(
                f"logical file {kwargs['name']!r} version "
                f"{kwargs['version']} already exists"
            )
        for attr_name, value in (kwargs["attributes"] or {}).items():
            definition = shard.get_attribute_def(attr_name)
            if ObjectType.FILE not in definition.object_types:
                raise InvalidAttributeError(
                    f"attribute {attr_name!r} does not apply to files"
                )
            _coerce_attr_value(definition, value)

    def bulk_set_attributes(
        self,
        items: Sequence[dict[str, Any]],
        atomic: bool = True,
    ) -> list[tuple[bool, Any]]:
        if not items:
            return []
        results: list[Optional[tuple[bool, Any]]] = [None] * len(items)
        # Per-shard groups; a replicated-object item appears in every
        # group but reports the outcome from its primary shard.
        groups: dict[int, list[tuple[int, dict[str, Any], bool]]] = {}
        for position, item in enumerate(items):
            try:
                idx, broadcast = self._route_attr_item(item)
            except Exception as exc:  # noqa: BLE001 - per-item boundary
                if atomic:
                    raise
                results[position] = (False, exc)
                continue
            if broadcast:
                for shard_idx in self.map.all_shards():
                    groups.setdefault(shard_idx, []).append(
                        (position, item, shard_idx == idx)
                    )
            else:
                groups.setdefault(idx, []).append((position, item, True))
        if atomic and len(groups) > 1:
            self._bulk_set_attributes_2pc(groups, results)
        else:
            for idx, group in groups.items():
                sub_items = [item for _pos, item, _primary in group]
                sub_results = self._call(
                    idx,
                    "bulk_set_attributes",
                    lambda s, i=sub_items: s.bulk_set_attributes(i, atomic=atomic),
                    kind="bulk",
                )
                for (position, _item, primary), outcome in zip(group, sub_results):
                    if primary:
                        results[position] = outcome
        return [item if item is not None else (False, RuntimeError("unrouted"))
                for item in results]

    def _route_attr_item(self, item: dict[str, Any]) -> tuple[int, bool]:
        """(shard, is_replicated) for one bulk-attribute item; raises the
        same error a single engine would for an unroutable item."""
        raw_type = item.get("object_type", ObjectType.FILE)
        otype = raw_type if isinstance(raw_type, ObjectType) else ObjectType(raw_type)
        if "name" not in item:
            raise InvalidAttributeError("bulk attribute item missing 'name'")
        name = item["name"]
        if otype is not ObjectType.FILE:
            return self.map.shard_for_name(name), True
        idx, _file = self._locate_file(name, item.get("version"))
        return idx, False

    def _bulk_set_attributes_2pc(
        self,
        groups: dict[int, list[tuple[int, dict[str, Any], bool]]],
        results: list[Optional[tuple[bool, Any]]],
    ) -> None:
        def validate() -> None:
            seen: set[int] = set()
            ordered = sorted(
                (position, idx, item)
                for idx, group in groups.items()
                for position, item, primary in group
                if primary
            )
            for position, idx, item in ordered:
                if position in seen:
                    continue
                seen.add(position)
                self._validate_attr_item(self.shards[idx], item)

        ops = {
            idx: [
                ShardOp(
                    "bulk_set_attributes",
                    {
                        "items": [item for _pos, item, _primary in group],
                        "atomic": True,
                    },
                )
            ]
            for idx, group in groups.items()
        }
        shard_results = self.coordinator.run(ops, validate=validate)
        for idx, group in groups.items():
            for (position, _item, primary), outcome in zip(
                group, shard_results[idx][0]
            ):
                if primary:
                    results[position] = outcome

    @staticmethod
    def _validate_attr_item(shard: MetadataCatalog, item: dict[str, Any]) -> None:
        from repro.core.catalog import _coerce_attr_value

        raw_type = item.get("object_type", ObjectType.FILE)
        otype = raw_type if isinstance(raw_type, ObjectType) else ObjectType(raw_type)
        name, version = item["name"], item.get("version")
        if otype is ObjectType.FILE:
            shard.get_file(name, version)
        elif otype is ObjectType.COLLECTION:
            shard.get_collection(name)
        else:
            shard.get_view(name)
        for attr_name, value in (item.get("attributes") or {}).items():
            definition = shard.get_attribute_def(attr_name)
            if otype not in definition.object_types:
                raise InvalidAttributeError(
                    f"attribute {attr_name!r} does not apply to {otype.value}s"
                )
            _coerce_attr_value(definition, value)

    def bulk_query(self, queries: Sequence[ObjectQuery]) -> list[tuple[bool, Any]]:
        results: list[tuple[bool, Any]] = []
        for query in queries:
            try:
                results.append((True, self.query(query)))
            except Exception as exc:  # noqa: BLE001 - per-item boundary
                results.append((False, exc))
        return results

    # ======================================================================
    # Annotations, provenance, audit
    # ======================================================================

    def annotate(
        self,
        object_type: ObjectType,
        name: str,
        text: str,
        creator: str,
        version: Optional[int] = None,
    ) -> None:
        if object_type is ObjectType.FILE:
            idx, _file = self._locate_file(name, version)
            self._call(
                idx,
                "annotate",
                lambda s: s.annotate(object_type, name, text, creator, version),
            )
        else:
            self._broadcast(
                "annotate",
                lambda s: s.annotate(object_type, name, text, creator, version),
                primary=self.map.shard_for_name(name),
            )

    def annotations(
        self,
        object_type: ObjectType,
        name: str,
        version: Optional[int] = None,
    ) -> list[Any]:
        if object_type is ObjectType.FILE:
            idx, _file = self._locate_file(name, version)
            return self._call(
                idx,
                "annotations",
                lambda s: s.annotations(object_type, name, version),
                idempotent=True,
            )
        return self._replicated_read(
            "annotations", lambda s: s.annotations(object_type, name, version)
        )

    def add_transformation(
        self, file_name: str, description: str, version: Optional[int] = None
    ) -> None:
        idx, _file = self._locate_file(file_name, version)
        self._call(
            idx,
            "add_transformation",
            lambda s: s.add_transformation(file_name, description, version),
        )

    def transformations(
        self, file_name: str, version: Optional[int] = None
    ) -> list[Any]:
        idx, _file = self._locate_file(file_name, version)
        return self._call(
            idx,
            "transformations",
            lambda s: s.transformations(file_name, version),
            idempotent=True,
        )

    def record_audit(
        self,
        object_type: ObjectType,
        object_id: int,
        action: str,
        detail: str,
        actor: str,
        name: Optional[str] = None,
        version: Optional[int] = None,
    ) -> None:
        if object_type is ObjectType.FILE and name is not None:
            try:
                idx, _file = self._locate_file(name, version)
            except (ObjectNotFoundError, InvalidAttributeError):
                # Post-delete audit: the row is gone; hash placement keeps
                # the record findable without a live file.
                idx = self._hints.get(name)
                if idx is None:
                    idx = self.map.shard_for_name(name)
            self._call(
                idx,
                "record_audit",
                lambda s: s.record_audit(
                    object_type, object_id, action, detail, actor
                ),
            )
        elif object_type in (ObjectType.COLLECTION, ObjectType.VIEW) and name:
            # Replicated objects have shard-local ids: each replica must
            # key the audit row by its own id for audit_log to find it.
            def _record(shard: MetadataCatalog) -> None:
                if object_type is ObjectType.COLLECTION:
                    local_id = shard.get_collection(name).id
                else:
                    local_id = shard.get_view(name).id
                shard.record_audit(object_type, local_id, action, detail, actor)

            self._broadcast("record_audit", _record)
        else:
            self._broadcast(
                "record_audit",
                lambda s: s.record_audit(
                    object_type, object_id, action, detail, actor
                ),
            )

    def audit_log(
        self,
        object_type: ObjectType,
        name: str,
        version: Optional[int] = None,
    ) -> list[Any]:
        if object_type is ObjectType.FILE:
            idx, _file = self._locate_file(name, version)
            return self._call(
                idx,
                "audit_log",
                lambda s: s.audit_log(object_type, name, version),
                idempotent=True,
            )
        return self._replicated_read(
            "audit_log", lambda s: s.audit_log(object_type, name, version)
        )

    # ======================================================================
    # Users, external catalogs, ACLs
    # ======================================================================

    def register_user(self, user: Any) -> None:
        self._broadcast("register_user", lambda s: s.register_user(user))

    def get_user(self, dn: str) -> Any:
        return self._replicated_read("get_user", lambda s: s.get_user(dn))

    def register_external_catalog(self, catalog: Any) -> None:
        self._broadcast(
            "register_external_catalog",
            lambda s: s.register_external_catalog(catalog),
        )

    def list_external_catalogs(self) -> list[Any]:
        return self._replicated_read(
            "list_external_catalogs", lambda s: s.list_external_catalogs()
        )

    def set_permissions(
        self,
        object_type: ObjectType,
        name: Optional[str],
        principal: str,
        permissions: Any,
        version: Optional[int] = None,
    ) -> None:
        if object_type is ObjectType.FILE and name is not None:
            idx, _file = self._locate_file(name, version)
            self._call(
                idx,
                "set_permissions",
                lambda s: s.set_permissions(
                    object_type, name, principal, permissions, version
                ),
            )
        else:
            self._broadcast(
                "set_permissions",
                lambda s: s.set_permissions(
                    object_type, name, principal, permissions, version
                ),
            )

    def get_acl(
        self,
        object_type: ObjectType,
        name: Optional[str],
        version: Optional[int] = None,
    ) -> Any:
        if object_type is ObjectType.FILE and name is not None:
            idx, _file = self._locate_file(name, version)
            return self._call(
                idx,
                "get_acl",
                lambda s: s.get_acl(object_type, name, version),
                idempotent=True,
            )
        return self._replicated_read(
            "get_acl", lambda s: s.get_acl(object_type, name, version)
        )

    # ======================================================================
    # Statistics
    # ======================================================================

    def stats(self) -> dict[str, int]:
        """Logical totals: partitioned counts summed, replicated counts
        taken once (file attribute rows live on one shard; collection and
        view attribute rows are replicated on every shard)."""
        primary = self.shards[0].stats()
        files = 0
        file_attr_values = 0
        for idx in self.map.all_shards():
            shard = self.shards[idx]
            files += shard.stats()["files"]
            file_attr_values += (
                shard._conn.execute(
                    "SELECT COUNT(*) FROM attribute_value WHERE object_type = 'file'"
                ).scalar()
                or 0
            )
        replicated_attr_values = (
            self.shards[0]._conn.execute(
                "SELECT COUNT(*) FROM attribute_value WHERE object_type != 'file'"
            ).scalar()
            or 0
        )
        return {
            "files": files,
            "collections": primary["collections"],
            "views": primary["views"],
            "attributes": primary["attributes"],
            "attribute_values": file_attr_values + replicated_attr_values,
            "shards": self.shard_count,
        }


def build_sharded_catalog(
    n_shards: int,
    directory: Optional[str] = None,
    durable_sync: bool = False,
    cache: bool = True,
    **kwargs: Any,
) -> ShardedCatalog:
    """Build an N-shard catalog (in-memory, or one subdirectory per shard
    under ``directory`` plus the coordinator's decision log)."""
    import os

    from repro.db import Database

    shards: list[MetadataCatalog] = []
    for idx in range(n_shards):
        if directory is not None:
            shard_dir = os.path.join(directory, f"shard-{idx:03d}")
            os.makedirs(shard_dir, exist_ok=True)
            db = Database(shard_dir, durable_sync=durable_sync)
        else:
            db = Database()
        shards.append(MetadataCatalog(db, cache=cache))
    return ShardedCatalog(shards, directory=directory, **kwargs)
