"""Horizontal sharding: N independent engines behind one logical catalog.

The MCS paper scales a single backend to ~100 client threads; past that
the write path saturates one engine.  ``repro.shard`` partitions the
catalog across N independent :class:`repro.db.Database` instances keyed
by a stable hash of the logical name — with collection affinity, so a
collection's files co-locate — and presents the whole as one
:class:`~repro.shard.router.ShardedCatalog` that plugs in wherever a
:class:`~repro.core.catalog.MetadataCatalog` does (AMGA/Magda pattern:
distribute the backend itself, keep one catalog interface).

Layout:

* :mod:`repro.shard.map` — stable hash routing (``ShardMap``);
* :mod:`repro.shard.merge` — k-way merge for scatter/gather queries;
* :mod:`repro.shard.twopc` — two-phase commit over the per-shard WALs;
* :mod:`repro.shard.router` — the ``ShardedCatalog`` router itself.
"""

from repro.shard.map import ShardMap
from repro.shard.merge import merge_sorted
from repro.shard.router import ShardedCatalog, build_sharded_catalog
from repro.shard.twopc import TwoPhaseCoordinator

__all__ = [
    "ShardMap",
    "ShardedCatalog",
    "TwoPhaseCoordinator",
    "build_sharded_catalog",
    "merge_sorted",
]
