"""Stable hash routing: which shard owns a logical object.

Routing must be a pure function of the object's identity — every router
process (and every restart) has to agree without coordination, so Python's
randomised ``hash()`` is out; we use CRC-32 of the UTF-8 name.

Placement rule (collection affinity): a file that lives in a collection
hashes by its *collection* name, so all files of a collection co-locate
on one shard — ``list_collection`` and collection-scoped queries stay
single-shard.  A file outside any collection hashes by its own name.
Nested subcollections hash independently (re-parenting a collection must
not strand its files), so affinity is per-collection, not per-subtree.
"""

from __future__ import annotations

import zlib
from typing import Optional


class ShardMap:
    """Deterministic name → shard routing for an N-shard catalog."""

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.n_shards = n_shards

    def shard_for_name(self, name: str) -> int:
        """Stable shard index for a bare logical name."""
        return zlib.crc32(name.encode("utf-8")) % self.n_shards

    def shard_for_collection(self, collection: str) -> int:
        """Shard owning a collection's files (the collection row itself
        is replicated to every shard)."""
        return self.shard_for_name(collection)

    def shard_for_file(self, name: str, collection: Optional[str]) -> int:
        """Owning shard of a file: its collection's shard when it has
        one (affinity), otherwise its own name's shard."""
        if collection is not None:
            return self.shard_for_collection(collection)
        return self.shard_for_name(name)

    def all_shards(self) -> range:
        return range(self.n_shards)
