"""K-way merge for scatter/gather queries.

Each shard answers an ordered query with its local rows already sorted
by the order column; the router rewrites the per-shard query to
``LIMIT offset+limit OFFSET 0`` (every shard must over-fetch, because
the global offset may fall entirely inside one shard) and this module
merges the streams and applies the *global* offset/limit.

Tie-breaking: shards sort only by the order key, so rows with equal keys
arrive in engine order within a shard.  The merge is stable across
inputs (``heapq.merge`` yields from earlier iterables first on ties),
which makes the combined order deterministic given the per-shard
streams: equal keys come out in (shard index, shard-local position)
order.  Single-engine SQL leaves equal-key order unspecified too, so
this is exactly as strong a contract — and property tests pin it down.
"""

from __future__ import annotations

import heapq
from typing import Any, Optional, Sequence


def _null_last_key(pair: tuple[Any, Any]) -> tuple[int, Any]:
    # SQL NULLs sort before values in the engine's ORDER BY; mirror that
    # so a NULL order column merges the same way it sorts locally.
    key = pair[0]
    return (0, "") if key is None else (1, key)


def merge_sorted(
    shard_results: Sequence[Sequence[tuple[Any, Any]]],
    descending: bool = False,
    offset: Optional[int] = None,
    limit: Optional[int] = None,
) -> list[Any]:
    """Merge per-shard ``(order_key, name)`` streams into one name list.

    Every input sequence must already be sorted by ``order_key`` in the
    requested direction.  Returns names with the global ``offset`` and
    ``limit`` applied after the merge.
    """
    if limit is not None and limit <= 0:
        return []
    merged = heapq.merge(*shard_results, key=_null_last_key, reverse=descending)
    skip = offset or 0
    out: list[Any] = []
    for position, (_key, name) in enumerate(merged):
        if position < skip:
            continue
        out.append(name)
        if limit is not None and len(out) >= limit:
            break
    return out
