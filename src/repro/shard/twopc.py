"""Two-phase commit for cross-shard writes, layered on the per-shard WAL.

A cross-shard write (a file move between collections on different
shards, or a multi-shard atomic bulk batch) must not leave the catalog
half-applied when a process dies between the per-shard steps.  The
protocol reuses the durability the engine already has:

* **Prepare** — each participant shard gets a row in its local
  ``shard_prepare`` table holding the full operation list for that shard
  (method name + JSON-encoded kwargs).  The insert is an ordinary
  committed write, so it reaches the shard's WAL and survives restart.
* **Decision** — the coordinator appends ``{"txn": ..., "decision":
  "commit"}`` to its own append-only decision log (``twopc.log`` in the
  shard root) and fsyncs.  This is the commit point.
* **Apply** — each shard executes its prepared operations and deletes
  its prepare row.  Non-transactional ("plain") operations are wrapped
  in one local engine transaction *together with* the prepare-row
  delete, so apply-then-forget is atomic per shard; bulk operations
  manage their own transaction and the prepare row is deleted after
  (replaying a completed bulk raises ``DuplicateObjectError``, which
  recovery treats as already-applied).

**Recovery** (run when a ``ShardedCatalog`` opens over existing shard
directories): scan every shard's ``shard_prepare`` table and consult the
decision log.  Presumed abort — a prepare record whose transaction has
no ``commit`` decision is discarded; one with a decision is re-applied.
Either way no prepare records remain, so recovery converges in one pass.
"""

from __future__ import annotations

import json
import os
import threading
import uuid
from typing import Any, Callable, Optional

from repro import faults as _faults
from repro.core.catalog import MetadataCatalog
from repro.core.errors import DuplicateObjectError
from repro.db.schema import Column, TableDef
from repro.db.types import ColumnType
from repro.db.wal import decode_value, encode_value
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

_2PC_TOTAL = _metrics.counter(
    "mcs_shard_2pc_total",
    "Two-phase commits by outcome",
    labels=("outcome",),
)

PREPARE_TABLE = TableDef(
    "shard_prepare",
    [
        Column("id", ColumnType.INTEGER, nullable=False, autoincrement=True),
        Column("txn", ColumnType.STRING, nullable=False),
        Column("ops", ColumnType.STRING, nullable=False),
    ],
    primary_key=("id",),
    unique=[("txn",)],
)

# Methods that open their own engine transaction; they cannot run inside
# the apply-phase wrapper transaction.
_SELF_TRANSACTIONAL = frozenset({"bulk_create_files", "bulk_set_attributes"})

# Lock set covering every operation the apply phase may replay; acquired
# up front (sorted, via lock_tables) so apply never upgrades read → write
# mid-transaction — same discipline as the catalog's bulk handlers.
_APPLY_READ_TABLES = ("attribute_def", "logical_collection", "logical_view")
_APPLY_WRITE_TABLES = (
    "acl_entry",
    "annotation",
    "attribute_value",
    "audit_record",
    "logical_file",
    "shard_prepare",
    "transformation",
    "view_member",
)


def encode_tree(value: Any) -> Any:
    """JSON-safe deep encoding of op kwargs (WAL value tags at leaves)."""
    if isinstance(value, dict):
        return {k: encode_tree(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode_tree(v) for v in value]
    return encode_value(value)


def decode_tree(value: Any) -> Any:
    if isinstance(value, dict):
        if "t" in value and "v" in value and len(value) == 2:
            return decode_value(value)
        return {k: decode_tree(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_tree(v) for v in value]
    return value


class ShardOp:
    """One prepared operation: a MetadataCatalog method call by name."""

    __slots__ = ("method", "kwargs")

    def __init__(self, method: str, kwargs: dict[str, Any]) -> None:
        self.method = method
        self.kwargs = kwargs

    def to_wire(self) -> dict[str, Any]:
        return {"m": self.method, "k": encode_tree(self.kwargs)}

    @classmethod
    def from_wire(cls, data: dict[str, Any]) -> "ShardOp":
        return cls(data["m"], decode_tree(data["k"]))


class TwoPhaseCoordinator:
    """Coordinates prepare/decide/apply across participant shards."""

    def __init__(
        self,
        shards: list[MetadataCatalog],
        directory: Optional[str] = None,
    ) -> None:
        self.shards = shards
        self.directory = directory
        self._log_lock = threading.Lock()
        self._decisions: dict[str, str] = {}
        if directory is not None:
            self._log_path: Optional[str] = os.path.join(directory, "twopc.log")
            self._load_decisions()
        else:
            self._log_path = None
        for catalog in shards:
            catalog.db.create_table(PREPARE_TABLE, if_not_exists=True)

    # -- decision log ------------------------------------------------------

    def _load_decisions(self) -> None:
        if self._log_path is None or not os.path.exists(self._log_path):
            return
        with open(self._log_path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                self._decisions[record["txn"]] = record["decision"]

    def _record_decision(self, txn: str, decision: str) -> None:
        with self._log_lock:
            self._decisions[txn] = decision
            if self._log_path is not None:
                with open(self._log_path, "a", encoding="utf-8") as fh:
                    fh.write(json.dumps({"txn": txn, "decision": decision}) + "\n")
                    fh.flush()
                    os.fsync(fh.fileno())

    # -- the protocol ------------------------------------------------------

    def run(
        self,
        ops_by_shard: dict[int, list[ShardOp]],
        validate: Optional[Callable[[], None]] = None,
    ) -> dict[int, list[Any]]:
        """Run one distributed transaction; returns per-shard op results.

        ``validate`` runs before any prepare record is written — a
        dry-run hook so doomed transactions abort without touching disk.
        """
        txn = uuid.uuid4().hex
        participants = sorted(ops_by_shard)
        with _trace.span("shard.2pc", txn=txn, shards=len(participants)):
            if validate is not None:
                validate()
            prepared: list[int] = []
            try:
                for idx in participants:
                    injection = _faults.check("shard.2pc", f"prepare:{idx}")
                    if injection is not None:
                        injection.fail()
                    self._write_prepare(idx, txn, ops_by_shard[idx])
                    prepared.append(idx)
                injection = _faults.check("shard.2pc", "decide")
                if injection is not None:
                    injection.fail()
            except Exception:
                # No commit decision was recorded: presumed abort.  Clean
                # up best-effort; recovery discards whatever remains.
                self._abort(txn, prepared)
                raise
            self._record_decision(txn, "commit")
            results: dict[int, list[Any]] = {}
            for idx in participants:
                injection = _faults.check("shard.2pc", f"apply:{idx}")
                if injection is not None:
                    injection.fail()
                results[idx] = self._apply(idx, txn, ops_by_shard[idx])
            _2PC_TOTAL.labels("committed").inc()
            return results

    def _abort(self, txn: str, prepared: list[int]) -> None:
        self._record_decision(txn, "abort")
        for idx in prepared:
            try:
                self._delete_prepare(idx, txn)
            except Exception:  # noqa: BLE001 - recovery will discard it
                pass
        _2PC_TOTAL.labels("aborted").inc()

    # -- participant-side steps -------------------------------------------

    def _write_prepare(self, idx: int, txn: str, ops: list[ShardOp]) -> None:
        payload = json.dumps([op.to_wire() for op in ops])
        conn = self.shards[idx]._conn
        conn.execute(
            "INSERT INTO shard_prepare (txn, ops) VALUES (?, ?)", (txn, payload)
        )

    def _delete_prepare(self, idx: int, txn: str) -> None:
        self.shards[idx]._conn.execute(
            "DELETE FROM shard_prepare WHERE txn = ?", (txn,)
        )

    def _apply(self, idx: int, txn: str, ops: list[ShardOp]) -> list[Any]:
        """Execute a shard's prepared ops and retire the prepare row."""
        catalog = self.shards[idx]
        if any(op.method in _SELF_TRANSACTIONAL for op in ops):
            # Bulk ops manage their own transaction; run them as-is and
            # retire the record afterwards.  A replay that finds the work
            # already done surfaces as DuplicateObjectError below.
            results = [getattr(catalog, op.method)(**op.kwargs) for op in ops]
            self._delete_prepare(idx, txn)
            return results
        conn = catalog._conn
        conn.begin()
        try:
            conn.lock_tables(read=_APPLY_READ_TABLES, write=_APPLY_WRITE_TABLES)
            results = [getattr(catalog, op.method)(**op.kwargs) for op in ops]
            conn.execute("DELETE FROM shard_prepare WHERE txn = ?", (txn,))
            conn.commit()
            return results
        except Exception:
            conn.rollback()
            raise

    def pending(self) -> dict[int, list[str]]:
        """Outstanding prepare-record txn ids per shard (normally empty).

        Anything still here after :meth:`recover` is a bug — the chaos
        lane asserts on it."""
        out: dict[int, list[str]] = {}
        for idx, catalog in enumerate(self.shards):
            rows = catalog._conn.execute(
                "SELECT txn FROM shard_prepare"
            ).fetchall()
            if rows:
                out[idx] = sorted(row[0] for row in rows)
        return out

    # -- restart recovery --------------------------------------------------

    def recover(self) -> dict[str, int]:
        """Replay or discard leftover prepare records; returns counts."""
        replayed = discarded = 0
        # Recovery rewrites the prepare log and replays committed work:
        # exactly the mutations an operator needs to see in a trace when
        # a restart goes wrong (MCS016).
        with _trace.span("shard.2pc.recover", shards=len(self.shards)):
            for idx, catalog in enumerate(self.shards):
                rows = catalog._conn.execute(
                    "SELECT txn, ops FROM shard_prepare"
                ).fetchall()
                for txn, payload in rows:
                    if self._decisions.get(txn) == "commit":
                        ops = [ShardOp.from_wire(d) for d in json.loads(payload)]
                        try:
                            self._apply(idx, txn, ops)
                        except DuplicateObjectError:
                            # The apply completed before the crash but the
                            # prepare row's delete did not (bulk path only).
                            self._delete_prepare(idx, txn)
                        replayed += 1
                        _2PC_TOTAL.labels("recovered_commit").inc()
                    else:
                        self._delete_prepare(idx, txn)
                        discarded += 1
                        _2PC_TOTAL.labels("recovered_abort").inc()
        return {"replayed": replayed, "discarded": discarded}
