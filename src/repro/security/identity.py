"""X.509-style distinguished names.

The MCS schema stores user identities as distinguished names (DNs), e.g.
``/O=Grid/OU=ISI/CN=Gurmeet Singh``.  This module parses, formats and
compares them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.security.errors import SecurityError

_KNOWN_ATTRS = ("C", "O", "OU", "L", "ST", "CN", "E")


@dataclass(frozen=True)
class DistinguishedName:
    """An ordered sequence of (attribute, value) pairs."""

    parts: tuple[tuple[str, str], ...]

    @classmethod
    def parse(cls, text: str) -> "DistinguishedName":
        """Parse the slash-separated OpenSSL one-line form."""
        if not text.startswith("/"):
            raise SecurityError(f"DN must start with '/': {text!r}")
        parts: list[tuple[str, str]] = []
        for piece in text.split("/")[1:]:
            if not piece:
                continue
            if "=" not in piece:
                raise SecurityError(f"malformed DN component {piece!r}")
            attr, value = piece.split("=", 1)
            attr = attr.strip().upper()
            if not attr:
                raise SecurityError(f"empty attribute in DN component {piece!r}")
            parts.append((attr, value.strip()))
        if not parts:
            raise SecurityError(f"empty DN {text!r}")
        return cls(tuple(parts))

    @classmethod
    def make(cls, cn: str, org: str = "Grid", unit: str = "") -> "DistinguishedName":
        parts = [("O", org)]
        if unit:
            parts.append(("OU", unit))
        parts.append(("CN", cn))
        return cls(tuple(parts))

    def __str__(self) -> str:
        return "".join(f"/{attr}={value}" for attr, value in self.parts)

    @property
    def common_name(self) -> str:
        for attr, value in reversed(self.parts):
            if attr == "CN":
                return value
        raise SecurityError(f"DN {self} has no CN component")

    def get(self, attr: str) -> str | None:
        """Last value of *attr* in the DN, or None."""
        result = None
        for a, value in self.parts:
            if a == attr.upper():
                result = value
        return result

    def with_proxy_suffix(self, label: str = "proxy") -> "DistinguishedName":
        """GSI proxies append a CN component to the issuer's subject."""
        return DistinguishedName(self.parts + (("CN", label),))

    def is_proxy_of(self, other: "DistinguishedName") -> bool:
        """True when this DN is *other* plus one or more CN=proxy parts."""
        if len(self.parts) <= len(other.parts):
            return False
        if self.parts[: len(other.parts)] != other.parts:
            return False
        return all(attr == "CN" for attr, _ in self.parts[len(other.parts):])

    def base_identity(self) -> "DistinguishedName":
        """Strip trailing proxy CN components (identity of the end entity)."""
        parts = list(self.parts)
        while len(parts) > 1 and parts[-1][0] == "CN" and parts[-1][1] == "proxy":
            parts.pop()
        return DistinguishedName(tuple(parts))
