"""Simulated Grid Security Infrastructure.

Implements the pieces of GSI the MCS design depends on:

* a certificate authority issuing identity certificates,
* proxy certificates signed by the end entity (single sign-on),
* chain verification back to a set of trust anchors,
* per-request authentication tokens (signed timestamped digests), the
  moral equivalent of a GSI-authenticated message exchange.

Cryptography is the toy RSA of :mod:`repro.security.rsa`; the *protocol*
logic (chains, proxy naming rules, expiry, replay windows) is real.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.security import rsa
from repro.security.errors import AuthenticationError, CertificateError
from repro.security.identity import DistinguishedName

DEFAULT_CERT_LIFETIME = 365 * 24 * 3600.0
DEFAULT_PROXY_LIFETIME = 12 * 3600.0
AUTH_TOKEN_WINDOW = 300.0  # seconds of clock skew / replay tolerance


@dataclass(frozen=True)
class Certificate:
    """A signed binding of a subject DN to a public key."""

    subject: DistinguishedName
    issuer: DistinguishedName
    public_key: rsa.PublicKey
    serial: int
    not_before: float
    not_after: float
    is_ca: bool = False
    is_proxy: bool = False
    signature: int = 0

    def tbs_bytes(self) -> bytes:
        """The to-be-signed canonical encoding."""
        return (
            f"{self.subject}|{self.issuer}|{self.public_key.to_text()}|"
            f"{self.serial}|{self.not_before:.3f}|{self.not_after:.3f}|"
            f"{int(self.is_ca)}|{int(self.is_proxy)}"
        ).encode()

    def valid_at(self, when: float) -> bool:
        return self.not_before <= when <= self.not_after


@dataclass
class Credential:
    """A certificate plus its private key (held by the subject)."""

    certificate: Certificate
    private_key: rsa.PrivateKey
    chain: tuple[Certificate, ...] = ()
    """Intermediate certificates up to (excluding) the trust anchor."""

    @property
    def subject(self) -> DistinguishedName:
        return self.certificate.subject

    def full_chain(self) -> tuple[Certificate, ...]:
        return (self.certificate,) + self.chain


class ProxyCertificate(Certificate):
    """Marker subclass for readability; behaviour lives in the flags."""


class CertificateAuthority:
    """Issues identity certificates; its self-signed cert is a trust anchor."""

    def __init__(self, name: str = "Repro Grid CA", key_bits: int = 512) -> None:
        self._keys = rsa.generate_keypair(key_bits)
        self._serial = 0
        subject = DistinguishedName.make(name, org="Grid", unit="CA")
        now = time.time()
        unsigned = Certificate(
            subject=subject,
            issuer=subject,
            public_key=self._keys.public,
            serial=self._next_serial(),
            not_before=now - 60,
            not_after=now + DEFAULT_CERT_LIFETIME,
            is_ca=True,
        )
        self.certificate = _sign_cert(unsigned, self._keys.private)

    def _next_serial(self) -> int:
        self._serial += 1
        return self._serial

    def issue_credential(
        self,
        subject: DistinguishedName,
        lifetime: float = DEFAULT_CERT_LIFETIME,
        key_bits: int = 512,
    ) -> Credential:
        """Generate a keypair and an identity certificate for *subject*."""
        keys = rsa.generate_keypair(key_bits)
        now = time.time()
        unsigned = Certificate(
            subject=subject,
            issuer=self.certificate.subject,
            public_key=keys.public,
            serial=self._next_serial(),
            not_before=now - 60,
            not_after=now + lifetime,
        )
        cert = _sign_cert(unsigned, self._keys.private)
        return Credential(cert, keys.private)


def _sign_cert(cert: Certificate, key: rsa.PrivateKey) -> Certificate:
    signature = rsa.sign(key, cert.tbs_bytes())
    return Certificate(
        subject=cert.subject,
        issuer=cert.issuer,
        public_key=cert.public_key,
        serial=cert.serial,
        not_before=cert.not_before,
        not_after=cert.not_after,
        is_ca=cert.is_ca,
        is_proxy=cert.is_proxy,
        signature=signature,
    )


def create_proxy(
    credential: Credential,
    lifetime: float = DEFAULT_PROXY_LIFETIME,
    key_bits: int = 512,
) -> Credential:
    """Create a short-lived proxy credential signed by *credential*.

    The proxy subject is the issuer's subject plus a ``CN=proxy``
    component, per the GSI convention.
    """
    keys = rsa.generate_keypair(key_bits)
    now = time.time()
    unsigned = Certificate(
        subject=credential.subject.with_proxy_suffix(),
        issuer=credential.subject,
        public_key=keys.public,
        serial=credential.certificate.serial * 1000 + 1,
        not_before=now - 60,
        not_after=min(now + lifetime, credential.certificate.not_after),
        is_proxy=True,
    )
    cert = _sign_cert(unsigned, credential.private_key)
    return Credential(cert, keys.private, chain=credential.full_chain())


def verify_chain(
    chain: Sequence[Certificate],
    trust_anchors: Iterable[Certificate],
    when: Optional[float] = None,
) -> DistinguishedName:
    """Verify leaf-first *chain* back to a trust anchor.

    Returns the *effective identity*: the leaf subject with proxy
    components stripped.  Raises CertificateError on any failure.
    """
    if not chain:
        raise CertificateError("empty certificate chain")
    when = time.time() if when is None else when
    anchors = {str(a.subject): a for a in trust_anchors}
    for cert in chain:
        if not cert.valid_at(when):
            raise CertificateError(
                f"certificate for {cert.subject} expired or not yet valid"
            )
    for child, parent in zip(chain, chain[1:]):
        if str(child.issuer) != str(parent.subject):
            raise CertificateError(
                f"broken chain: {child.subject} not issued by {parent.subject}"
            )
        if not rsa.verify(parent.public_key, child.tbs_bytes(), child.signature):
            raise CertificateError(f"bad signature on certificate for {child.subject}")
        if child.is_proxy:
            if not child.subject.is_proxy_of(parent.subject):
                raise CertificateError(
                    f"proxy subject {child.subject} does not extend {parent.subject}"
                )
        elif not parent.is_ca:
            raise CertificateError(
                f"non-CA certificate {parent.subject} issued {child.subject}"
            )
    top = chain[-1]
    anchor = anchors.get(str(top.issuer))
    if anchor is None:
        raise CertificateError(f"chain does not reach a trust anchor ({top.issuer})")
    if not rsa.verify(anchor.public_key, top.tbs_bytes(), top.signature):
        raise CertificateError(f"bad anchor signature on {top.subject}")
    return chain[0].subject.base_identity()


@dataclass(frozen=True)
class AuthToken:
    """A per-request proof of identity: signed timestamped digest."""

    chain: tuple[Certificate, ...]
    timestamp: float
    payload_digest: str
    signature: int

    def signed_bytes(self) -> bytes:
        return f"{self.timestamp:.3f}|{self.payload_digest}".encode()


class GSIContext:
    """Client- and server-side GSI operations bound to a credential."""

    def __init__(
        self,
        credential: Credential,
        trust_anchors: Iterable[Certificate] = (),
    ) -> None:
        self.credential = credential
        self.trust_anchors = tuple(trust_anchors)

    # -- client side -------------------------------------------------------

    def sign_request(self, payload: bytes) -> AuthToken:
        import hashlib

        digest = hashlib.sha256(payload).hexdigest()
        timestamp = time.time()
        unsigned = AuthToken(
            chain=self.credential.full_chain(),
            timestamp=timestamp,
            payload_digest=digest,
            signature=0,
        )
        signature = rsa.sign(self.credential.private_key, unsigned.signed_bytes())
        return AuthToken(unsigned.chain, timestamp, digest, signature)

    # -- server side -------------------------------------------------------

    def authenticate(self, token: AuthToken, payload: bytes) -> DistinguishedName:
        """Verify a request token; returns the caller's effective identity."""
        import hashlib

        now = time.time()
        if abs(now - token.timestamp) > AUTH_TOKEN_WINDOW:
            raise AuthenticationError("stale authentication token")
        if hashlib.sha256(payload).hexdigest() != token.payload_digest:
            raise AuthenticationError("token does not match request payload")
        identity = verify_chain(token.chain, self.trust_anchors)
        leaf = token.chain[0]
        if not rsa.verify(leaf.public_key, token.signed_bytes(), token.signature):
            raise AuthenticationError("bad token signature")
        return identity
