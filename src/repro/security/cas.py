"""Community Authorization Service (CAS).

Per Pearlman et al. [8], a CAS lets a virtual organization centralize
authorization policy: users authenticate to the CAS, which issues signed
capability assertions granting a subset of the community's rights; a
resource (here, the MCS) trusts the CAS and honours presented assertions.
"""

from __future__ import annotations

import fnmatch
import time
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.security import rsa
from repro.security.acl import Permission
from repro.security.errors import AuthorizationError, CertificateError
from repro.security.gsi import CertificateAuthority, Credential
from repro.security.identity import DistinguishedName

DEFAULT_ASSERTION_LIFETIME = 3600.0


@dataclass(frozen=True)
class PolicyRule:
    """Grants *permissions* on objects matching *object_pattern* (glob)."""

    object_pattern: str
    permissions: frozenset[Permission]


@dataclass(frozen=True)
class CapabilityAssertion:
    """A signed statement: *user* may exercise *rules* until *expires*."""

    community: str
    user: DistinguishedName
    rules: tuple[PolicyRule, ...]
    issued: float
    expires: float
    signature: int = 0

    def tbs_bytes(self) -> bytes:
        rules_text = ";".join(
            f"{r.object_pattern}:{','.join(sorted(p.name for p in r.permissions))}"
            for r in self.rules
        )
        return (
            f"{self.community}|{self.user}|{rules_text}|"
            f"{self.issued:.3f}|{self.expires:.3f}"
        ).encode()

    def grants(self, object_name: str, permission: Permission, when: Optional[float] = None) -> bool:
        when = time.time() if when is None else when
        if not self.issued <= when <= self.expires:
            return False
        return any(
            permission in rule.permissions
            and fnmatch.fnmatchcase(object_name, rule.object_pattern)
            for rule in self.rules
        )


class CommunityAuthorizationService:
    """Maintains community membership and policy; issues assertions."""

    def __init__(self, community: str, ca: CertificateAuthority, key_bits: int = 512) -> None:
        self.community = community
        self.credential: Credential = ca.issue_credential(
            DistinguishedName.make(f"CAS {community}", org="Grid", unit="CAS")
        )
        self._members: set[str] = set()
        self._group_of: dict[str, str] = {}
        self._group_policy: dict[str, list[PolicyRule]] = {}

    # -- administration -----------------------------------------------------

    def add_member(self, user: DistinguishedName, group: str = "members") -> None:
        self._members.add(str(user))
        self._group_of[str(user)] = group

    def remove_member(self, user: DistinguishedName) -> None:
        self._members.discard(str(user))
        self._group_of.pop(str(user), None)

    def grant(self, group: str, object_pattern: str, *permissions: Permission) -> None:
        self._group_policy.setdefault(group, []).append(
            PolicyRule(object_pattern, frozenset(permissions))
        )

    def is_member(self, user: DistinguishedName) -> bool:
        return str(user) in self._members

    # -- assertion issuance ------------------------------------------------

    def issue_assertion(
        self,
        user: DistinguishedName,
        lifetime: float = DEFAULT_ASSERTION_LIFETIME,
    ) -> CapabilityAssertion:
        """Issue the user's full capability set as a signed assertion."""
        if not self.is_member(user):
            raise AuthorizationError(
                f"{user} is not a member of community {self.community!r}"
            )
        group = self._group_of[str(user)]
        rules = tuple(self._group_policy.get(group, ()))
        now = time.time()
        unsigned = CapabilityAssertion(
            community=self.community,
            user=user,
            rules=rules,
            issued=now - 60,
            expires=now + lifetime,
        )
        signature = rsa.sign(self.credential.private_key, unsigned.tbs_bytes())
        return CapabilityAssertion(
            unsigned.community,
            unsigned.user,
            unsigned.rules,
            unsigned.issued,
            unsigned.expires,
            signature,
        )


def verify_assertion(
    assertion: CapabilityAssertion,
    trusted_cas: Iterable[Credential | "object"],
    when: Optional[float] = None,
) -> None:
    """Check the assertion's signature against trusted CAS certificates.

    ``trusted_cas`` may contain Credential objects or bare Certificates.
    Raises CertificateError when no trusted CAS signed it or it expired.
    """
    when = time.time() if when is None else when
    if not assertion.issued <= when <= assertion.expires:
        raise CertificateError("capability assertion expired")
    for trusted in trusted_cas:
        certificate = getattr(trusted, "certificate", trusted)
        if rsa.verify(
            certificate.public_key, assertion.tbs_bytes(), assertion.signature
        ):
            return
    raise CertificateError("capability assertion not signed by a trusted CAS")
