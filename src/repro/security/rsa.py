"""Textbook RSA: key generation, signing, verification.

This is a *simulation-grade* implementation: small keys (512-bit modulus
by default), no padding scheme beyond hashing, deterministic Miller-Rabin
for the sizes used.  It exists so the GSI/CAS substrate has honest
asymmetric semantics — a signature really can only be produced by the
private-key holder — without external crypto dependencies.  Do not use it
to protect anything.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass

_E = 65537


def _is_probable_prime(n: int, rounds: int = 24) -> bool:
    """Miller-Rabin with random bases (plus small-prime trial division)."""
    if n < 2:
        return False
    small_primes = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
    for p in small_primes:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = secrets.randbelow(n - 3) + 2
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def _random_prime(bits: int) -> int:
    while True:
        candidate = secrets.randbits(bits) | (1 << (bits - 1)) | 1
        if candidate % _E == 1:
            continue  # gcd(e, p-1) must be 1; cheap pre-filter
        if _is_probable_prime(candidate):
            return candidate


@dataclass(frozen=True)
class PublicKey:
    """RSA public key (n, e)."""

    n: int
    e: int

    def fingerprint(self) -> str:
        digest = hashlib.sha256(f"{self.n}:{self.e}".encode()).hexdigest()
        return digest[:16]

    def to_text(self) -> str:
        return f"{self.n:x}:{self.e:x}"

    @classmethod
    def from_text(cls, text: str) -> "PublicKey":
        n_hex, e_hex = text.split(":")
        return cls(int(n_hex, 16), int(e_hex, 16))


@dataclass(frozen=True)
class PrivateKey:
    """RSA private key (n, d)."""

    n: int
    d: int


@dataclass(frozen=True)
class KeyPair:
    """A matched public/private key pair."""

    public: PublicKey
    private: PrivateKey


def generate_keypair(bits: int = 512) -> KeyPair:
    """Generate an RSA keypair with a *bits*-bit modulus."""
    if bits < 128:
        raise ValueError("modulus below 128 bits cannot hold a SHA-256 digest")
    half = bits // 2
    while True:
        p = _random_prime(half)
        q = _random_prime(bits - half)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        try:
            d = pow(_E, -1, phi)
        except ValueError:
            continue  # e not invertible; repick primes
        return KeyPair(PublicKey(n, _E), PrivateKey(n, d))


def _digest_int(message: bytes, n: int) -> int:
    return int.from_bytes(hashlib.sha256(message).digest(), "big") % n


def sign(private: PrivateKey, message: bytes) -> int:
    """Sign SHA-256(message) with the private exponent."""
    return pow(_digest_int(message, private.n), private.d, private.n)


def verify(public: PublicKey, message: bytes, signature: int) -> bool:
    """True iff *signature* was produced by the matching private key."""
    if not 0 <= signature < public.n:
        return False
    return pow(signature, public.e, public.n) == _digest_int(message, public.n)
