"""MCS permission model.

Permissions may be attached to the MCS itself, to a logical file, to a
logical collection, or to a logical view (§5, "Authorization metadata").
The effective permission set on a logical file is *the union of the
permissions on that file and the permissions on its enclosing logical
collection, and so on up the hierarchy of collections* — implemented by
:func:`effective_permissions`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.security.errors import AuthorizationError
from repro.security.identity import DistinguishedName


class Permission(enum.Flag):
    """Rights on MCS objects."""

    NONE = 0
    READ = enum.auto()     # query attributes / list contents
    WRITE = enum.auto()    # modify attributes, add members
    DELETE = enum.auto()   # remove the object
    ANNOTATE = enum.auto() # attach annotations
    ADMIN = enum.auto()    # change permissions / audit settings

    @classmethod
    def all(cls) -> "Permission":
        return cls.READ | cls.WRITE | cls.DELETE | cls.ANNOTATE | cls.ADMIN


@dataclass
class AccessControlList:
    """Per-object ACL: DN text -> permission flags, plus a public grant."""

    entries: dict[str, Permission] = field(default_factory=dict)
    public: Permission = Permission.NONE
    owner: Optional[str] = None

    def grant(self, user: DistinguishedName | str, permission: Permission) -> None:
        key = str(user)
        self.entries[key] = self.entries.get(key, Permission.NONE) | permission

    def revoke(self, user: DistinguishedName | str, permission: Permission) -> None:
        key = str(user)
        if key in self.entries:
            self.entries[key] &= ~permission
            if self.entries[key] is Permission.NONE:
                del self.entries[key]

    def grant_public(self, permission: Permission) -> None:
        self.public |= permission

    def permissions_for(self, user: DistinguishedName | str) -> Permission:
        key = str(user)
        granted = self.entries.get(key, Permission.NONE) | self.public
        if self.owner is not None and key == self.owner:
            granted |= Permission.all()
        return granted

    def allows(self, user: DistinguishedName | str, permission: Permission) -> bool:
        return permission in self.permissions_for(user)


def effective_permissions(
    user: DistinguishedName | str,
    own_acl: Optional[AccessControlList],
    collection_chain: Iterable[Optional[AccessControlList]] = (),
) -> Permission:
    """Union of the object's own grants and its collection chain's grants."""
    granted = Permission.NONE
    if own_acl is not None:
        granted |= own_acl.permissions_for(user)
    for acl in collection_chain:
        if acl is not None:
            granted |= acl.permissions_for(user)
    return granted


def require(
    user: DistinguishedName | str,
    permission: Permission,
    own_acl: Optional[AccessControlList],
    collection_chain: Iterable[Optional[AccessControlList]] = (),
    what: str = "object",
) -> None:
    """Raise AuthorizationError unless the effective permissions suffice."""
    granted = effective_permissions(user, own_acl, collection_chain)
    if permission not in granted:
        raise AuthorizationError(
            f"{user} lacks {permission} on {what} (has {granted})"
        )
