"""Security errors."""

from __future__ import annotations


class SecurityError(Exception):
    """Base class for security failures."""


class CertificateError(SecurityError):
    """A certificate or chain failed verification."""


class AuthenticationError(SecurityError):
    """The caller's identity could not be established."""


class AuthorizationError(SecurityError):
    """The authenticated caller lacks the required permission."""
