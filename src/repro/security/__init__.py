"""Grid security substrate.

A self-contained stand-in for the Grid Security Infrastructure (GSI) and
the Community Authorization Service (CAS) the paper's MCS relies on:

* :mod:`repro.security.rsa` — small textbook RSA (keygen/sign/verify);
  *not* cryptographically secure, but gives real asymmetric semantics so
  certificate chains and signed assertions verify honestly.
* :mod:`repro.security.identity` — X.509-style distinguished names.
* :mod:`repro.security.gsi` — certificate authorities, user certificates,
  proxy certificates, chain verification and signed request tokens.
* :mod:`repro.security.cas` — community membership, policies, and signed
  capability assertions.
* :mod:`repro.security.acl` — MCS permission model, including the paper's
  rule that effective permissions are the union of a file's permissions
  and those of its enclosing collection chain.
"""

from repro.security.identity import DistinguishedName
from repro.security.gsi import (
    Certificate,
    CertificateAuthority,
    GSIContext,
    ProxyCertificate,
    verify_chain,
)
from repro.security.cas import CapabilityAssertion, CommunityAuthorizationService
from repro.security.acl import AccessControlList, Permission
from repro.security.errors import (
    AuthenticationError,
    AuthorizationError,
    CertificateError,
    SecurityError,
)

__all__ = [
    "DistinguishedName",
    "Certificate",
    "CertificateAuthority",
    "ProxyCertificate",
    "GSIContext",
    "verify_chain",
    "CapabilityAssertion",
    "CommunityAuthorizationService",
    "AccessControlList",
    "Permission",
    "SecurityError",
    "AuthenticationError",
    "AuthorizationError",
    "CertificateError",
]
