"""A native XML document database queried by XPath.

Documents are stored as parsed element trees keyed by name.  Queries walk
every stored document's tree (the "native XML database" cost model the
paper found wanting); an optional attribute index accelerates the common
``//tag[@name='v']``-style lookup by pre-selecting candidate documents.
"""

from __future__ import annotations

import threading
import xml.etree.ElementTree as ET
from typing import Iterable, Iterator, Optional, Union

from repro.xmldb.xpath import XPath, XPathError

DocumentLike = Union[bytes, str, ET.Element]


class XMLDatabase:
    """Thread-safe store of named XML documents with XPath query."""

    def __init__(self, index_attributes: Iterable[str] = ()) -> None:
        self._documents: dict[str, ET.Element] = {}
        self._lock = threading.RLock()
        # attribute name -> value -> set of document names
        self._indexed_attrs = tuple(index_attributes)
        self._attr_index: dict[str, dict[str, set[str]]] = {
            name: {} for name in self._indexed_attrs
        }

    # -- document management ------------------------------------------------

    @staticmethod
    def _to_element(document: DocumentLike) -> ET.Element:
        if isinstance(document, ET.Element):
            return document
        if isinstance(document, str):
            document = document.encode()
        try:
            return ET.fromstring(document)
        except ET.ParseError as exc:
            raise ValueError(f"malformed XML document: {exc}") from exc

    def store(self, name: str, document: DocumentLike) -> None:
        """Insert or replace a document."""
        element = self._to_element(document)
        with self._lock:
            if name in self._documents:
                self._unindex(name, self._documents[name])
            self._documents[name] = element
            self._index(name, element)

    def get(self, name: str) -> Optional[ET.Element]:
        with self._lock:
            return self._documents.get(name)

    def delete(self, name: str) -> bool:
        with self._lock:
            element = self._documents.pop(name, None)
            if element is None:
                return False
            self._unindex(name, element)
            return True

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._documents)

    def __len__(self) -> int:
        with self._lock:
            return len(self._documents)

    # -- indexing -----------------------------------------------------------

    def _walk(self, element: ET.Element) -> Iterator[ET.Element]:
        yield element
        for child in element:
            yield from self._walk(child)

    def _index(self, name: str, root: ET.Element) -> None:
        if not self._indexed_attrs:
            return
        for element in self._walk(root):
            for attr in self._indexed_attrs:
                value = element.get(attr)
                if value is not None:
                    self._attr_index[attr].setdefault(value, set()).add(name)

    def _unindex(self, name: str, root: ET.Element) -> None:
        if not self._indexed_attrs:
            return
        for element in self._walk(root):
            for attr in self._indexed_attrs:
                value = element.get(attr)
                if value is not None:
                    bucket = self._attr_index[attr].get(value)
                    if bucket is not None:
                        bucket.discard(name)
                        if not bucket:
                            del self._attr_index[attr][value]

    def _candidates(self, path: XPath) -> Iterable[str]:
        """Document names possibly matching the path (index pre-filter).

        Only an ``attr_eq`` predicate on an indexed attribute narrows the
        candidate set; everything else falls back to a full scan.
        """
        for step in path.steps:
            for predicate in step.predicates:
                if (
                    predicate.kind == "attr_eq"
                    and predicate.name in self._attr_index
                ):
                    return sorted(
                        self._attr_index[predicate.name].get(predicate.value, set())
                    )
        return self.names()

    # -- queries ----------------------------------------------------------------

    def query(self, expression: Union[str, XPath]) -> list[tuple[str, ET.Element]]:
        """(document name, matched element) pairs across the store."""
        path = XPath(expression) if isinstance(expression, str) else expression
        out: list[tuple[str, ET.Element]] = []
        with self._lock:
            for name in self._candidates(path):
                document = self._documents.get(name)
                if document is None:
                    continue
                for element in path.select(document):
                    out.append((name, element))
        return out

    def query_names(self, expression: Union[str, XPath]) -> list[str]:
        """Names of documents containing at least one match."""
        path = XPath(expression) if isinstance(expression, str) else expression
        out: list[str] = []
        with self._lock:
            for name in self._candidates(path):
                document = self._documents.get(name)
                if document is not None and path.matches(document):
                    out.append(name)
        return out

    def query_names_all(self, expressions: Iterable[Union[str, XPath]]) -> list[str]:
        """Documents matching *every* expression (conjunctive query)."""
        result: Optional[set[str]] = None
        for expression in expressions:
            names = set(self.query_names(expression))
            result = names if result is None else (result & names)
            if not result:
                return []
        return sorted(result or [])
