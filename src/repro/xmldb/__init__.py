"""Native XML database substrate.

The paper's §6.2/§9: ESG metadata is naturally XML, shredding it into
relational tables proved cumbersome, and the authors were "studying
whether a native XML database would provide better functionality than a
relational database backend; however, the performance of open source XML
databases is not currently sufficient to support the query rates required
by ESG applications."

This package is that alternative backend, built honestly:

* :mod:`repro.xmldb.xpath` — an XPath-subset engine (steps, wildcards,
  ``//`` descendant axis, attribute/text/position predicates);
* :mod:`repro.xmldb.database` — a document store queried by XPath, with
  an optional attribute index;
* :mod:`repro.core.xmlbackend` — an MCS metadata backend over it, used by
  the backend-comparison ablation benchmark to reproduce the paper's
  performance conclusion.
"""

from repro.xmldb.database import XMLDatabase
from repro.xmldb.xpath import XPath, XPathError

__all__ = ["XMLDatabase", "XPath", "XPathError"]
