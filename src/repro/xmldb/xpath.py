"""An XPath-subset engine over ``xml.etree`` trees.

Supported grammar (a practical slice of XPath 1.0 abbreviated syntax)::

    path       := ('/' | '//') step (('/' | '//') step)*
    step       := (NAME | '*') predicate*
    predicate  := '[' pred_expr ']'
    pred_expr  := '@' NAME                       attribute exists
                | '@' NAME '=' STRING            attribute equals
                | '@' NAME '!=' STRING           attribute differs
                | NAME '=' STRING                child element text equals
                | 'text()' '=' STRING            own text equals
                | NUMBER                         1-based position

Examples::

    /dataset/variables/variable[@name='TS']
    //attribute[@name='model'][text()='CCSM2']
    /file/attr[@type='int']
"""

from __future__ import annotations

import re
import xml.etree.ElementTree as ET
from dataclasses import dataclass
from typing import Iterator, Optional


class XPathError(Exception):
    """The expression could not be parsed."""


@dataclass(frozen=True)
class Predicate:
    """One step predicate: attribute/text/position condition."""

    kind: str  # "attr_exists" | "attr_eq" | "attr_ne" | "child_text" | "own_text" | "position"
    name: str = ""
    value: str = ""
    position: int = 0

    def matches(self, element: ET.Element, position: int) -> bool:
        if self.kind == "attr_exists":
            return element.get(self.name) is not None
        if self.kind == "attr_eq":
            return element.get(self.name) == self.value
        if self.kind == "attr_ne":
            got = element.get(self.name)
            return got is not None and got != self.value
        if self.kind == "child_text":
            return any(
                (child.text or "") == self.value
                for child in element
                if child.tag == self.name
            )
        if self.kind == "own_text":
            return (element.text or "") == self.value
        if self.kind == "position":
            return position == self.position
        raise XPathError(f"unknown predicate kind {self.kind!r}")  # pragma: no cover


@dataclass(frozen=True)
class Step:
    """One location step: tag (or *), axis, and its predicates."""

    tag: str  # element name or "*"
    descendant: bool  # reached via // rather than /
    predicates: tuple[Predicate, ...] = ()


_TOKEN_RE = re.compile(
    r"""
    (?P<sep>//|/)
  | (?P<name>[A-Za-z_][\w.\-]*(\(\))?)
  | (?P<lbracket>\[)
  | (?P<rbracket>\])
  | (?P<at>@)
  | (?P<neq>!=)
  | (?P<eq>=)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<number>\d+)
    """,
    re.VERBOSE,
)


class XPath:
    """A compiled XPath expression."""

    def __init__(self, expression: str) -> None:
        self.expression = expression
        self.steps = _parse(expression)

    def __repr__(self) -> str:
        return f"XPath({self.expression!r})"

    # -- evaluation --------------------------------------------------------

    def select(self, root: ET.Element) -> list[ET.Element]:
        """All elements matched by this path, document order, de-duplicated."""
        current: list[ET.Element] = [root_wrapper(root)]
        for step in self.steps:
            nxt: list[ET.Element] = []
            seen: set[int] = set()
            for context in current:
                candidates = (
                    _descendants(context) if step.descendant else list(context)
                )
                position = 0
                for element in candidates:
                    if step.tag != "*" and element.tag != step.tag:
                        continue
                    position += 1
                    if all(p.matches(element, position) for p in step.predicates):
                        if id(element) not in seen:
                            seen.add(id(element))
                            nxt.append(element)
            current = nxt
        return current

    def matches(self, root: ET.Element) -> bool:
        return bool(self.select(root))


def root_wrapper(root: ET.Element) -> ET.Element:
    """Wrap the document root so '/rootTag' selects it uniformly."""
    wrapper = ET.Element("__document__")
    wrapper.append(root)
    return wrapper


def _descendants(element: ET.Element) -> Iterator[ET.Element]:
    for child in element:
        yield child
        yield from _descendants(child)


def _parse(expression: str) -> tuple[Step, ...]:
    if not expression or expression[0] != "/":
        raise XPathError(f"path must start with '/': {expression!r}")
    tokens = _tokenize(expression)
    steps: list[Step] = []
    index = 0
    while index < len(tokens):
        kind, text = tokens[index]
        if kind != "sep":
            raise XPathError(f"expected '/' or '//' before {text!r}")
        descendant = text == "//"
        index += 1
        if index >= len(tokens):
            raise XPathError("path ends after separator")
        kind, text = tokens[index]
        if kind == "name":
            tag = text
        elif kind == "star":
            tag = "*"
        else:
            raise XPathError(f"expected element name, got {text!r}")
        index += 1
        predicates: list[Predicate] = []
        while index < len(tokens) and tokens[index][0] == "lbracket":
            predicate, index = _parse_predicate(tokens, index + 1)
            predicates.append(predicate)
        steps.append(Step(tag=tag, descendant=descendant, predicates=tuple(predicates)))
    if not steps:
        raise XPathError("empty path")
    return tuple(steps)


def _parse_predicate(tokens: list[tuple[str, str]], index: int) -> tuple[Predicate, int]:
    def expect(kind: str) -> tuple[str, int]:
        nonlocal index
        if index >= len(tokens) or tokens[index][0] != kind:
            found = tokens[index][1] if index < len(tokens) else "<end>"
            raise XPathError(f"expected {kind} in predicate, got {found!r}")
        text = tokens[index][1]
        index += 1
        return text, index

    if index < len(tokens) and tokens[index][0] == "at":
        index += 1
        name, index = expect("name")
        if index < len(tokens) and tokens[index][0] in ("eq", "neq"):
            op = tokens[index][0]
            index += 1
            value, index = expect("string")
            expect("rbracket")
            kind = "attr_eq" if op == "eq" else "attr_ne"
            return Predicate(kind=kind, name=name, value=_unquote(value)), index
        expect("rbracket")
        return Predicate(kind="attr_exists", name=name), index

    if index < len(tokens) and tokens[index][0] == "number":
        position = int(tokens[index][1])
        index += 1
        expect("rbracket")
        return Predicate(kind="position", position=position), index

    if index < len(tokens) and tokens[index][0] == "name":
        name = tokens[index][1]
        index += 1
        _, index = expect("eq")
        value, index = expect("string")
        expect("rbracket")
        if name == "text()":
            return Predicate(kind="own_text", value=_unquote(value)), index
        return Predicate(kind="child_text", name=name, value=_unquote(value)), index

    found = tokens[index][1] if index < len(tokens) else "<end>"
    raise XPathError(f"unsupported predicate starting at {found!r}")


def _unquote(text: str) -> str:
    return text[1:-1]


def _tokenize(expression: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(expression):
        ch = expression[position]
        if ch.isspace():
            position += 1
            continue
        if ch == "*":
            tokens.append(("star", "*"))
            position += 1
            continue
        match = _TOKEN_RE.match(expression, position)
        if match is None:
            raise XPathError(
                f"cannot tokenize {expression!r} at offset {position}"
            )
        kind = match.lastgroup
        assert kind is not None
        tokens.append((kind, match.group()))
        position = match.end()
    return tokens
