"""Per-endpoint circuit breaker: closed → open → half-open → closed.

Classic three-state breaker guarding one endpoint:

* **closed** — calls flow; ``failure_threshold`` *consecutive* failures
  trip it open (any success resets the streak);
* **open** — calls are rejected without touching the endpoint until
  ``reset_timeout_s`` has elapsed;
* **half-open** — up to ``half_open_probes`` in-flight probe calls are
  admitted; the first success closes the breaker, the first failure
  re-opens it (and restarts the reset clock).

The clock is injectable so the state machine is unit-testable without
sleeping, and every transition/rejection feeds the ``mcs_breaker_*``
metric families.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.obs.metrics import counter as _obs_counter, gauge as _obs_gauge

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Gauge encoding so dashboards can plot the state numerically.
STATE_VALUES = {CLOSED: 0.0, HALF_OPEN: 1.0, OPEN: 2.0}

_TRANSITIONS = _obs_counter(
    "mcs_breaker_transitions_total",
    "Breaker state transitions, per endpoint and target state",
    labels=("endpoint", "to"),
)
_REJECTIONS = _obs_counter(
    "mcs_breaker_rejections_total",
    "Calls rejected because the breaker was open",
    labels=("endpoint",),
)
_STATE = _obs_gauge(
    "mcs_breaker_state",
    "Current breaker state (0=closed, 1=half_open, 2=open), per endpoint",
    labels=("endpoint",),
)


class CircuitBreaker:
    """Failure-rate guard for one endpoint; thread-safe."""

    def __init__(
        self,
        endpoint: str = "default",
        failure_threshold: int = 5,
        reset_timeout_s: float = 1.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        self.endpoint = endpoint
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self.rejections = 0
        # Resolve labelled children once; allow()/record_*() are hot.
        self._m_rejections = _REJECTIONS.labels(endpoint)
        self._m_state = _STATE.labels(endpoint)
        self._m_state.set(STATE_VALUES[CLOSED])

    # -- state machine -------------------------------------------------------

    def _transition(self, to: str) -> None:
        # Caller holds self._lock.
        self._state = to
        _TRANSITIONS.labels(self.endpoint, to).inc()
        self._m_state.set(STATE_VALUES[to])
        if to == OPEN:
            self._opened_at = self._clock()
            self._probes_in_flight = 0
        elif to == HALF_OPEN:
            self._probes_in_flight = 0
        else:  # CLOSED
            self._consecutive_failures = 0
            self._probes_in_flight = 0

    def allow(self) -> bool:
        """Admit or reject a call; half-open admissions count as probes."""
        with self._lock:
            if self._state == OPEN:
                if self._clock() - self._opened_at >= self.reset_timeout_s:
                    self._transition(HALF_OPEN)
                else:
                    self.rejections += 1
                    self._m_rejections.inc()
                    return False
            if self._state == HALF_OPEN:
                if self._probes_in_flight >= self.half_open_probes:
                    self.rejections += 1
                    self._m_rejections.inc()
                    return False
                self._probes_in_flight += 1
            return True

    def record_success(self) -> None:
        """Report that an admitted call succeeded."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._transition(CLOSED)
            else:
                self._consecutive_failures = 0

    def record_failure(self) -> None:
        """Report that an admitted call failed."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._transition(OPEN)
            elif self._state == CLOSED:
                self._consecutive_failures += 1
                if self._consecutive_failures >= self.failure_threshold:
                    self._transition(OPEN)
            # OPEN: a straggler from before the trip; nothing to update.

    # -- introspection -------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state, reflecting reset-timeout expiry."""
        with self._lock:
            if (
                self._state == OPEN
                and self._clock() - self._opened_at >= self.reset_timeout_s
            ):
                return HALF_OPEN  # next allow() will transition for real
            return self._state

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._consecutive_failures

    @property
    def probes_in_flight(self) -> int:
        with self._lock:
            return self._probes_in_flight

    def reset(self) -> None:
        """Force-close (administrative reset)."""
        with self._lock:
            self._transition(CLOSED)
