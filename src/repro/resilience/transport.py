"""ResilientTransport: retry + deadline + circuit breaker over any transport.

Wraps a :class:`repro.soap.transport.Transport` and implements the same
protocol, so :class:`~repro.core.client.MCSClient`, federation members
and the bench harness can layer resilience over direct, loopback or HTTP
transports without touching call sites.

Per logical call:

1. If a deadline budget is configured, pin the absolute deadline now —
   retries and backoff all spend the *same* budget.
2. Ask the endpoint's circuit breaker for admission; rejected calls
   raise :class:`CircuitOpenError` without touching the endpoint.
3. For non-idempotent (write) calls, mint one idempotency token — the
   same token rides every retry, so the server's dedup cache collapses
   duplicates (see the ``lost_reply`` hazard).
4. On a retryable failure (transport error, torn response, or a fault
   code in :data:`RETRYABLE_FAULT_CODES`) sleep the policy's backoff and
   try again, unless the budget or attempt count is exhausted.

Typed application faults (``MCS.*``) are *successes* from the breaker's
point of view: the endpoint answered; the application said no.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Optional

from repro.obs import trace as _trace
from repro.obs.metrics import OBS
from repro.resilience import context as _rctx
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.retry import RETRY_ATTEMPTS, RETRY_BACKOFF_SECONDS, RetryPolicy
from repro.soap.envelope import BulkItem, SoapFault
from repro.soap.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    EncodingError,
    TransportError,
)
from repro.soap.transport import Operations, Transport

#: Fault codes that signal a transient server-side condition worth
#: retrying.  ``Server.Unavailable`` is what the fault-injection engine
#: raises for the ``fault`` kind; ``Server.DeadlineExceeded`` is *not*
#: here (the budget is spent) and ``MCS.*`` codes are application
#: answers, not failures.
RETRYABLE_FAULT_CODES = frozenset({"Server.Unavailable", "Server.Busy"})


class ResilientTransport:
    """Retry/deadline/breaker wrapper implementing the Transport protocol."""

    def __init__(
        self,
        inner: Transport,
        policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        endpoint: str = "inproc",
        is_idempotent: Optional[Callable[[str], bool]] = None,
        deadline_s: Optional[float] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.inner = inner
        self.policy = policy if policy is not None else RetryPolicy()
        self.breaker = (
            breaker if breaker is not None else CircuitBreaker(endpoint)
        )
        self.endpoint = endpoint
        # Conservative default: treat every method as a write unless told
        # otherwise (writes still retry safely thanks to the token).
        self._is_idempotent = is_idempotent or (lambda method: False)
        self.deadline_s = deadline_s
        self._sleep = sleep

    # -- Transport protocol --------------------------------------------------

    def call(self, method: str, args: dict[str, Any]) -> Any:
        return self._invoke(
            method,
            lambda: self.inner.call(method, args),
            idempotent=self._is_idempotent(method),
        )

    def call_bulk(self, operations: Operations) -> list[BulkItem]:
        idempotent = all(self._is_idempotent(m) for m, _ in operations)
        return self._invoke(
            "__bulk__",
            lambda: self.inner.call_bulk(operations),
            idempotent=idempotent,
        )

    def close(self) -> None:
        self.inner.close()

    # -- the retry loop ------------------------------------------------------

    def _invoke(self, label: str, thunk: Callable[[], Any], idempotent: bool):
        policy = self.policy
        deadline_at = _rctx.deadline_at()
        if self.deadline_s is not None:
            mine = time.monotonic() + self.deadline_s
            deadline_at = mine if deadline_at is None else min(deadline_at, mine)
        token = None
        if not idempotent and policy.retry_writes:
            token = _rctx.new_idempotency_key()
        can_retry = policy.can_retry(idempotent, token is not None)
        attempt = 0
        while True:
            attempt += 1
            if deadline_at is not None and time.monotonic() >= deadline_at:
                self._count(label, "deadline")
                raise DeadlineExceeded(
                    f"deadline exhausted before attempt {attempt} of {label!r} "
                    f"to {self.endpoint}"
                )
            if not self.breaker.allow():
                self._count(label, "rejected")
                _trace.annotate(
                    f"breaker open endpoint={self.endpoint} op={label}"
                )
                raise CircuitOpenError(
                    f"circuit open for {self.endpoint}; {label!r} not attempted"
                )
            dl_token = _rctx.set_deadline_at(deadline_at)
            idem_token = _rctx.set_idempotency_key(token)
            try:
                result = thunk()
            except SoapFault as fault:
                if fault.code == "Server.DeadlineExceeded":
                    # The server refused because *our* budget ran out en
                    # route; fold it into the client-side deadline family.
                    self.breaker.record_success()
                    self._count(label, "deadline")
                    raise DeadlineExceeded(fault.message) from fault
                if fault.code in RETRYABLE_FAULT_CODES:
                    self.breaker.record_failure()
                    self._retry_or_raise(
                        label, fault, attempt, can_retry, deadline_at
                    )
                    continue
                # The server answered; the *application* refused.  That
                # is endpoint health, not endpoint failure.
                self.breaker.record_success()
                raise
            except TransportError as exc:
                self.breaker.record_failure()
                self._retry_or_raise(label, exc, attempt, can_retry, deadline_at)
                continue
            except EncodingError as exc:
                # A torn/truncated response: the bytes are gone but the
                # endpoint is reachable; retry like a transport error.
                self.breaker.record_failure()
                self._retry_or_raise(label, exc, attempt, can_retry, deadline_at)
                continue
            finally:
                _rctx.reset_idempotency_key(idem_token)
                _rctx.reset_deadline(dl_token)
            self.breaker.record_success()
            if attempt > 1:
                self._count(label, "recovered")
            return result

    def _retry_or_raise(
        self,
        label: str,
        exc: Exception,
        attempt: int,
        can_retry: bool,
        deadline_at: Optional[float],
    ) -> None:
        """Sleep before the next attempt, or re-raise *exc* when done."""
        if not can_retry:
            self._count(label, "not_retryable")
            raise exc
        if attempt >= self.policy.max_attempts:
            self._count(label, "exhausted")
            raise exc
        delay = self.policy.backoff(attempt)
        if deadline_at is not None and time.monotonic() + delay >= deadline_at:
            self._count(label, "deadline")
            raise DeadlineExceeded(
                f"deadline leaves no room to retry {label!r} to {self.endpoint}"
            ) from exc
        self._count(label, "retried")
        _trace.annotate(
            f"retry attempt={attempt} op={label} breaker={self.breaker.state} "
            f"cause={type(exc).__name__}"
        )
        if OBS.enabled:
            RETRY_BACKOFF_SECONDS.observe(delay)
        self._sleep(delay)

    def _count(self, label: str, outcome: str) -> None:
        RETRY_ATTEMPTS.labels(f"{self.endpoint}:{label}", outcome).inc()
