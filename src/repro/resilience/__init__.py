"""repro.resilience: retries, deadlines, circuit breakers.

The package root deliberately exports only the soap-free primitives
(:mod:`retry`, :mod:`breaker`, :mod:`context`) so the soap transports can
import resilience context without a cycle; :class:`ResilientTransport`
(which *does* import repro.soap) is reachable lazily as
``repro.resilience.ResilientTransport`` or directly from
:mod:`repro.resilience.transport`.
"""

from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.resilience.context import (
    current_idempotency_key,
    deadline,
    new_idempotency_key,
    remaining,
)
from repro.resilience.retry import RetryPolicy

__all__ = [
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "CircuitBreaker",
    "RetryPolicy",
    "ResilientTransport",
    "current_idempotency_key",
    "deadline",
    "new_idempotency_key",
    "remaining",
]


def __getattr__(name: str):
    if name == "ResilientTransport":
        from repro.resilience.transport import ResilientTransport

        return ResilientTransport
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
