"""Retry policy: bounded exponential backoff with deterministic jitter.

The backoff ladder is a pure function of ``(policy, attempt)`` — no
global RNG, no wall clock — so a seeded chaos run schedules *exactly* the
same sleeps every time.  Jitter is multiplicative on the pre-cap delay
and the constructor enforces ``multiplier >= 1 + jitter``, which makes
the ladder monotone non-decreasing per attempt (each step outgrows the
worst jitter of the previous one) while staying bounded by
``max_delay_s``; the hypothesis suite in ``tests/resilience`` holds the
policy to those three properties.

Idempotency-awareness lives in :meth:`RetryPolicy.can_retry`: reads are
always retryable, writes only when the request carries an idempotency
token the server can deduplicate on (see
:mod:`repro.resilience.transport`).
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random

from repro.obs.metrics import counter as _obs_counter, histogram as _obs_histogram

#: Retry outcome counter, shared by every retry loop in the tree
#: (resilient transport, replication shipping, federation fan-out).
RETRY_ATTEMPTS = _obs_counter(
    "mcs_retry_attempts_total",
    "Retry-loop outcomes per call site",
    labels=("site", "outcome"),
)
RETRY_BACKOFF_SECONDS = _obs_histogram(
    "mcs_retry_backoff_seconds",
    "Backoff delays actually slept before a retry",
)


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try, and how long to wait between tries."""

    max_attempts: int = 4
    base_delay_s: float = 0.005
    multiplier: float = 2.0
    max_delay_s: float = 0.5
    jitter: float = 0.1
    seed: int = 0
    retry_reads: bool = True
    retry_writes: bool = True  # with an idempotency token only

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")
        if self.multiplier < 1.0 + self.jitter:
            # The monotonicity guarantee: step growth must dominate the
            # largest possible jitter swing between adjacent attempts.
            raise ValueError("multiplier must be >= 1 + jitter")

    def backoff(self, attempt: int) -> float:
        """Delay before retry *attempt* (1 = first retry), in seconds.

        Deterministic under ``seed``, bounded by ``max_delay_s``, and
        monotone non-decreasing in ``attempt``.
        """
        if attempt < 1:
            raise ValueError("attempt counts from 1")
        raw = self.base_delay_s * self.multiplier ** (attempt - 1)
        if self.jitter:
            # Per-attempt deterministic draw; int tuples hash stably.
            frac = Random(hash((self.seed, attempt))).random()
            raw *= 1.0 + self.jitter * frac
        return min(raw, self.max_delay_s)

    def can_retry(self, idempotent: bool, has_token: bool) -> bool:
        """Whether a failed operation may be re-issued at all.

        Reads (idempotent by construction) retry whenever the policy
        allows; writes must carry a server-deduplicated idempotency
        token, or a retry could apply the write twice.
        """
        if idempotent:
            return self.retry_reads
        return self.retry_writes and has_token
