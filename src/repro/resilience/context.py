"""Ambient resilience state: per-request deadlines and idempotency keys.

Mirrors :mod:`repro.obs.trace`: the resilient client sets contextvars
before invoking the wrapped transport, the transport copies them onto the
SOAP header, and the server restores them into its own context so
server-side work (notably :func:`repro.soap.transport.execute_bulk`) can
bound itself by the caller's remaining budget.

Deadlines are *absolute* points on :func:`time.monotonic`; only the
*remaining* budget (a duration) crosses the wire, so client and server
clocks never need to agree.
"""

from __future__ import annotations

import time
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, Optional

_deadline_at: ContextVar[Optional[float]] = ContextVar(
    "repro_resilience_deadline", default=None
)
_idempotency_key: ContextVar[Optional[str]] = ContextVar(
    "repro_resilience_idempotency_key", default=None
)


# -- deadlines ---------------------------------------------------------------


def set_deadline_at(at: Optional[float]):
    """Install an absolute monotonic deadline; returns a reset token."""
    return _deadline_at.set(at)


def push_budget(budget_s: float):
    """Install a deadline ``budget_s`` seconds from now; returns a token."""
    return _deadline_at.set(time.monotonic() + budget_s)


def reset_deadline(token) -> None:
    _deadline_at.reset(token)


def deadline_at() -> Optional[float]:
    """The ambient absolute deadline, or None when unbounded."""
    return _deadline_at.get()


def remaining() -> Optional[float]:
    """Seconds left in the ambient budget (may be negative), or None."""
    at = _deadline_at.get()
    if at is None:
        return None
    return at - time.monotonic()


def expired() -> bool:
    """True when an ambient deadline exists and has passed."""
    at = _deadline_at.get()
    return at is not None and time.monotonic() >= at


@contextmanager
def deadline(budget_s: float) -> Iterator[None]:
    """Scope a time budget over a block of client calls."""
    token = push_budget(budget_s)
    try:
        yield
    finally:
        _deadline_at.reset(token)


# -- idempotency keys --------------------------------------------------------


def new_idempotency_key() -> str:
    """Mint a fresh per-request token for write deduplication."""
    return uuid.uuid4().hex


def set_idempotency_key(key: Optional[str]):
    """Install the token the next transport call should carry; returns a token."""
    return _idempotency_key.set(key)


def reset_idempotency_key(token) -> None:
    _idempotency_key.reset(token)


def current_idempotency_key() -> Optional[str]:
    return _idempotency_key.get()
