"""AsyncResilientTransport: the retry loop of ``resilience.transport``
for coroutine transports.

Semantics are kept deliberately identical to
:class:`~repro.resilience.transport.ResilientTransport` — same
deadline-pinning, breaker admission, idempotency-token minting,
retryable-fault classification and retry accounting (the shared
``mcs_retry_*`` metrics) — with exactly one difference: backoff is spent
in ``asyncio.sleep``, so a retrying call parks its task instead of a
thread.  ``tests/aserve`` runs the chaos equivalence suites over both
wrappers to keep them converged.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Awaitable, Callable, Optional

from repro.obs import trace as _trace
from repro.obs.metrics import OBS
from repro.resilience import context as _rctx
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.retry import (
    RETRY_ATTEMPTS,
    RETRY_BACKOFF_SECONDS,
    RetryPolicy,
)
from repro.resilience.transport import RETRYABLE_FAULT_CODES
from repro.soap.envelope import BulkItem, SoapFault
from repro.soap.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    EncodingError,
    TransportError,
)
from repro.soap.transport import Operations


class AsyncResilientTransport:
    """Retry/deadline/breaker wrapper for async transports."""

    def __init__(
        self,
        inner: Any,
        policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        endpoint: str = "inproc",
        is_idempotent: Optional[Callable[[str], bool]] = None,
        deadline_s: Optional[float] = None,
    ) -> None:
        self.inner = inner
        self.policy = policy if policy is not None else RetryPolicy()
        self.breaker = (
            breaker if breaker is not None else CircuitBreaker(endpoint)
        )
        self.endpoint = endpoint
        self._is_idempotent = is_idempotent or (lambda method: False)
        self.deadline_s = deadline_s

    # -- Transport protocol (async) -----------------------------------------

    async def call(self, method: str, args: dict[str, Any]) -> Any:
        return await self._invoke(
            method,
            lambda: self.inner.call(method, args),
            idempotent=self._is_idempotent(method),
        )

    async def call_bulk(self, operations: Operations) -> list[BulkItem]:
        idempotent = all(self._is_idempotent(m) for m, _ in operations)
        return await self._invoke(
            "__bulk__",
            lambda: self.inner.call_bulk(operations),
            idempotent=idempotent,
        )

    async def close(self) -> None:
        await self.inner.close()

    # -- the retry loop ------------------------------------------------------

    async def _invoke(
        self,
        label: str,
        thunk: Callable[[], Awaitable[Any]],
        idempotent: bool,
    ) -> Any:
        policy = self.policy
        deadline_at = _rctx.deadline_at()
        if self.deadline_s is not None:
            mine = time.monotonic() + self.deadline_s
            deadline_at = mine if deadline_at is None else min(deadline_at, mine)
        token = None
        if not idempotent and policy.retry_writes:
            token = _rctx.new_idempotency_key()
        can_retry = policy.can_retry(idempotent, token is not None)
        attempt = 0
        while True:
            attempt += 1
            if deadline_at is not None and time.monotonic() >= deadline_at:
                self._count(label, "deadline")
                raise DeadlineExceeded(
                    f"deadline exhausted before attempt {attempt} of {label!r} "
                    f"to {self.endpoint}"
                )
            if not self.breaker.allow():
                self._count(label, "rejected")
                _trace.annotate(
                    f"breaker open endpoint={self.endpoint} op={label}"
                )
                raise CircuitOpenError(
                    f"circuit open for {self.endpoint}; {label!r} not attempted"
                )
            dl_token = _rctx.set_deadline_at(deadline_at)
            idem_token = _rctx.set_idempotency_key(token)
            try:
                result = await thunk()
            except SoapFault as fault:
                if fault.code == "Server.DeadlineExceeded":
                    self.breaker.record_success()
                    self._count(label, "deadline")
                    raise DeadlineExceeded(fault.message) from fault
                if fault.code in RETRYABLE_FAULT_CODES:
                    self.breaker.record_failure()
                    await self._retry_or_raise(
                        label, fault, attempt, can_retry, deadline_at
                    )
                    continue
                self.breaker.record_success()
                raise
            except TransportError as exc:
                self.breaker.record_failure()
                await self._retry_or_raise(
                    label, exc, attempt, can_retry, deadline_at
                )
                continue
            except EncodingError as exc:
                # Torn/truncated response: endpoint reachable, bytes gone.
                self.breaker.record_failure()
                await self._retry_or_raise(
                    label, exc, attempt, can_retry, deadline_at
                )
                continue
            finally:
                _rctx.reset_idempotency_key(idem_token)
                _rctx.reset_deadline(dl_token)
            self.breaker.record_success()
            if attempt > 1:
                self._count(label, "recovered")
            return result

    async def _retry_or_raise(
        self,
        label: str,
        exc: Exception,
        attempt: int,
        can_retry: bool,
        deadline_at: Optional[float],
    ) -> None:
        """Back off before the next attempt, or re-raise *exc* when done."""
        if not can_retry:
            self._count(label, "not_retryable")
            raise exc
        if attempt >= self.policy.max_attempts:
            self._count(label, "exhausted")
            raise exc
        delay = self.policy.backoff(attempt)
        if deadline_at is not None and time.monotonic() + delay >= deadline_at:
            self._count(label, "deadline")
            raise DeadlineExceeded(
                f"deadline leaves no room to retry {label!r} to {self.endpoint}"
            ) from exc
        self._count(label, "retried")
        _trace.annotate(
            f"retry attempt={attempt} op={label} breaker={self.breaker.state} "
            f"cause={type(exc).__name__}"
        )
        if OBS.enabled:
            RETRY_BACKOFF_SECONDS.observe(delay)
        await asyncio.sleep(delay)

    def _count(self, label: str, outcome: str) -> None:
        RETRY_ATTEMPTS.labels(f"{self.endpoint}:{label}", outcome).inc()
