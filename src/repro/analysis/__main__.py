"""``python -m repro.analysis [paths ...]`` — run the project linter."""

from __future__ import annotations

import sys

from repro.analysis import main

if __name__ == "__main__":
    sys.exit(main())
