"""Fixed-point interprocedural summaries over the call graph.

Each function gets a :class:`Summary` — the facts a caller needs without
re-reading the callee's body:

* ``blocks`` — blocking primitives reachable from the function, with a
  witness call path.  Propagation cuts at :data:`callgraph.HANDOFF`
  edges (the far side runs on a worker thread, blocking is legal there)
  and skips :data:`callgraph.DYNAMIC` edges (name-based fallback is for
  reachability questions, not blocking evidence).
* ``acquires`` / ``pairs`` — which locks the function (transitively)
  takes, and every ordered pair *(held, then-acquired)* it witnesses,
  including pairs that only exist interprocedurally: the caller holds
  ``A`` across a call whose callee eventually takes ``B``.
* ``raises`` — exception type names that can propagate out, after
  filtering through the ``except`` clauses lexically above each raise
  or call site.  A handler absorbing a type removes it; the handler
  body's own ``raise`` statements (including bare re-raises, resolved
  to the caught types) were recorded separately by the callgraph pass.
  Raises cross :data:`HANDOFF` edges too — an awaited
  ``run_in_executor`` future re-raises in the caller.
* ``uncovered`` — "required" sites (fault-injection checks, WAL/2PC
  mutations) reachable without any enclosing ``with span(...)`` on the
  path.  An edge that sits lexically under a span covers the entire
  callee subtree; a required callee that opens a span of its own counts
  as self-covered.

Summaries are computed over the call graph's SCC condensation: Tarjan
emits components in reverse topological order (callees before callers),
so a single sweep with an inner fix-point loop per component converges —
every merge only ever *adds* keys, the lattice is finite, and witness
paths are frozen the first time a fact appears (first-witness semantics
keeps reports stable run-to-run).

:func:`held_at_entry` runs the opposite direction — a forward
must-analysis from concurrency entry points computing the set of locks
*definitely* held whenever a function is entered (intersection over all
call sites), which is what lets MCS015 accept a lock taken two frames
above the write it guards.

The :class:`WholeProgramRule` base and :data:`WHOLE_PROGRAM_REGISTRY`
live here as well; concrete rules are in :mod:`repro.analysis.wprules`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path as _Path
from typing import Iterator, Optional, Sequence

from repro.analysis import callgraph
from repro.analysis.callgraph import (
    CALL,
    DYNAMIC,
    HANDOFF,
    Edge,
    FunctionInfo,
    Program,
)
from repro.analysis.lint import Finding, Registry

#: Witness paths are truncated here — past this depth the report is
#: noise, and the cycle guard below needs a bound anyway.
MAX_PATH = 16

#: WAL / 2PC mutation points whose execution must be observable: calls
#: to these functions are "required sites" for span-coverage closure.
REQUIRED_MUTATIONS: tuple[tuple[str, str], ...] = (
    ("repro.db.wal", "append_commit"),
    ("repro.shard.twopc", "_record_decision"),
    ("repro.shard.twopc", "_write_prepare"),
    ("repro.shard.twopc", "_delete_prepare"),
)

Path = tuple[str, ...]


@dataclass
class Summary:
    """Interprocedural facts about one function, with witness paths."""

    blocks: dict[str, Path] = field(default_factory=dict)
    #: labels that block *in this function's own body* (MCS011 territory;
    #: MCS012 reports only facts that arrived through a call edge)
    direct_blocks: set[str] = field(default_factory=set)
    acquires: dict[str, Path] = field(default_factory=dict)
    pairs: dict[tuple[str, str], Path] = field(default_factory=dict)
    raises: dict[str, Path] = field(default_factory=dict)
    uncovered: dict[str, Path] = field(default_factory=dict)

    def size(self) -> int:
        return (
            len(self.blocks)
            + len(self.acquires)
            + len(self.pairs)
            + len(self.raises)
            + len(self.uncovered)
        )


def _step(qual: str, line: int, note: str = "") -> str:
    return f"{qual}:{line}" + (f" ({note})" if note else "")


def _extend(qual: str, line: int, path: Path) -> Path:
    if len(path) >= MAX_PATH:
        return path
    return (_step(qual, line),) + path


def _own_summary(
    program: Program,
    info: FunctionInfo,
    required: set[str],
) -> Summary:
    s = Summary()
    qual = info.qualname
    for site in info.blocking:
        s.blocks.setdefault(site.label, (_step(qual, site.line, site.label),))
        s.direct_blocks.add(site.label)
    for acq in info.acquires:
        short = acq.lock.rsplit(".", 2)
        short_name = ".".join(short[-2:])
        s.acquires.setdefault(
            acq.lock, (_step(qual, acq.line, f"acquires {short_name}"),)
        )
        for held in acq.held:
            s.pairs.setdefault(
                (held, acq.lock),
                (_step(qual, acq.line, f"acquires {short_name} while holding"),),
            )
    for site in info.raises:
        if not site.exc:
            continue
        if any(program.catches(h.caught, site.exc) for h in site.handlers):
            continue  # absorbed locally; handler-body raises recorded apart
        s.raises.setdefault(
            site.exc, (_step(qual, site.line, f"raises {site.exc}"),)
        )
    for fs in info.fault_sites:
        if not fs.under_span:
            key = f"fault-site {fs.label or '?'} at {qual}:{fs.line}"
            s.uncovered.setdefault(key, (_step(qual, fs.line, "fault site"),))
    for edge in info.edges:
        if edge.callee in required and edge.kind is not HANDOFF:
            callee_info = program.functions.get(edge.callee)
            if callee_info is not None and callee_info.opens_span:
                continue  # the mutation wraps itself in a span
            if not edge.under_span:
                key = f"mutation {edge.callee} called at {qual}:{edge.line}"
                s.uncovered.setdefault(
                    key, (_step(qual, edge.line, f"calls {edge.callee}"),)
                )
    return s


def _merge(
    program: Program,
    caller: Summary,
    callee: Summary,
    edge: Edge,
) -> bool:
    """Fold *callee*'s summary into *caller* across *edge*.

    Returns True when any new fact appeared (fix-point detection).
    """
    before = caller.size()
    q, ln = edge.caller, edge.line

    if edge.kind == CALL:
        for label, path in callee.blocks.items():
            caller.blocks.setdefault(label, _extend(q, ln, path))
        for lock, path in callee.acquires.items():
            caller.acquires.setdefault(lock, _extend(q, ln, path))
        for pair, path in callee.pairs.items():
            caller.pairs.setdefault(pair, _extend(q, ln, path))
        # interprocedural ordering: locks held at this call site come
        # before everything the callee will acquire
        for held in edge.locks_held:
            for lock, path in callee.acquires.items():
                if held != lock:
                    caller.pairs.setdefault((held, lock), _extend(q, ln, path))
        if not edge.under_span:
            for key, path in callee.uncovered.items():
                caller.uncovered.setdefault(key, _extend(q, ln, path))

    if edge.kind in (CALL, HANDOFF):
        # exceptions re-raise across awaited executor futures as well
        for exc, path in callee.raises.items():
            if any(program.catches(h.caught, exc) for h in edge.handlers):
                continue
            caller.raises.setdefault(exc, _extend(q, ln, path))

    return caller.size() != before


def summarize(
    program: Program,
    required_mutations: Sequence[tuple[str, str]] = REQUIRED_MUTATIONS,
) -> dict[str, Summary]:
    """Compute every function's summary over the SCC condensation."""
    required = {
        info.qualname
        for info in program.functions.values()
        if (info.module, info.name) in set(required_mutations)
    }
    summaries: dict[str, Summary] = {}
    for component in program.sccs():  # reverse topo: callees first
        for qual in component:
            summaries[qual] = _own_summary(
                program, program.functions[qual], required
            )
        changed = True
        while changed:
            changed = False
            for qual in component:
                for edge in program.functions[qual].edges:
                    callee = summaries.get(edge.callee)
                    if callee is None or edge.callee == qual:
                        continue
                    if _merge(program, summaries[qual], callee, edge):
                        changed = True
    return summaries


def held_at_entry(
    program: Program, roots: set[str]
) -> dict[str, Optional[frozenset[str]]]:
    """Locks definitely held whenever each function is entered.

    Forward must-analysis from *roots* (the concurrency entry points,
    which start with nothing held): ``H(f)`` is the intersection over
    every reachable CALL edge into ``f`` of ``H(caller) ∪ locks held at
    the call site``.  ``None`` means "not reachable from any root" —
    rules should skip such functions rather than assume anything.
    """
    held: dict[str, Optional[frozenset[str]]] = {
        qual: None for qual in program.functions
    }
    for root in roots:
        if root in held:
            held[root] = frozenset()
    changed = True
    while changed:
        changed = False
        for qual, info in program.functions.items():
            h_caller = held[qual]
            if h_caller is None:
                continue
            for edge in info.edges:
                if edge.callee not in held:
                    continue
                if edge.kind == HANDOFF:
                    incoming: frozenset[str] = frozenset()  # new thread
                else:
                    incoming = h_caller | frozenset(edge.locks_held)
                current = held[edge.callee]
                new = incoming if current is None else current & incoming
                if new != current:
                    held[edge.callee] = new
                    changed = True
    return held


def reachable(
    program: Program,
    roots: Sequence[str],
    kinds: Sequence[str] = (CALL, DYNAMIC),
) -> set[str]:
    """Functions reachable from *roots* over the given edge kinds."""
    seen: set[str] = set()
    stack = [r for r in roots if r in program.functions]
    kindset = set(kinds)
    while stack:
        qual = stack.pop()
        if qual in seen:
            continue
        seen.add(qual)
        for edge in program.functions[qual].edges:
            if edge.kind in kindset and edge.callee in program.functions:
                if edge.callee not in seen:
                    stack.append(edge.callee)
    return seen


# --------------------------------------------------------------------------
# Whole-program rule machinery
# --------------------------------------------------------------------------


@dataclass
class ProgramContext:
    """Everything a whole-program rule gets to look at."""

    program: Program
    summaries: dict[str, Summary]


class WholeProgramRule:
    """Base class for interprocedural rules (MCS012+).

    Unlike :class:`repro.analysis.lint.Rule`, these see the whole
    :class:`ProgramContext` at once instead of one module's AST, and are
    registered with :data:`WHOLE_PROGRAM_REGISTRY` so the fast per-module
    pass never pays for them.
    """

    id: str = ""
    name: str = ""
    invariant: str = ""

    def check_program(
        self, ctx: ProgramContext
    ) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError

    def finding(
        self,
        info_or_file,
        line: int,
        message: str,
        trace: Path = (),
    ) -> Finding:
        file = (
            info_or_file.relpath
            if isinstance(info_or_file, FunctionInfo)
            else info_or_file
        )
        return Finding(
            file=file,
            line=line,
            rule_id=self.id,
            message=message,
            trace=tuple(trace),
        )


#: Registry the ``--whole-program`` phase runs; populated by
#: repro.analysis.wprules at import time.
WHOLE_PROGRAM_REGISTRY = Registry()


def register_whole_program(rule_cls):
    """Class decorator twin of :func:`repro.analysis.lint.register`."""
    return WHOLE_PROGRAM_REGISTRY.register(rule_cls)


def run_whole_program(
    paths: Sequence[str | _Path],
    registry: Optional[Registry] = None,
    select: Optional[Sequence[str]] = None,
) -> list[Finding]:
    """Build the program, summarize, and run every whole-program rule.

    Findings suppressed by an inline ``# wp-ok: MCS0xx reason`` comment
    (on the finding's line or the line above it) are dropped here, so
    individual rules never need to know about suppressions.
    """
    from repro.analysis import wprules  # registration side effect

    registry = registry if registry is not None else WHOLE_PROGRAM_REGISTRY
    wanted = set(select) if select is not None else None
    rules = [
        r for r in registry.rules() if wanted is None or r.id in wanted
    ]
    if not rules:
        return []
    program = callgraph.build_program(paths)
    wprules.wire_dispatch(program)
    ctx = ProgramContext(program=program, summaries=summarize(program))
    findings: list[Finding] = []
    for rule in rules:
        for finding in rule.check_program(ctx):
            if program.suppressed(
                finding.file, finding.line, finding.rule_id
            ) or program.suppressed(
                finding.file, finding.line - 1, finding.rule_id
            ):
                continue
            findings.append(finding)
    return sorted(findings)
