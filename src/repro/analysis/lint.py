"""AST-based custom lint framework for the repro codebase.

The protocols that make this reproduction correct — strict-2PL locking,
commit-time generation bumps, the mid-transaction cache bypass, the
centralized SOAP fault table — are invariants the type system cannot
express.  This framework ossifies them as machine-checked rules instead
of review lore:

* a :class:`Rule` inspects one module's AST (plus a little cross-file
  state for registry-style rules) and yields :class:`Finding`s;
* the :class:`Registry` holds every rule; :func:`run_paths` walks the
  requested files/directories, parses each module once, and fans the
  shared AST out to all applicable rules;
* findings carry ``rule_id``, ``file``, ``line`` and a message, render
  one-per-line (``file:line: RULE-ID message``) and drive the process
  exit code — ``mcs lint`` / ``python -m repro.analysis`` exit non-zero
  iff any finding was produced.

Rules live in :mod:`repro.analysis.rules`; importing that module
populates the default registry.
"""

from __future__ import annotations

import ast
import fnmatch
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator, Optional, Sequence


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, pinned to a source location.

    Whole-program rules attach a ``trace`` — the call path that makes an
    interprocedural violation real, one ``module.func:line`` step per
    frame.  Per-module findings leave it empty and serialize exactly as
    before.
    """

    file: str
    line: int
    rule_id: str
    message: str
    trace: tuple[str, ...] = ()

    def render(self) -> str:
        return f"{self.file}:{self.line}: {self.rule_id} {self.message}"

    def render_with_trace(self) -> str:
        lines = [self.render()]
        lines.extend(f"    via {step}" for step in self.trace)
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        out: dict[str, object] = {
            "file": self.file,
            "line": self.line,
            "rule": self.rule_id,
            "message": self.message,
        }
        if self.trace:
            out["trace"] = list(self.trace)
        return out


@dataclass
class Module:
    """One parsed source module handed to every rule."""

    path: Path
    #: Path relative to the scan root, with ``/`` separators — what
    #: findings report.
    relpath: str
    #: Dotted module name rooted at the ``repro`` package when the file
    #: lives under one (``repro.db.engine``); bare stem otherwise.  Rule
    #: allowlists match against this, so results don't depend on whether
    #: the scan was invoked on ``src``, ``src/repro`` or a single file.
    dotted: str
    source: str
    tree: ast.Module

    _type_checking_lines: Optional[set[int]] = None

    def in_package(self, *prefixes: str) -> bool:
        """True when the module is (or lives under) one of *prefixes*."""
        return any(
            self.dotted == p or self.dotted.startswith(p + ".") for p in prefixes
        )

    def in_type_checking_block(self, node: ast.AST) -> bool:
        """True when *node* sits under an ``if TYPE_CHECKING:`` guard."""
        if self._type_checking_lines is None:
            lines: set[int] = set()
            for stmt in ast.walk(self.tree):
                if isinstance(stmt, ast.If) and _is_type_checking_test(stmt.test):
                    for child in stmt.body:
                        end = getattr(child, "end_lineno", child.lineno)
                        lines.update(range(child.lineno, end + 1))
            self._type_checking_lines = lines
        return getattr(node, "lineno", -1) in self._type_checking_lines


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


class Rule:
    """Base class: subclass, set the metadata, implement :meth:`check`.

    ``exempt_modules`` lists dotted module names (or package prefixes)
    the rule skips entirely — the engine's own internals are allowed to
    do what the rest of the tree is not.  ``exempt_globs`` additionally
    matches the scan-root-relative path, for non-package trees.
    """

    id: str = ""
    name: str = ""
    #: One-line statement of the invariant the rule guards (shown by
    #: ``mcs lint --explain`` and embedded in INTERNALS.md).
    invariant: str = ""
    #: When non-empty, the rule runs only on modules under these package
    #: prefixes — e.g. ``("repro",)`` for library-only rules that should
    #: ignore example scripts handed to the same lint run.
    only_modules: Sequence[str] = ()
    exempt_modules: Sequence[str] = ()
    exempt_globs: Sequence[str] = ()

    def applies_to(self, module: Module) -> bool:
        if self.only_modules and not module.in_package(*self.only_modules):
            return False
        if module.in_package(*self.exempt_modules):
            return False
        return not any(
            fnmatch.fnmatch(module.relpath, pat) for pat in self.exempt_globs
        )

    def check(self, module: Module) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError

    # -- helpers shared by concrete rules -----------------------------------

    def finding(self, module: Module, node: ast.AST, message: str) -> Finding:
        return Finding(
            file=module.relpath,
            line=getattr(node, "lineno", 0),
            rule_id=self.id,
            message=message,
        )


class Registry:
    """Ordered collection of rules, keyed by rule id."""

    def __init__(self) -> None:
        self._rules: dict[str, Rule] = {}

    def register(self, rule_cls: type[Rule]) -> type[Rule]:
        """Class decorator: instantiate and add the rule (id must be new)."""
        rule = rule_cls()
        if not rule.id:
            raise ValueError(f"{rule_cls.__name__} has no rule id")
        if rule.id in self._rules:
            raise ValueError(f"duplicate rule id {rule.id!r}")
        self._rules[rule.id] = rule
        return rule_cls

    def rules(self) -> list[Rule]:
        return [self._rules[rule_id] for rule_id in sorted(self._rules)]

    def get(self, rule_id: str) -> Optional[Rule]:
        return self._rules.get(rule_id)

    def __len__(self) -> int:
        return len(self._rules)


#: The default registry `mcs lint` runs; populated by repro.analysis.rules.
DEFAULT_REGISTRY = Registry()


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Register *rule_cls* with the default registry (class decorator)."""
    return DEFAULT_REGISTRY.register(rule_cls)


# --------------------------------------------------------------------------
# Source discovery and the lint run
# --------------------------------------------------------------------------


def iter_python_files(paths: Sequence[Path]) -> Iterator[tuple[Path, Path]]:
    """Yield ``(root, file)`` pairs for every ``.py`` under *paths*.

    ``root`` is the requested path the file was found under, so relative
    paths in findings stay stable regardless of the caller's CWD.
    """
    for requested in paths:
        if requested.is_file():
            yield requested.parent, requested
            continue
        for file in sorted(requested.rglob("*.py")):
            yield requested, file


def _dotted_name(path: Path) -> str:
    """Dotted module name for *path*, rooted at its ``repro`` package."""
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts.pop()
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return ".".join(parts[i:])
    return parts[-1] if parts else ""


def load_module(root: Path, path: Path) -> Module:
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    try:
        rel = path.relative_to(root)
    except ValueError:
        rel = path
    return Module(
        path=path,
        relpath=rel.as_posix(),
        dotted=_dotted_name(path.resolve()),
        source=source,
        tree=tree,
    )


def run_paths(
    paths: Sequence[str | Path],
    registry: Optional[Registry] = None,
    select: Optional[Iterable[str]] = None,
    on_error: Optional[Callable[[Path, SyntaxError], None]] = None,
) -> list[Finding]:
    """Lint every Python file under *paths*; returns sorted findings.

    ``select`` restricts the run to the given rule ids.  Unparseable
    files produce a synthetic ``LINT-SYNTAX`` finding (a file the linter
    cannot read is a finding, not a crash) and are reported through
    ``on_error`` when provided.
    """
    registry = registry if registry is not None else DEFAULT_REGISTRY
    wanted = set(select) if select is not None else None
    rules = [r for r in registry.rules() if wanted is None or r.id in wanted]
    findings: list[Finding] = []
    for root, file in iter_python_files([Path(p) for p in paths]):
        try:
            module = load_module(root, file)
        except SyntaxError as exc:
            if on_error is not None:
                on_error(file, exc)
            findings.append(
                Finding(
                    file=str(file),
                    line=exc.lineno or 0,
                    rule_id="LINT-SYNTAX",
                    message=f"could not parse: {exc.msg}",
                )
            )
            continue
        for rule in rules:
            if rule.applies_to(module):
                findings.extend(rule.check(module))
    return sorted(findings)


def render_report(
    findings: Sequence[Finding],
    fmt: str = "text",
    rules: Sequence[Rule] = (),
) -> str:
    """Render findings as text, a JSON document, or a SARIF 2.1.0 log.

    ``rules`` feeds the SARIF tool metadata (rule ids + invariants); the
    other formats ignore it.
    """
    if fmt == "json":
        return json.dumps([f.to_dict() for f in findings], indent=2)
    if fmt == "sarif":
        return render_sarif(findings, rules)
    lines = [f.render_with_trace() for f in findings]
    lines.append(
        f"{len(findings)} finding{'s' if len(findings) != 1 else ''}"
        if findings
        else "clean: no findings"
    )
    return "\n".join(lines)


def render_sarif(findings: Sequence[Finding], rules: Sequence[Rule] = ()) -> str:
    """SARIF 2.1.0 log for code-scanning upload.

    One run, one result per finding; interprocedural traces ride along
    in the message text (one ``via`` line per frame) so alerts stay
    readable without SARIF codeFlow viewers.
    """
    rule_meta = [
        {
            "id": rule.id,
            "name": rule.name or rule.id,
            "shortDescription": {"text": rule.invariant or rule.name or rule.id},
        }
        for rule in rules
    ]
    known_ids = {meta["id"] for meta in rule_meta}
    results = []
    for finding in findings:
        text = finding.message
        if finding.trace:
            text += "".join(f"\nvia {step}" for step in finding.trace)
        result: dict[str, object] = {
            "ruleId": finding.rule_id,
            "level": "error",
            "message": {"text": text},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.file},
                        "region": {"startLine": max(finding.line, 1)},
                    }
                }
            ],
        }
        if finding.rule_id in known_ids:
            result["ruleIndex"] = next(
                i for i, meta in enumerate(rule_meta) if meta["id"] == finding.rule_id
            )
        results.append(result)
    log = {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "mcs-lint",
                        "informationUri": "https://example.invalid/mcs-lint",
                        "rules": rule_meta,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2)


# --------------------------------------------------------------------------
# Baselines: accept a known finding, but never silently
# --------------------------------------------------------------------------


def write_baseline(findings: Sequence[Finding], path: Path) -> None:
    """Write a baseline file accepting the given findings.

    Every entry is written with an *empty* ``justification``;
    :func:`load_baseline` refuses to use an entry until someone fills it
    in, so accepting a finding always leaves a human-written reason in
    the diff.
    """
    entries = [
        {
            "rule": f.rule_id,
            "file": f.file,
            "message": f.message,
            "justification": "",
        }
        for f in sorted(findings)
    ]
    path.write_text(
        json.dumps({"entries": entries}, indent=2) + "\n", encoding="utf-8"
    )


def load_baseline(path: Path) -> list[dict[str, str]]:
    """Load and validate a baseline file.

    Raises ``ValueError`` for malformed entries or — deliberately — for
    entries whose ``justification`` is empty: a baseline is a list of
    *argued* exceptions, not a mute button.
    """
    data = json.loads(path.read_text(encoding="utf-8"))
    entries = data.get("entries")
    if not isinstance(entries, list):
        raise ValueError(f"{path}: baseline must contain an 'entries' list")
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise ValueError(f"{path}: entry {i} is not an object")
        for key in ("rule", "file", "message", "justification"):
            if not isinstance(entry.get(key), str):
                raise ValueError(f"{path}: entry {i} is missing {key!r}")
        if not entry["justification"].strip():
            raise ValueError(
                f"{path}: entry {i} ({entry['rule']} in {entry['file']}) has an "
                "empty justification — explain why this finding is accepted"
            )
    return entries


def apply_baseline(
    findings: Sequence[Finding], entries: Sequence[dict[str, str]]
) -> tuple[list[Finding], int, list[dict[str, str]]]:
    """Drop findings matched by the baseline.

    Matching ignores line numbers (code above a finding moves constantly;
    the finding itself is identified by rule + file + message).  Returns
    ``(kept, suppressed_count, unused_entries)`` — unused entries signal
    a fixed finding whose baseline entry should now be deleted.
    """
    keys = {(e["rule"], e["file"], e["message"]) for e in entries}
    kept: list[Finding] = []
    used: set[tuple[str, str, str]] = set()
    for finding in findings:
        key = (finding.rule_id, finding.file, finding.message)
        if key in keys:
            used.add(key)
        else:
            kept.append(finding)
    unused = [
        e for e in entries if (e["rule"], e["file"], e["message"]) not in used
    ]
    return kept, len(findings) - len(kept), unused
