"""Whole-program rules MCS012–MCS016.

Each rule here needs facts no single module contains: a blocking call
two frames under a coroutine, a lock ordering split across subsystems,
an exception minted in the db engine surfacing untyped at the SOAP
boundary.  They consume the :mod:`repro.analysis.callgraph` program and
the :mod:`repro.analysis.flow` summaries, and report findings with a
``trace`` — the call path that makes the violation real.

Suppression: ``# wp-ok: MCS0xx reason`` on (or directly above) the
flagged line, with a mandatory human-readable reason; or a
``--baseline`` file with per-entry justifications for findings that
must land before their fix can.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.callgraph import (
    CALL,
    DYNAMIC,
    HANDOFF,
    Edge,
    Handler,
    Program,
)
from repro.analysis.flow import (
    ProgramContext,
    WholeProgramRule,
    held_at_entry,
    reachable,
    register_whole_program,
)
from repro.analysis.lint import Finding

# --------------------------------------------------------------------------
# Dispatch wiring
# --------------------------------------------------------------------------
#
# The SOAP dispatch chain goes through two indirections the call graph
# cannot resolve statically: ``SoapDispatcher`` calls ``self._handler``
# (a callable stored at construction — in practice a service's
# ``handle`` method) and the service's ``_dispatch`` reaches its ops via
# ``getattr(self, "op_" + name)``.  Both wirings are protocol facts, not
# code facts, so we assert them here as synthetic edges: dispatcher →
# every ``handle`` on a class that defines ``op_*`` methods (under the
# dispatcher's span, as the real call site is), and ``_dispatch`` →
# every op on the same class (guarded by the real fault-translation
# handlers around the real ``op(**args)`` call).

_DISPATCH_HANDLERS = (
    Handler(
        caught=("MCSError", "SecurityError", "DatabaseError"),
        silent=False,
        reraises=True,
        line=0,
    ),
    Handler(caught=("TypeError",), silent=False, reraises=True, line=0),
)


def wire_dispatch(program: Program) -> None:
    dispatchers = [
        info
        for info in program.functions.values()
        if info.name == "dispatch"
        and info.class_qual is not None
        and info.class_qual.endswith("SoapDispatcher")
    ]
    for cls in program.classes.values():
        ops = sorted(
            qual for name, qual in cls.methods.items() if name.startswith("op_")
        )
        if not ops:
            continue
        handle = cls.methods.get("handle")
        if handle is not None:
            for dispatcher in dispatchers:
                dispatcher.edges.append(
                    Edge(
                        caller=dispatcher.qualname,
                        callee=handle,
                        line=dispatcher.lineno,
                        kind=CALL,
                        under_span=True,
                        locks_held=(),
                        handlers=(),
                    )
                )
        inner = cls.methods.get("_dispatch")
        if inner is None:
            continue
        inner_info = program.functions[inner]
        for op in ops:
            inner_info.edges.append(
                Edge(
                    caller=inner,
                    callee=op,
                    line=inner_info.lineno,
                    kind=CALL,
                    under_span=False,
                    locks_held=(),
                    handlers=_DISPATCH_HANDLERS,
                )
            )


# --------------------------------------------------------------------------
# shared helpers
# --------------------------------------------------------------------------


def _parse_step(step: str) -> tuple[str, int]:
    """``"pkg.mod.fn:12 (note)"`` → ``("pkg.mod.fn", 12)``."""
    head = step.split(" (", 1)[0]
    qual, _, line = head.rpartition(":")
    try:
        return qual, int(line)
    except ValueError:
        return head, 0


def _short(qual: str) -> str:
    parts = qual.split(".")
    return ".".join(parts[-2:]) if len(parts) > 2 else qual


def _site_of(program: Program, path: tuple[str, ...]) -> tuple[str, int]:
    """(relpath, line) of the first step of a witness path."""
    qual, line = _parse_step(path[0])
    info = program.functions.get(qual)
    return (info.relpath if info is not None else qual, line)


def _op_methods(program: Program) -> list[str]:
    return sorted(
        info.qualname
        for info in program.functions.values()
        if info.name.startswith("op_") and info.class_qual is not None
    )


def _entry_path(
    program: Program, entries: set[str], target: str
) -> tuple[str, ...]:
    """Shortest CALL-edge path entry → target, as trace steps."""
    from collections import deque

    parents: dict[str, tuple[str, int]] = {}
    queue = deque(sorted(e for e in entries if e in program.functions))
    seen = set(queue)
    while queue:
        qual = queue.popleft()
        if qual == target:
            steps: list[str] = []
            cursor = qual
            while cursor in parents:
                caller, line = parents[cursor]
                steps.append(f"{caller}:{line} (calls {_short(cursor)})")
                cursor = caller
            return tuple(reversed(steps))
        for edge in program.edges_from(qual):
            if edge.kind == CALL and edge.callee not in seen:
                seen.add(edge.callee)
                parents[edge.callee] = (qual, edge.line)
                queue.append(edge.callee)
    return ()


# --------------------------------------------------------------------------
# MCS012 — transitive blocking in coroutines
# --------------------------------------------------------------------------


@register_whole_program
class TransitiveBlockingInCoroutine(WholeProgramRule):
    id = "MCS012"
    name = "transitive-blocking-in-coroutine"
    invariant = (
        "A coroutine must not reach a blocking primitive (time.sleep, "
        "socket I/O, sqlite3, open) through any chain of synchronous "
        "helpers; blocking work crosses to a thread via run_in_executor/"
        "to_thread, which cuts the propagation."
    )

    def check_program(self, ctx: ProgramContext) -> Iterator[Finding]:
        for qual in sorted(ctx.program.functions):
            info = ctx.program.functions[qual]
            if not info.is_async:
                continue
            summary = ctx.summaries.get(qual)
            if summary is None:
                continue
            for label, path in sorted(summary.blocks.items()):
                if len(path) < 2:
                    continue  # direct blocking is MCS011's (per-module)
                _, line = _parse_step(path[0])
                yield self.finding(
                    info,
                    line,
                    f"coroutine {_short(qual)} transitively reaches "
                    f"blocking {label} through a sync call chain",
                    trace=path,
                )


# --------------------------------------------------------------------------
# MCS013 — static lock-order cycles
# --------------------------------------------------------------------------


@register_whole_program
class StaticLockOrderCycle(WholeProgramRule):
    id = "MCS013"
    name = "static-lock-order-cycle"
    invariant = (
        "The acquisition-order graph over threading locks must be "
        "acyclic: if any path acquires A then B (directly or through "
        "calls), no path may acquire B then A."
    )

    def check_program(self, ctx: ProgramContext) -> Iterator[Finding]:
        # global acquisition-order graph; first witness per ordered pair
        order: dict[tuple[str, str], tuple[str, ...]] = {}
        for qual in sorted(ctx.summaries):
            for pair, path in ctx.summaries[qual].pairs.items():
                if pair[0] != pair[1]:
                    order.setdefault(pair, path)
        adjacency: dict[str, set[str]] = {}
        for a, b in order:
            adjacency.setdefault(a, set()).add(b)
            adjacency.setdefault(b, set())
        for component in _lock_sccs(adjacency):
            if len(component) < 2:
                continue
            cycle = _cycle_in(sorted(component), adjacency)
            witness: list[str] = []
            for a, b in zip(cycle, cycle[1:] + cycle[:1]):
                if (a, b) in order:
                    witness.append(f"[{_short(a)} -> {_short(b)}]")
                    witness.extend(order[(a, b)])
            first = next(
                (a, b)
                for a, b in zip(cycle, cycle[1:] + cycle[:1])
                if (a, b) in order
            )
            file, line = _site_of(ctx.program, order[first])
            names = " -> ".join(_short(lock) for lock in cycle + cycle[:1])
            yield self.finding(
                file,
                line,
                f"lock-order cycle: {names}; a thread interleaving across "
                "these paths can deadlock",
                trace=tuple(witness),
            )


def _lock_sccs(adjacency: dict[str, set[str]]) -> list[list[str]]:
    """Tarjan over the small lock graph (recursive is fine here)."""
    import sys

    index: dict[str, int] = {}
    low: dict[str, int] = {}
    stack: list[str] = []
    on_stack: set[str] = set()
    out: list[list[str]] = []
    counter = [0]
    sys.setrecursionlimit(max(sys.getrecursionlimit(), 10_000))

    def strong(node: str) -> None:
        index[node] = low[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        for succ in sorted(adjacency.get(node, ())):
            if succ not in index:
                strong(succ)
                low[node] = min(low[node], low[succ])
            elif succ in on_stack:
                low[node] = min(low[node], index[succ])
        if low[node] == index[node]:
            component: list[str] = []
            while True:
                member = stack.pop()
                on_stack.discard(member)
                component.append(member)
                if member == node:
                    break
            out.append(component)

    for node in sorted(adjacency):
        if node not in index:
            strong(node)
    return out


def _cycle_in(component: list[str], adjacency: dict[str, set[str]]) -> list[str]:
    """One simple cycle inside a strongly connected lock set."""
    members = set(component)
    start = component[0]
    path = [start]
    seen = {start}
    node = start
    while True:
        succ = next(
            s for s in sorted(adjacency.get(node, ())) if s in members
        )
        if succ == start:
            return path
        if succ in seen:
            return path[path.index(succ):]
        path.append(succ)
        seen.add(succ)
        node = succ


# --------------------------------------------------------------------------
# MCS014 — fault-flow completeness
# --------------------------------------------------------------------------


@register_whole_program
class FaultFlowCompleteness(WholeProgramRule):
    id = "MCS014"
    name = "fault-flow-completeness"
    invariant = (
        "Every project exception type that can propagate out of a "
        "dispatch-reachable op must map to a code in the central fault "
        "table (core.errors.fault_code_for), and no except clause on "
        "those paths may silently swallow a TransportError."
    )

    def check_program(self, ctx: ProgramContext) -> Iterator[Finding]:
        program = ctx.program
        registered = _registered_fault_roots(program)
        project_exceptions = {
            cls.name
            for cls in program.classes.values()
            if "Exception" in program.exception_ancestors(cls.name)
            or "BaseException" in program.exception_ancestors(cls.name)
        }
        ops = _op_methods(program)
        emitted: set[tuple[str, int, str]] = set()
        for op in ops:
            info = program.functions[op]
            summary = ctx.summaries.get(op)
            if summary is None:
                continue
            for exc, path in sorted(summary.raises.items()):
                if exc not in project_exceptions:
                    continue  # builtin leaks are MCS004's per-module domain
                if program.exception_ancestors(exc) & registered:
                    continue
                file, line = _site_of(program, path)
                key = (file, line, exc)
                if key in emitted:
                    continue
                emitted.add(key)
                yield self.finding(
                    file,
                    line,
                    f"{exc} can escape {_short(op)} to the SOAP boundary "
                    "but has no central fault-table mapping "
                    "(clients would see an opaque Server fault)",
                    trace=path,
                )
        yield from self._swallowed_transport(ctx, ops)

    def _swallowed_transport(
        self, ctx: ProgramContext, ops: list[str]
    ) -> Iterator[Finding]:
        program = ctx.program
        roots = list(ops) + [
            info.qualname
            for info in program.functions.values()
            if info.name == "dispatch"
            and (info.class_qual or "").endswith("SoapDispatcher")
        ]
        reach = reachable(program, roots, kinds=(CALL, DYNAMIC, HANDOFF))
        emitted: set[tuple[str, int]] = set()
        for qual in sorted(reach):
            info = program.functions[qual]
            for edge in info.edges:
                callee = ctx.summaries.get(edge.callee)
                if callee is None:
                    continue
                transport_raised = sorted(
                    exc
                    for exc in callee.raises
                    if "TransportError" in program.exception_ancestors(exc)
                )
                if not transport_raised:
                    continue
                for handler in edge.handlers:
                    if not handler.silent:
                        continue
                    for exc in transport_raised:
                        if program.catches(handler.caught, exc):
                            key = (info.relpath, handler.line)
                            if key in emitted:
                                break
                            emitted.add(key)
                            yield self.finding(
                                info,
                                handler.line,
                                f"except clause silently swallows {exc} "
                                f"raised by {_short(edge.callee)} on a "
                                "dispatch-reachable path; transport faults "
                                "must surface or be re-raised",
                                trace=callee.raises[exc],
                            )
                            break


def _registered_fault_roots(program: Program) -> set[str]:
    """Exception names the fault table maps, from fault_code_for's AST.

    Parsed, not hard-coded: extending ``fault_code_for`` with a new
    ``isinstance`` arm *is* how a new exception family gets registered,
    and MCS014 must see the extension without being edited.
    """
    roots = {"TypeError", "SoapFault"}  # handled at the dispatch layer
    for qual, info in program.functions.items():
        if not (
            info.module == "repro.core.errors" and info.name == "fault_code_for"
        ):
            continue
        for node in ast.walk(info.node):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "isinstance"
                and len(node.args) == 2
            ):
                target = node.args[1]
                elements = (
                    target.elts if isinstance(target, ast.Tuple) else [target]
                )
                for element in elements:
                    if isinstance(element, ast.Name):
                        roots.add(element.id)
                    elif isinstance(element, ast.Attribute):
                        roots.add(element.attr)
    return roots


# --------------------------------------------------------------------------
# MCS015 — unguarded shared mutable state
# --------------------------------------------------------------------------


@register_whole_program
class UnguardedSharedState(WholeProgramRule):
    id = "MCS015"
    name = "unguarded-shared-state"
    invariant = (
        "A module-level mutable object written on any path reachable "
        "from a thread or event-loop entry point must be written with "
        "at least one lock held — lexically, or by every caller "
        "(definitely-held-at-entry analysis)."
    )

    def check_program(self, ctx: ProgramContext) -> Iterator[Finding]:
        program = ctx.program
        entries = self._entries(program)
        reach = reachable(program, sorted(entries), kinds=(CALL,))
        held = held_at_entry(program, entries)
        for qual in sorted(reach):
            info = program.functions[qual]
            if not info.global_writes:
                continue
            definitely_held = held.get(qual) or frozenset()
            for write in info.global_writes:
                if write.locks_held or definitely_held:
                    continue
                yield self.finding(
                    info,
                    write.line,
                    f"module global {write.target} is mutated without any "
                    "lock held on a concurrency-reachable path",
                    trace=_entry_path(program, entries, qual),
                )

    @staticmethod
    def _entries(program: Program) -> set[str]:
        entries = set(program.thread_entry_points)
        for info in program.functions.values():
            if info.is_async:
                entries.add(info.qualname)
            elif info.name.startswith("do_") or info.name == "run":
                entries.add(info.qualname)
            elif info.name.startswith("op_") and info.class_qual:
                entries.add(info.qualname)
            elif info.name == "dispatch" and (info.class_qual or "").endswith(
                "SoapDispatcher"
            ):
                entries.add(info.qualname)
        return entries


# --------------------------------------------------------------------------
# MCS016 — span coverage closure
# --------------------------------------------------------------------------

#: (class name, method name) roots whose subtrees must be observable —
#: the interprocedural closure of MCS010's per-module span targets, plus
#: the sharded deployment's dispatch surface (the ops reach it through a
#: ``catalog``-typed attribute the resolver pins to MetadataCatalog, so
#: the facade and the 2PC coordinator are asserted as roots explicitly).
#: A ``"*"`` method matches every public method of the class.
SPAN_ENTRY_POINTS: tuple[tuple[str, str], ...] = (
    ("SoapDispatcher", "dispatch"),
    ("FederatedMCS", "_subquery"),
    ("Replica", "_ship"),
    ("PeriodicUpdater", "tick"),
    ("ShardedCatalog", "*"),
    ("TwoPhaseCoordinator", "run"),
    ("TwoPhaseCoordinator", "recover"),
)


@register_whole_program
class SpanCoverageClosure(WholeProgramRule):
    id = "MCS016"
    name = "span-coverage-closure"
    invariant = (
        "Every fault-injection site and WAL/2PC mutation reachable from "
        "a span entry point (dispatch, federation subquery, replication "
        "ship, updater tick) must execute under some span: either a "
        "caller on the path opened one, or the site's function does."
    )

    def check_program(self, ctx: ProgramContext) -> Iterator[Finding]:
        program = ctx.program
        entries = [
            info.qualname
            for info in program.functions.values()
            for cls_name, meth in SPAN_ENTRY_POINTS
            if (info.class_qual or "").endswith("." + cls_name)
            and (
                info.name == meth
                or (meth == "*" and not info.name.startswith("_"))
            )
        ]
        emitted: set[str] = set()
        for entry in sorted(entries):
            summary = ctx.summaries.get(entry)
            if summary is None:
                continue
            for key, path in sorted(summary.uncovered.items()):
                if key in emitted:
                    continue
                emitted.add(key)
                file, line = _last_site(program, path)
                yield self.finding(
                    file,
                    line,
                    f"{key} is reachable from {_short(entry)} with no "
                    "enclosing span on the path — it would be invisible "
                    "to tracing",
                    trace=path,
                )


def _last_site(program: Program, path: tuple[str, ...]) -> tuple[str, int]:
    qual, line = _parse_step(path[-1])
    info = program.functions.get(qual)
    return (info.relpath if info is not None else qual, line)
