"""Project-wide symbol table and call graph for whole-program lint rules.

The per-module rules (MCS001–MCS011) go blind the moment a violation is
one function call away: a coroutine that calls a sync helper which calls
``time.sleep`` two frames down is invisible to MCS011, a lock-order
inversion split across two modules is invisible to MCS007, an exception
minted in the db engine and leaking untyped out of a SOAP op is invisible
to MCS004.  This module builds the structure those rules need:

* a **symbol table** over every module handed to :func:`build_program` —
  functions (any nesting depth), classes with a linearised base order,
  per-module import aliases, module-level globals (including which of
  them are mutable containers and which are locks), and per-class
  ``self.attr`` type facts inferred from assignments;
* a **call graph** — for every function, the resolved project-internal
  call edges with the *context* each whole-program rule needs: the line,
  whether the call site sits under a ``with span(...)``, which
  ``threading`` locks are lexically held, which ``except`` handlers
  enclose it (and whether they silently swallow), and the edge kind;
* **async/sync coloring** with explicit color boundaries: calls handed
  to a thread pool (``run_in_executor``, ``asyncio.to_thread``,
  ``executor.submit``, ``threading.Thread(target=...)``) are
  :data:`HANDOFF` edges — blocking is legal on the far side.

Resolution strategy (documented in INTERNALS.md, "Whole-program
analysis"):

1. direct names resolve through the local scope chain, then module
   functions/classes, then import aliases (``from x import y as z``);
2. method calls resolve the receiver first — ``self``/``cls``, annotated
   parameters, locals assigned from constructors, ``self.attr`` via the
   class attribute table, module aliases, ``super()`` — then look the
   attribute up through the class's linearised bases;
3. receivers that resolve to something *external* (stdlib modules,
   builtin containers, non-project annotations) produce **no** edge;
4. anything else falls back to **conservative dynamic dispatch**: edges
   to every project function with that method name (kind
   :data:`DYNAMIC`), capped at :data:`DYNAMIC_FANOUT_LIMIT` candidates.

Decorated functions resolve to themselves — decorators (including
``functools.wraps`` wrappers) are assumed to preserve the wrapped
callable's behaviour and color; ``@property`` getters additionally get
edges from bare attribute *accesses* of their name on a resolved
receiver.

The graph is intentionally an over-approximation: rules that cannot
tolerate dynamic-dispatch noise filter on ``Edge.kind``, and residual
imprecision is suppressed inline with ``# wp-ok: MCS0xx reason`` (see
:func:`Program.suppressed`).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Sequence

from repro.analysis.lint import Module, iter_python_files, load_module

# -- edge kinds -------------------------------------------------------------

#: Resolved call through a known symbol (direct, method, super, property).
CALL = "call"
#: Name-based dynamic-dispatch fallback: receiver type unknown.
DYNAMIC = "dynamic"
#: Callable handed to another thread (executor/thread target): a color
#: boundary — blocking is legal on the far side, locks are not held there.
HANDOFF = "handoff"

#: Dynamic fallback gives up past this many same-named candidates: a name
#: like ``close`` matching dozens of methods says nothing about the call.
DYNAMIC_FANOUT_LIMIT = 8

#: ``(module, attr)`` call chains that hand their callable argument to a
#: worker thread.  The position of the callable argument follows.
_HANDOFF_CALLS: dict[str, int] = {
    "run_in_executor": 1,  # loop.run_in_executor(executor, fn, *args)
    "to_thread": 0,  # asyncio.to_thread(fn, *args)
    "submit": 0,  # executor.submit(fn, *args)
}

#: Lock-object factories: an attribute or global assigned one of these is
#: a *lock* for MCS013/MCS015 purposes.  RWLock is deliberately absent —
#: the engine's LockManager acquires table locks in sorted order, which a
#: static pairwise rule cannot see (the runtime sanitizer covers it).
_LOCK_FACTORIES = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)

#: Builtin container constructors: a receiver holding one is *external*
#: (its methods are not project methods) but *mutable* (for MCS015).
_CONTAINER_FACTORIES = frozenset(
    {
        "dict",
        "list",
        "set",
        "OrderedDict",
        "defaultdict",
        "deque",
        "Counter",  # collections.Counter — repro's Counter is resolved first
    }
)

#: Known-blocking primitives: (attribute-chain suffix) → label.  The
#: whole-program closure of MCS011's table, plus the primitives a helper
#: two frames down is likely to hide (sqlite3, subprocess, select).
BLOCKING_CHAINS: dict[tuple[str, ...], str] = {
    ("time", "sleep"): "time.sleep()",
    ("socket", "socket"): "socket.socket()",
    ("socket", "create_connection"): "socket.create_connection()",
    ("socket", "create_server"): "socket.create_server()",
    ("sqlite3", "connect"): "sqlite3.connect()",
    ("subprocess", "run"): "subprocess.run()",
    ("subprocess", "check_output"): "subprocess.check_output()",
    ("select", "select"): "select.select()",
}

#: Attribute names that block regardless of receiver (RWLock + socket).
BLOCKING_ATTRS: dict[str, str] = {
    "acquire_read": "acquire_read()",
    "acquire_write": "acquire_write()",
    "recv": "socket.recv()",
    "sendall": "socket.sendall()",
    "accept": "socket.accept()",
}

_SUPPRESS_RE = re.compile(r"#\s*wp-ok:\s*(MCS\d+)\s+(\S.*)$")


# -- data model -------------------------------------------------------------


@dataclass(frozen=True)
class Handler:
    """One ``except`` clause lexically enclosing a call/raise site."""

    caught: tuple[str, ...]  # exception-type names ("Exception" for bare)
    silent: bool  # body is pass/continue/docstring only
    reraises: bool  # body contains a raise
    line: int


@dataclass(frozen=True)
class Edge:
    """One resolved call edge, with the caller-side context rules need."""

    caller: str
    callee: str
    line: int
    kind: str  # CALL | DYNAMIC | HANDOFF
    under_span: bool
    locks_held: tuple[str, ...]
    handlers: tuple[Handler, ...]


@dataclass(frozen=True)
class RaiseSite:
    """A ``raise`` statement and the handlers lexically above it."""

    line: int
    exc: str  # resolved class name (last attr part)
    bare: bool  # bare ``raise`` (re-raise)
    handlers: tuple[Handler, ...]


@dataclass(frozen=True)
class BlockSite:
    line: int
    label: str


@dataclass(frozen=True)
class AcquireSite:
    """A ``with <lock>:`` acquisition, with the locks already held."""

    line: int
    lock: str
    held: tuple[str, ...]


@dataclass(frozen=True)
class GlobalWrite:
    """A mutation of a module-level mutable object."""

    line: int
    target: str  # qualified global name ("repro.obs.trace._span_hist")
    locks_held: tuple[str, ...]


@dataclass(frozen=True)
class FaultSite:
    """A ``faults.check(...)`` injection-site call."""

    line: int
    label: str
    under_span: bool


@dataclass
class FunctionInfo:
    qualname: str
    module: str
    relpath: str
    name: str
    lineno: int
    is_async: bool
    class_qual: Optional[str]
    node: ast.AST = field(repr=False)
    decorators: tuple[str, ...] = ()
    is_property: bool = False
    # local facts, filled by the body analysis
    edges: list[Edge] = field(default_factory=list)
    blocking: list[BlockSite] = field(default_factory=list)
    raises: list[RaiseSite] = field(default_factory=list)
    acquires: list[AcquireSite] = field(default_factory=list)
    global_writes: list[GlobalWrite] = field(default_factory=list)
    fault_sites: list[FaultSite] = field(default_factory=list)
    opens_span: bool = False


@dataclass
class ClassInfo:
    qualname: str
    module: str
    name: str
    lineno: int
    base_exprs: list[ast.expr] = field(default_factory=list, repr=False)
    bases: list[str] = field(default_factory=list)  # resolved qualnames
    methods: dict[str, str] = field(default_factory=dict)  # name → func qual
    properties: set[str] = field(default_factory=set)
    #: self.attr → ("class", qualname) | ("lock", lock_id) | ("external",)
    attr_types: dict[str, tuple] = field(default_factory=dict)

    def mro(self, program: "Program") -> Iterator["ClassInfo"]:
        """Linearised project-internal base order (DFS, de-duplicated)."""
        seen: set[str] = set()
        stack = [self.qualname]
        while stack:
            qual = stack.pop(0)
            if qual in seen:
                continue
            seen.add(qual)
            info = program.classes.get(qual)
            if info is None:
                continue
            yield info
            stack.extend(info.bases)

    def find_method(self, program: "Program", name: str) -> Optional[str]:
        for cls in self.mro(program):
            if name in cls.methods:
                return cls.methods[name]
        return None

    def is_subclass_of(self, program: "Program", name: str) -> bool:
        """True when *name* (bare class name) appears in the MRO."""
        return any(cls.name == name for cls in self.mro(program))


@dataclass
class ModuleScope:
    module: Module
    #: import alias → dotted target ("_trace" → "repro.obs.trace")
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, str] = field(default_factory=dict)  # name → qual
    classes: dict[str, str] = field(default_factory=dict)  # name → qual
    #: module-global name → ("mutable", line) | ("lock", lock_id)
    #:                    | ("instance", class_qual) | ("other",)
    globals: dict[str, tuple] = field(default_factory=dict)


class Program:
    """The whole program: symbols, classes, functions and the call graph."""

    def __init__(self) -> None:
        self.scopes: dict[str, ModuleScope] = {}  # dotted module → scope
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: method name → [function qualnames] (dynamic-dispatch fallback)
        self.methods_by_name: dict[str, list[str]] = {}
        #: (relpath, line) → {rule_id: reason}
        self.suppressions: dict[tuple[str, int], dict[str, str]] = {}
        #: functions used as thread/executor targets or request handlers.
        self.thread_entry_points: set[str] = set()
        self._ancestor_cache: dict[str, set[str]] = {}

    # -- queries ------------------------------------------------------------

    def edges_from(self, qualname: str) -> list[Edge]:
        info = self.functions.get(qualname)
        return info.edges if info is not None else []

    def suppressed(self, relpath: str, line: int, rule_id: str) -> bool:
        return rule_id in self.suppressions.get((relpath, line), {})

    def exception_ancestors(self, name: str) -> set[str]:
        """Bare names of *name* and every base class we can see.

        Project classes walk their resolved bases; a small builtin
        hierarchy covers the stdlib exceptions the tree raises.
        """
        cached = self._ancestor_cache.get(name)
        if cached is not None:
            return set(cached)
        out = {name}
        for cls in self.classes.values():
            if cls.name != name:
                continue
            for base in cls.mro(self):
                out.add(base.name)
                # continue past project knowledge into builtins below
                out.update(_BUILTIN_BASES.get(base.name, ()))
            for base_qual in _unresolved_base_names(cls):
                out.add(base_qual)
        out.update(_BUILTIN_BASES.get(name, ()))
        frontier = set(out)
        while frontier:
            nxt: set[str] = set()
            for n in frontier:
                for extra in _BUILTIN_BASES.get(n, ()):
                    if extra not in out:
                        out.add(extra)
                        nxt.add(extra)
                for cls in self.classes.values():
                    if cls.name == n:
                        for b in _unresolved_base_names(cls):
                            if b not in out:
                                out.add(b)
                                nxt.add(b)
                        for base in cls.mro(self):
                            if base.name not in out:
                                out.add(base.name)
                                nxt.add(base.name)
            frontier = nxt
        self._ancestor_cache[name] = set(out)
        return out

    def catches(self, handler_names: Sequence[str], exc_name: str) -> bool:
        """Would an ``except (<handler_names>)`` clause catch *exc_name*?"""
        ancestors = self.exception_ancestors(exc_name)
        ancestors.update({"Exception", "BaseException"})
        return any(name in ancestors for name in handler_names)

    # -- SCC machinery ------------------------------------------------------

    def sccs(self) -> list[list[str]]:
        """Tarjan's strongly connected components, iterative form."""
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        out: list[list[str]] = []
        counter = [0]

        adjacency = {
            qual: [e.callee for e in info.edges if e.callee in self.functions]
            for qual, info in self.functions.items()
        }

        for root in self.functions:
            if root in index:
                continue
            work: list[tuple[str, int]] = [(root, 0)]
            while work:
                node, pos = work[-1]
                if pos == 0:
                    index[node] = low[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                advanced = False
                neighbours = adjacency[node]
                while pos < len(neighbours):
                    succ = neighbours[pos]
                    pos += 1
                    if succ not in index:
                        work[-1] = (node, pos)
                        work.append((succ, 0))
                        advanced = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index[succ])
                if advanced:
                    continue
                work[-1] = (node, pos)
                if pos >= len(neighbours):
                    work.pop()
                    if low[node] == index[node]:
                        component: list[str] = []
                        while True:
                            member = stack.pop()
                            on_stack.discard(member)
                            component.append(member)
                            if member == node:
                                break
                        out.append(component)
                    if work:
                        parent = work[-1][0]
                        low[parent] = min(low[parent], low[node])
        return out

    def condensation(self) -> tuple[list[list[str]], dict[int, set[int]]]:
        """SCCs (reverse-topological: callees before callers) + DAG edges."""
        components = self.sccs()
        comp_of: dict[str, int] = {}
        for i, comp in enumerate(components):
            for member in comp:
                comp_of[member] = i
        dag: dict[int, set[int]] = {i: set() for i in range(len(components))}
        for qual, info in self.functions.items():
            for edge in info.edges:
                if edge.callee in comp_of:
                    a, b = comp_of[qual], comp_of[edge.callee]
                    if a != b:
                        dag[a].add(b)
        return components, dag


# -- exception hierarchy knowledge ------------------------------------------

#: Builtin exception → direct bases the raises-analysis must know about.
_BUILTIN_BASES: dict[str, tuple[str, ...]] = {
    "ValueError": ("Exception",),
    "TypeError": ("Exception",),
    "KeyError": ("LookupError",),
    "IndexError": ("LookupError",),
    "LookupError": ("Exception",),
    "RuntimeError": ("Exception",),
    "NotImplementedError": ("RuntimeError",),
    "OSError": ("Exception",),
    "ConnectionError": ("OSError",),
    "ConnectionResetError": ("ConnectionError",),
    "BrokenPipeError": ("ConnectionError",),
    "TimeoutError": ("OSError",),
    "StopIteration": ("Exception",),
    "ArithmeticError": ("Exception",),
    "ZeroDivisionError": ("ArithmeticError",),
    "AttributeError": ("Exception",),
    "Exception": ("BaseException",),
    "KeyboardInterrupt": ("BaseException",),
    "SystemExit": ("BaseException",),
}


def _unresolved_base_names(cls: ClassInfo) -> list[str]:
    """Bare names of base expressions that did not resolve to a project
    class (e.g. ``Exception`` itself, or an aliased stdlib base)."""
    out = []
    for expr in cls.base_exprs:
        chain = _attr_chain(expr)
        if chain and chain[-1] not in {c.split(".")[-1] for c in cls.bases}:
            out.append(chain[-1])
    return out


# -- small AST helpers ------------------------------------------------------


def _attr_chain(node: ast.expr) -> list[str]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    if isinstance(node, ast.Call):
        inner = _attr_chain(node.func)
        if inner:
            return inner + ["()"] + list(reversed(parts))
    return []


def _trailing_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _decorator_names(node: ast.AST) -> tuple[str, ...]:
    names = []
    for dec in getattr(node, "decorator_list", []):
        expr = dec.func if isinstance(dec, ast.Call) else dec
        name = _trailing_name(expr)
        if name:
            names.append(name)
    return tuple(names)


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _trailing_name(node.func)
        return name in _CONTAINER_FACTORIES
    return False


def _lock_factory(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    return _trailing_name(node.func) in _LOCK_FACTORIES


_MUTATING_METHODS = frozenset(
    {
        "append",
        "add",
        "update",
        "extend",
        "insert",
        "pop",
        "popitem",
        "setdefault",
        "remove",
        "discard",
        "clear",
        "appendleft",
        "popleft",
        "move_to_end",
    }
)


# -- the builder ------------------------------------------------------------


class _Builder:
    def __init__(self) -> None:
        self.program = Program()

    # ---- pass 1: symbols ---------------------------------------------------

    def collect_module(self, module: Module) -> None:
        scope = ModuleScope(module=module)
        self.program.scopes[module.dotted] = scope
        self._collect_suppressions(module)
        self._collect_scope(
            module, scope, module.tree.body, prefix=module.dotted, class_qual=None
        )

    def _collect_suppressions(self, module: Module) -> None:
        for lineno, line in enumerate(module.source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if match:
                self.program.suppressions.setdefault(
                    (module.relpath, lineno), {}
                )[match.group(1)] = match.group(2).strip()

    def _collect_scope(
        self,
        module: Module,
        scope: ModuleScope,
        body: Sequence[ast.stmt],
        prefix: str,
        class_qual: Optional[str],
        local_names: Optional[dict[str, str]] = None,
    ) -> None:
        """Register defs/classes/imports/globals in *body*.

        ``local_names`` maps names visible in this lexical scope to
        function/class qualnames (the scope chain for call resolution is
        rebuilt in pass 3; here we only register symbols).
        """
        at_module_level = prefix == module.dotted and class_qual is None
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}.{stmt.name}"
                info = FunctionInfo(
                    qualname=qual,
                    module=module.dotted,
                    relpath=module.relpath,
                    name=stmt.name,
                    lineno=stmt.lineno,
                    is_async=isinstance(stmt, ast.AsyncFunctionDef),
                    class_qual=class_qual,
                    node=stmt,
                    decorators=_decorator_names(stmt),
                )
                info.is_property = "property" in info.decorators or (
                    "cached_property" in info.decorators
                )
                self.program.functions[qual] = info
                if class_qual is not None:
                    cls = self.program.classes[class_qual]
                    cls.methods.setdefault(stmt.name, qual)
                    if info.is_property:
                        cls.properties.add(stmt.name)
                    self.program.methods_by_name.setdefault(
                        stmt.name, []
                    ).append(qual)
                elif at_module_level:
                    scope.functions[stmt.name] = qual
                # nested defs inside this function
                self._collect_scope(
                    module, scope, stmt.body, prefix=qual, class_qual=None
                )
            elif isinstance(stmt, ast.ClassDef):
                qual = f"{prefix}.{stmt.name}"
                cls = ClassInfo(
                    qualname=qual,
                    module=module.dotted,
                    name=stmt.name,
                    lineno=stmt.lineno,
                    base_exprs=list(stmt.bases),
                )
                self.program.classes[qual] = cls
                if at_module_level:
                    scope.classes[stmt.name] = qual
                self._collect_scope(
                    module, scope, stmt.body, prefix=qual, class_qual=qual
                )
                # class-level attribute assignments (locks, containers)
                for sub in stmt.body:
                    self._record_attr_assign(cls, sub, qual)
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    scope.imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
                    if alias.asname:
                        scope.imports[alias.asname] = alias.name
            elif isinstance(stmt, ast.ImportFrom) and stmt.level == 0:
                base = stmt.module or ""
                for alias in stmt.names:
                    scope.imports[alias.asname or alias.name] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)) and at_module_level:
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                )
                value = stmt.value
                for target in targets:
                    if not isinstance(target, ast.Name) or value is None:
                        continue
                    if _lock_factory(value):
                        scope.globals[target.id] = (
                            "lock",
                            f"{module.dotted}.{target.id}",
                        )
                    elif _is_mutable_literal(value):
                        scope.globals[target.id] = ("mutable", target.lineno)
                    elif isinstance(value, ast.Call):
                        name = _trailing_name(value.func)
                        scope.globals[target.id] = ("call", name or "")
                    else:
                        scope.globals[target.id] = ("other",)
            elif isinstance(stmt, (ast.If, ast.Try)):
                # symbols defined under module-level guards still count
                for sub_body in _sub_bodies(stmt):
                    self._collect_scope(
                        module, scope, sub_body, prefix=prefix, class_qual=class_qual
                    )

    def _record_attr_assign(
        self, cls: ClassInfo, stmt: ast.stmt, class_qual: str
    ) -> None:
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            return
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        value = stmt.value
        if value is None:
            return
        for target in targets:
            if isinstance(target, ast.Name):
                if _lock_factory(value):
                    cls.attr_types[target.id] = (
                        "lock",
                        f"{class_qual}.{target.id}",
                    )
                elif _is_mutable_literal(value):
                    cls.attr_types[target.id] = ("external",)

    # ---- pass 2: resolve class bases and self-attr types -------------------

    def link(self) -> None:
        for cls in self.program.classes.values():
            scope = self.program.scopes[cls.module]
            for expr in cls.base_exprs:
                resolved = self._resolve_symbol(scope, expr)
                if resolved and resolved[0] == "class":
                    cls.bases.append(resolved[1])
        for cls in self.program.classes.values():
            for method_qual in list(cls.methods.values()):
                info = self.program.functions[method_qual]
                self._infer_attr_types(cls, info)

    def _infer_attr_types(self, cls: ClassInfo, info: FunctionInfo) -> None:
        scope = self.program.scopes[info.module]
        args = info.node.args
        param_classes: dict[str, str] = {}
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            resolved = self._annotation_class(scope, arg.annotation)
            if resolved and not resolved.startswith("<external:"):
                param_classes[arg.arg] = resolved

        def value_class(value: ast.expr) -> Optional[str]:
            if isinstance(value, ast.IfExp):
                # `x if x is not None else Fallback()` — either branch
                return value_class(value.body) or value_class(value.orelse)
            if isinstance(value, (ast.BoolOp,)):
                for operand in value.values:
                    resolved = value_class(operand)
                    if resolved:
                        return resolved
                return None
            if isinstance(value, ast.Call):
                resolved = self._resolve_symbol(scope, value.func)
                if resolved and resolved[0] == "class":
                    return resolved[1]
                return None
            if isinstance(value, ast.Name):
                if value.id == "self":
                    return cls.qualname
                return param_classes.get(value.id)
            return None

        for node in ast.walk(info.node):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            value = node.value
            if value is None:
                continue
            for target in targets:
                if (
                    not isinstance(target, ast.Attribute)
                    or not isinstance(target.value, ast.Name)
                    or target.value.id not in ("self", "cls")
                ):
                    continue
                attr = target.attr
                if _lock_factory(value):
                    cls.attr_types.setdefault(
                        attr, ("lock", f"{cls.qualname}.{attr}")
                    )
                elif _is_mutable_literal(value):
                    cls.attr_types.setdefault(attr, ("external",))
                else:
                    resolved_cls = value_class(value)
                    if resolved_cls:
                        cls.attr_types.setdefault(attr, ("class", resolved_cls))
                    elif isinstance(node, ast.AnnAssign):
                        ann = self._annotation_class(scope, node.annotation)
                        if ann and not ann.startswith("<external:"):
                            cls.attr_types.setdefault(attr, ("class", ann))

    # ---- symbol resolution -------------------------------------------------

    def _resolve_symbol(
        self, scope: ModuleScope, expr: ast.expr
    ) -> Optional[tuple]:
        """Resolve a name/attribute chain to a project symbol.

        Returns ``("func", qual)``, ``("class", qual)``,
        ``("module", dotted)``, ``("external", dotted)`` or ``None``.
        """
        chain = _attr_chain(expr)
        if not chain or "()" in chain:
            return None
        return self._resolve_chain(scope, chain)

    def _resolve_chain(
        self, scope: ModuleScope, chain: list[str]
    ) -> Optional[tuple]:
        head, rest = chain[0], chain[1:]
        target: Optional[tuple] = None
        if head in scope.functions:
            target = ("func", scope.functions[head])
        elif head in scope.classes:
            target = ("class", scope.classes[head])
        elif head in scope.imports:
            dotted = scope.imports[head]
            target = self._imported_target(dotted)
        elif head in scope.globals:
            info = scope.globals[head]
            if info[0] == "call":
                # module-global assigned from a call; resolve the factory
                factory = self._resolve_chain(scope, [info[1]]) if info[1] else None
                if factory and factory[0] == "class":
                    target = ("instance", factory[1])
                else:
                    return None
            else:
                return None
        else:
            return None
        for part in rest:
            if target is None:
                return None
            kind, qual = target[0], target[1]
            if kind in ("module", "external"):
                target = self._imported_target(f"{qual}.{part}")
            elif kind == "class":
                sub = self.program.classes.get(f"{qual}.{part}")
                fn = self.program.classes[qual].find_method(self.program, part) if qual in self.program.classes else None
                if sub is not None:
                    target = ("class", sub.qualname)
                elif fn is not None:
                    target = ("func", fn)
                else:
                    return None
            else:
                return None
        return target

    def _module_global_type(self, dotted: str) -> Optional[tuple]:
        """Type of another module's global named by *dotted*.

        ``from repro.locks import lock_store`` must give the importing
        module the same lock identity the defining module has — lock
        ordering (MCS013) is meaningless if each importer sees a fresh
        anonymous lock.
        """
        module, _, name = dotted.rpartition(".")
        scope = self.program.scopes.get(module)
        if scope is None or not name:
            return None
        info = scope.globals.get(name)
        if info is None:
            return None
        if info[0] == "lock":
            return ("lock", info[1])
        if info[0] == "mutable":
            return ("external",)
        return None

    def _imported_target(self, dotted: str) -> Optional[tuple]:
        """What a dotted import path denotes, if it is project-internal."""
        if dotted in self.program.scopes:
            return ("module", dotted)
        if dotted in self.program.classes:
            return ("class", dotted)
        if dotted in self.program.functions:
            return ("func", dotted)
        # repro.* that we did not scan is still "project-ish" but unknown;
        # anything else is external (stdlib, third-party).
        if dotted.split(".")[0] in ("repro",) and any(
            dotted.startswith(m + ".") for m in self.program.scopes
        ):
            # submodule attribute that is not a known symbol
            return None
        if dotted.split(".")[0] not in ("repro",):
            return ("external", dotted)
        return None

    def _annotation_class(
        self, scope: ModuleScope, annotation: Optional[ast.expr]
    ) -> Optional[str]:
        """Project class qualname named by a parameter/attr annotation."""
        if annotation is None:
            return None
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(annotation, ast.Subscript):
            # Optional[X] / Union[X, None] / list[X]: look inside
            name = _trailing_name(annotation.value)
            inner = annotation.slice
            if name in ("Optional", "Union"):
                parts = (
                    inner.elts if isinstance(inner, ast.Tuple) else [inner]
                )
                for part in parts:
                    resolved = self._annotation_class(scope, part)
                    if resolved:
                        return resolved
            return None
        if isinstance(annotation, (ast.Name, ast.Attribute)):
            resolved = self._resolve_symbol(scope, annotation)
            if resolved and resolved[0] == "class":
                return resolved[1]
            if resolved and resolved[0] == "external":
                return f"<external:{resolved[1]}>"
        return None

    # ---- pass 3: function bodies -------------------------------------------

    def analyze_bodies(self) -> None:
        for info in list(self.program.functions.values()):
            _BodyAnalyzer(self, info).run()


def _sub_bodies(stmt: ast.stmt) -> Iterator[Sequence[ast.stmt]]:
    for name in ("body", "orelse", "finalbody"):
        body = getattr(stmt, name, None)
        if body:
            yield body
    for handler in getattr(stmt, "handlers", []) or []:
        yield handler.body


class _BodyAnalyzer:
    """Single-function pass: local facts + resolved call edges.

    Walks the function body *excluding* nested def/lambda bodies (those
    are separate graph nodes) while tracking the lexical context stacks:
    span regions, held locks, and enclosing try-handlers.
    """

    def __init__(self, builder: _Builder, info: FunctionInfo) -> None:
        self.b = builder
        self.program = builder.program
        self.info = info
        self.scope = builder.program.scopes[info.module]
        self.cls = (
            builder.program.classes.get(info.class_qual)
            if info.class_qual
            else None
        )
        self.locals: dict[str, tuple] = {}
        self.span_depth = 0
        self.lock_stack: list[str] = []
        self.handler_stack: list[Handler] = []
        # caught-type names of the except-body currently being visited,
        # so a bare ``raise`` resolves to what it re-raises
        self.caught_stack: list[tuple[str, ...]] = []

    # -- local type environment ---------------------------------------------

    def _seed_locals(self) -> None:
        node = self.info.node
        args = node.args
        all_args = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        for arg in all_args:
            if arg.arg in ("self", "cls") and self.cls is not None:
                self.locals[arg.arg] = ("class", self.cls.qualname)
                continue
            resolved = self.b._annotation_class(self.scope, arg.annotation)
            if resolved:
                if resolved.startswith("<external:"):
                    self.locals[arg.arg] = ("external",)
                else:
                    self.locals[arg.arg] = ("class", resolved)

    def run(self) -> None:
        self._seed_locals()
        for stmt in self.info.node.body:
            self._visit(stmt)

    # -- receiver typing -----------------------------------------------------

    def _expr_type(self, expr: ast.expr) -> Optional[tuple]:
        """("class", qual) | ("external",) | ("lock", id) | None."""
        if isinstance(expr, ast.Name):
            if expr.id in self.locals:
                return self.locals[expr.id]
            if expr.id in self.scope.globals:
                info = self.scope.globals[expr.id]
                if info[0] == "lock":
                    return ("lock", info[1])
                if info[0] == "mutable":
                    return ("external",)
                if info[0] == "call":
                    resolved = (
                        self.b._resolve_chain(self.scope, [info[1]])
                        if info[1]
                        else None
                    )
                    if resolved and resolved[0] == "class":
                        return ("class", resolved[1])
                return None
            if expr.id in self.scope.imports:
                imported = self.b._module_global_type(
                    self.scope.imports[expr.id]
                )
                if imported is not None:
                    return imported
            resolved = self.b._resolve_symbol(self.scope, expr)
            if resolved and resolved[0] == "external":
                return ("external",)
            return None
        if isinstance(expr, ast.Attribute):
            base = self._expr_type(expr.value)
            if base is None:
                resolved = self.b._resolve_symbol(self.scope, expr)
                if resolved:
                    if resolved[0] == "class":
                        return ("class", resolved[1])
                    if resolved[0] == "external":
                        return ("external",)
                chain = _attr_chain(expr)
                if chain and "()" not in chain and chain[0] in self.scope.imports:
                    dotted = ".".join(
                        [self.scope.imports[chain[0]], *chain[1:]]
                    )
                    imported = self.b._module_global_type(dotted)
                    if imported is not None:
                        return imported
                return None
            if base[0] == "class":
                cls = self.program.classes.get(base[1])
                if cls is not None and expr.attr in cls.attr_types:
                    return cls.attr_types[expr.attr]
                return None
            if base[0] == "external":
                return ("external",)
            return None
        if isinstance(expr, ast.Call):
            # x = Foo() / chained call: type is the constructed class
            resolved = self.b._resolve_symbol(self.scope, expr.func)
            if resolved and resolved[0] == "class":
                return ("class", resolved[1])
            name = _trailing_name(expr.func)
            if name in _CONTAINER_FACTORIES or _lock_factory(expr):
                return ("external",)
            if name == "super" and self.cls is not None:
                return ("super", self.cls.qualname)
            return None
        if isinstance(expr, ast.Await):
            return self._expr_type(expr.value)
        return None

    def _track_assign(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets, value = [stmt.target], stmt.value
        else:
            return
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            inferred: Optional[tuple] = None
            if value is not None:
                inferred = self._expr_type(value)
                if inferred is None and _is_mutable_literal(value):
                    inferred = ("external",)
            if inferred is None and isinstance(stmt, ast.AnnAssign):
                resolved = self.b._annotation_class(self.scope, stmt.annotation)
                if resolved:
                    inferred = (
                        ("external",)
                        if resolved.startswith("<external:")
                        else ("class", resolved)
                    )
            if inferred is not None:
                self.locals[target.id] = inferred
            else:
                self.locals.pop(target.id, None)

    # -- the walk ------------------------------------------------------------

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # separate graph node / opaque
        if isinstance(node, ast.ClassDef):
            return  # methods are separate graph nodes
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            self._check_global_write_assign(node)
            if node.value is not None:
                self._visit(node.value)
            self._track_assign(node)
            return
        if isinstance(node, ast.AugAssign):
            self._check_global_write_target(node.target)
            self._visit(node.value)
            return
        if isinstance(node, ast.Delete):
            for target in node.targets:
                self._check_global_write_target(target)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            self._visit_with(node)
            return
        if isinstance(node, ast.Try) or node.__class__.__name__ == "TryStar":
            self._visit_try(node)
            return
        if isinstance(node, ast.Raise):
            self._record_raise(node)
            for child in ast.iter_child_nodes(node):
                self._visit(child)
            return
        if isinstance(node, ast.Call):
            self._visit_call(node)
            return
        if isinstance(node, ast.Attribute):
            self._maybe_property_edge(node)
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    def _visit_with(self, node) -> None:
        opened: list[str] = []
        spans = 0
        for item in node.items:
            expr = item.context_expr
            name = (
                _trailing_name(expr.func)
                if isinstance(expr, ast.Call)
                else None
            )
            if name in ("span", "_span"):
                spans += 1
                self.info.opens_span = True
            lock = self._lock_id(expr)
            if lock is not None:
                self.info.acquires.append(
                    AcquireSite(
                        line=expr.lineno,
                        lock=lock,
                        held=tuple(self.lock_stack),
                    )
                )
                self.lock_stack.append(lock)
                opened.append(lock)
            self._visit(expr)
            inferred = self._expr_type(expr)
            # the with-protocol calls __enter__/__exit__ implicitly
            if inferred is not None and inferred[0] == "class":
                cls = self.program.classes.get(inferred[1])
                if cls is not None:
                    names = (
                        ("__aenter__", "__aexit__")
                        if isinstance(node, ast.AsyncWith)
                        else ("__enter__", "__exit__")
                    )
                    for dunder in names:
                        target = cls.find_method(self.program, dunder)
                        if target is not None:
                            self._add_edge(target, expr.lineno, CALL)
            if item.optional_vars is not None and isinstance(
                item.optional_vars, ast.Name
            ):
                if inferred is not None:
                    self.locals[item.optional_vars.id] = inferred
        self.span_depth += spans
        for stmt in node.body:
            self._visit(stmt)
        self.span_depth -= spans
        for _ in opened:
            self.lock_stack.pop()

    def _lock_id(self, expr: ast.expr) -> Optional[str]:
        typed = self._expr_type(expr)
        if typed is not None and typed[0] == "lock":
            return typed[1]
        return None

    def _visit_try(self, node) -> None:
        handlers = []
        for handler in node.handlers:
            handlers.append(
                Handler(
                    caught=tuple(_handler_names(handler.type)) or ("BaseException",),
                    silent=_is_silent(handler.body),
                    reraises=_reraises(handler.body),
                    line=handler.lineno,
                )
            )
        self.handler_stack.extend(handlers)
        for stmt in node.body:
            self._visit(stmt)
        del self.handler_stack[len(self.handler_stack) - len(handlers):]
        for handler, meta in zip(node.handlers, handlers):
            self.caught_stack.append(meta.caught)
            for stmt in handler.body:
                self._visit(stmt)
            self.caught_stack.pop()
        for stmt in list(node.orelse):
            # else runs when the body did not raise; its raises see the
            # same *outer* handlers only
            self._visit(stmt)
        for stmt in list(node.finalbody):
            self._visit(stmt)

    def _record_raise(self, node: ast.Raise) -> None:
        if node.exc is None:
            # bare raise: re-raises whatever the enclosing handler caught
            if self.caught_stack:
                for name in self.caught_stack[-1]:
                    self.info.raises.append(
                        RaiseSite(
                            line=node.lineno,
                            exc=name,
                            bare=True,
                            handlers=tuple(self.handler_stack),
                        )
                    )
            return
        expr = node.exc
        if isinstance(expr, ast.Call):
            expr = expr.func
        name = _trailing_name(expr)
        if name is None:
            return
        self.info.raises.append(
            RaiseSite(
                line=node.lineno,
                exc=name,
                bare=False,
                handlers=tuple(self.handler_stack),
            )
        )

    # -- calls ---------------------------------------------------------------

    def _add_edge(self, callee: str, line: int, kind: str) -> None:
        self.info.edges.append(
            Edge(
                caller=self.info.qualname,
                callee=callee,
                line=line,
                kind=kind,
                under_span=self.span_depth > 0,
                locks_held=tuple(self.lock_stack),
                handlers=tuple(self.handler_stack),
            )
        )

    def _callable_ref_target(self, expr: ast.expr) -> Optional[str]:
        """Function qualname for a bare callable reference (no call)."""
        resolved = self.b._resolve_symbol(self.scope, expr)
        if resolved and resolved[0] == "func":
            return resolved[1]
        if isinstance(expr, ast.Attribute):
            base = self._expr_type(expr.value)
            if base is not None and base[0] == "class":
                cls = self.program.classes.get(base[1])
                if cls is not None:
                    return cls.find_method(self.program, expr.attr)
        if isinstance(expr, ast.Name) and expr.id in self.scope.functions:
            return self.scope.functions[expr.id]
        return None

    def _visit_call(self, node: ast.Call) -> None:
        func = node.func
        name = _trailing_name(func)
        line = node.lineno

        # blocking primitives (receiver-independent table first)
        chain = _attr_chain(func)
        if isinstance(func, ast.Name) and func.id == "open":
            self.info.blocking.append(BlockSite(line=line, label="open()"))
        elif name in BLOCKING_ATTRS and not self._external_receiver_ok(func):
            self.info.blocking.append(
                BlockSite(line=line, label=BLOCKING_ATTRS[name])
            )
        else:
            for suffix, label in BLOCKING_CHAINS.items():
                if tuple(chain[-len(suffix):]) == suffix:
                    self.info.blocking.append(BlockSite(line=line, label=label))
                    break

        # fault-injection sites: faults.check("layer", op)
        if name == "check" and chain[:1] in (["_faults"], ["faults"]):
            label = ""
            if node.args and isinstance(node.args[0], ast.Constant):
                label = str(node.args[0].value)
            self.info.fault_sites.append(
                FaultSite(
                    line=line, label=label, under_span=self.span_depth > 0
                )
            )

        # executor/thread handoffs
        if name in _HANDOFF_CALLS:
            idx = _HANDOFF_CALLS[name]
            if name == "run_in_executor" and len(node.args) > idx:
                target = self._callable_ref_target(node.args[idx])
            elif len(node.args) > idx:
                target = self._callable_ref_target(node.args[idx])
            else:
                target = None
            if target is not None:
                self._add_edge(target, line, HANDOFF)
                self.program.thread_entry_points.add(target)
            for arg in node.args:
                self._visit(arg)
            return
        if name == "Thread":
            for kw in node.keywords:
                if kw.arg == "target":
                    target = self._callable_ref_target(kw.value)
                    if target is not None:
                        self._add_edge(target, line, HANDOFF)
                        self.program.thread_entry_points.add(target)

        self._resolve_call(node, name, line)

        for child in ast.iter_child_nodes(node):
            if child is not func or isinstance(func, (ast.Call, ast.Subscript)):
                self._visit(child)
        # visit the receiver expression of attribute calls (for nested
        # calls like a(b()).c())
        if isinstance(func, ast.Attribute):
            self._visit(func.value)

    def _external_receiver_ok(self, func: ast.expr) -> bool:
        """True when the receiver is known-external, so a blocking-ish
        attribute name (``recv``) cannot be the stdlib primitive AND
        cannot be a project method — not blocking evidence."""
        if not isinstance(func, ast.Attribute):
            return False
        base = self._expr_type(func.value)
        if base is None:
            # socket.recv via unknown receiver: keep as blocking evidence
            # only when the chain starts from something socket-ish
            chain = _attr_chain(func)
            return not (chain and chain[0] in ("sock", "conn", "socket", "s"))
        return base[0] == "external" or base[0] == "class"

    def _resolve_call(
        self, node: ast.Call, name: Optional[str], line: int
    ) -> None:
        func = node.func
        # super().m()
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Call)
            and _trailing_name(func.value.func) == "super"
            and self.cls is not None
        ):
            mro = list(self.cls.mro(self.program))
            for cls in mro[1:]:
                if func.attr in cls.methods:
                    self._add_edge(cls.methods[func.attr], line, CALL)
                    return
            return
        if isinstance(func, ast.Name):
            # scope chain: locals (callables not tracked) → module defs →
            # imports → classes (constructor)
            resolved = self.b._resolve_chain(self.scope, [func.id])
            if resolved is None:
                return
            kind, qual = resolved[0], resolved[1]
            if kind == "func":
                self._add_edge(qual, line, CALL)
            elif kind == "class":
                init = None
                cls = self.program.classes.get(qual)
                if cls is not None:
                    init = cls.find_method(self.program, "__init__")
                if init is not None:
                    self._add_edge(init, line, CALL)
            return
        if not isinstance(func, ast.Attribute):
            return
        attr = func.attr
        base = self._expr_type(func.value)
        if base is not None and base[0] == "class":
            cls = self.program.classes.get(base[1])
            if cls is not None:
                target = cls.find_method(self.program, attr)
                if target is not None:
                    self._add_edge(target, line, CALL)
                    return
                if attr in cls.attr_types and cls.attr_types[attr][0] in (
                    "external",
                    "lock",
                ):
                    return
            # known class, unknown method: instance attr holding a
            # callable, __getattr__, etc. — fall through to dynamic
        elif base is not None and base[0] in ("external", "lock"):
            return
        else:
            # unknown receiver: maybe a module alias chain (mod.func())
            resolved = self.b._resolve_symbol(self.scope, func)
            if resolved is not None:
                kind, qual = resolved[0], resolved[1]
                if kind == "func":
                    self._add_edge(qual, line, CALL)
                    return
                if kind == "class":
                    cls = self.program.classes.get(qual)
                    init = (
                        cls.find_method(self.program, "__init__")
                        if cls is not None
                        else None
                    )
                    if init is not None:
                        self._add_edge(init, line, CALL)
                    return
                if kind in ("external", "module"):
                    return
        # conservative dynamic-dispatch fallback
        candidates = self.program.methods_by_name.get(attr, [])
        if candidates and len(candidates) <= DYNAMIC_FANOUT_LIMIT:
            for qual in candidates:
                self._add_edge(qual, line, DYNAMIC)

    def _maybe_property_edge(self, node: ast.Attribute) -> None:
        base = self._expr_type(node.value)
        if base is None or base[0] != "class":
            for child in ast.iter_child_nodes(node):
                self._visit(child)
            return
        cls = self.program.classes.get(base[1])
        if cls is not None:
            for mro_cls in cls.mro(self.program):
                if node.attr in mro_cls.properties:
                    self._add_edge(
                        mro_cls.methods[node.attr], node.lineno, CALL
                    )
                    break
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    # -- module-global mutation ----------------------------------------------

    def _check_global_write_assign(self, node) -> None:
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            if isinstance(target, ast.Subscript):
                self._check_global_write_target(target)
            elif isinstance(target, ast.Name):
                # rebinding a module global requires `global`; cheap check
                if target.id in self.scope.globals and self._declares_global(
                    target.id
                ):
                    self._record_global_write(target.id, target.lineno)

    def _declares_global(self, name: str) -> bool:
        for stmt in ast.walk(self.info.node):
            if isinstance(stmt, ast.Global) and name in stmt.names:
                return True
        return False

    def _check_global_write_target(self, target: ast.expr) -> None:
        # G[...] = / del G[...] / G += where G is a module-level mutable
        expr = target
        if isinstance(expr, ast.Subscript):
            expr = expr.value
        if isinstance(expr, ast.Name):
            info = self.scope.globals.get(expr.id)
            if (
                info is not None
                and info[0] == "mutable"
                and expr.id not in self.locals
            ):
                self._record_global_write(expr.id, target.lineno)

    def _record_global_write(self, name: str, line: int) -> None:
        self.info.global_writes.append(
            GlobalWrite(
                line=line,
                target=f"{self.info.module}.{name}",
                locks_held=tuple(self.lock_stack),
            )
        )


def _handler_names(node: Optional[ast.expr]) -> list[str]:
    if node is None:
        return []
    if isinstance(node, ast.Tuple):
        out: list[str] = []
        for element in node.elts:
            out.extend(_handler_names(element))
        return out
    name = _trailing_name(node)
    return [name] if name else []


def _is_silent(body: list[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue
        return False
    return True


def _reraises(body: list[ast.stmt]) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise):
                return True
    return False


# -- mutating-call detection (needs the analyzer's type env, so it lives
#    in the analyzer; this is the shared method-name table) ----------------


def is_mutating_method(name: str) -> bool:
    return name in _MUTATING_METHODS


# -- public entry -----------------------------------------------------------


def build_program(paths: Sequence[str | Path]) -> Program:
    """Parse every Python file under *paths* and build the call graph."""
    builder = _Builder()
    modules: list[Module] = []
    seen: set[Path] = set()
    for root, file in iter_python_files([Path(p) for p in paths]):
        resolved = file.resolve()
        if resolved in seen:
            continue
        seen.add(resolved)
        try:
            modules.append(load_module(root, file))
        except SyntaxError:
            continue  # per-module lint reports LINT-SYNTAX already
    for module in modules:
        builder.collect_module(module)
    builder.link()
    builder.analyze_bodies()
    return builder.program
