"""Static and runtime analysis for the repro codebase.

Two halves:

* :mod:`repro.analysis.lint` + :mod:`repro.analysis.rules` — the
  AST-based project linter (``mcs lint`` / ``python -m repro.analysis``)
  that machine-checks the codebase's concurrency and protocol
  invariants;
* :mod:`repro.analysis.sanitizer` — the runtime lock-order sanitizer
  that instruments the engine's RWLock layer and raises on lock-order
  inversions before they can deadlock (``REPRO_SANITIZER=1`` /
  ``pytest -m sanitizer``).
"""

from __future__ import annotations

from repro.analysis.lint import (
    DEFAULT_REGISTRY,
    Finding,
    Module,
    Registry,
    Rule,
    render_report,
    run_paths,
)

# Importing the rules module registers every project rule with
# DEFAULT_REGISTRY as a side effect.
from repro.analysis import rules as _rules  # noqa: F401  (registration)

__all__ = [
    "DEFAULT_REGISTRY",
    "Finding",
    "Module",
    "Registry",
    "Rule",
    "render_report",
    "run_paths",
    "main",
]


def main(argv: list[str] | None = None) -> int:
    """CLI entry shared by ``python -m repro.analysis`` and ``mcs lint``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="mcs lint",
        description="Project-specific concurrency & protocol linter",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="run only these rule ids (repeatable)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="list every rule and the invariant it guards, then exit",
    )
    parser.add_argument(
        "--whole-program",
        action="store_true",
        help="also run the interprocedural rules (MCS012+) over the call "
        "graph of the scanned tree",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings listed (with a justification) in this "
        "baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write the run's findings as a baseline file (justifications "
        "left empty for humans to fill in), then exit 0",
    )
    args = parser.parse_args(argv)

    from repro.analysis import wprules as _wprules  # noqa: F401
    from repro.analysis.flow import WHOLE_PROGRAM_REGISTRY, run_whole_program
    from repro.analysis.lint import (
        apply_baseline,
        load_baseline,
        write_baseline,
    )

    all_rules = DEFAULT_REGISTRY.rules() + WHOLE_PROGRAM_REGISTRY.rules()

    if args.explain:
        for rule in all_rules:
            print(f"{rule.id} {rule.name}")
            print(f"    {rule.invariant}")
        return 0

    findings = run_paths(args.paths, select=args.select)
    if args.whole_program:
        findings = sorted(
            findings + run_whole_program(args.paths, select=args.select)
        )

    if args.write_baseline:
        from pathlib import Path

        write_baseline(findings, Path(args.write_baseline))
        print(
            f"wrote {len(findings)} baseline entr"
            f"{'ies' if len(findings) != 1 else 'y'} to {args.write_baseline}"
            " (fill in every justification before using it)"
        )
        return 0

    if args.baseline:
        import sys
        from pathlib import Path

        try:
            entries = load_baseline(Path(args.baseline))
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        findings, suppressed, unused = apply_baseline(findings, entries)
        if suppressed:
            print(
                f"note: {suppressed} finding(s) suppressed by baseline",
                file=sys.stderr,
            )
        for entry in unused:
            print(
                f"note: baseline entry no longer matches anything "
                f"({entry['rule']} in {entry['file']}) — delete it",
                file=sys.stderr,
            )

    print(render_report(findings, fmt=args.format, rules=all_rules))
    return 1 if findings else 0
