"""Static and runtime analysis for the repro codebase.

Two halves:

* :mod:`repro.analysis.lint` + :mod:`repro.analysis.rules` — the
  AST-based project linter (``mcs lint`` / ``python -m repro.analysis``)
  that machine-checks the codebase's concurrency and protocol
  invariants;
* :mod:`repro.analysis.sanitizer` — the runtime lock-order sanitizer
  that instruments the engine's RWLock layer and raises on lock-order
  inversions before they can deadlock (``REPRO_SANITIZER=1`` /
  ``pytest -m sanitizer``).
"""

from __future__ import annotations

from repro.analysis.lint import (
    DEFAULT_REGISTRY,
    Finding,
    Module,
    Registry,
    Rule,
    render_report,
    run_paths,
)

# Importing the rules module registers every project rule with
# DEFAULT_REGISTRY as a side effect.
from repro.analysis import rules as _rules  # noqa: F401  (registration)

__all__ = [
    "DEFAULT_REGISTRY",
    "Finding",
    "Module",
    "Registry",
    "Rule",
    "render_report",
    "run_paths",
    "main",
]


def main(argv: list[str] | None = None) -> int:
    """CLI entry shared by ``python -m repro.analysis`` and ``mcs lint``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="mcs lint",
        description="Project-specific concurrency & protocol linter",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="run only these rule ids (repeatable)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="list every rule and the invariant it guards, then exit",
    )
    args = parser.parse_args(argv)

    if args.explain:
        for rule in DEFAULT_REGISTRY.rules():
            print(f"{rule.id} {rule.name}")
            print(f"    {rule.invariant}")
        return 0

    findings = run_paths(args.paths, select=args.select)
    print(render_report(findings, fmt=args.format))
    return 1 if findings else 0
