"""Project-specific lint rules: the codebase's invariants, ossified.

Each rule guards one protocol the reproduction's correctness rests on.
They are deliberately narrow — a rule that knows exactly one invariant
can afford to have zero false positives on this tree, which is what
lets CI fail the build on any finding.

Rule ids are stable (``MCS0xx``); see ``docs/INTERNALS.md`` for the
prose version of every invariant.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterator, Optional, Sequence

from repro.analysis.lint import Finding, Module, Rule, register
from repro.obs.metric_names import DECLARED_METRICS, METRIC_NAME_PATTERN

# --------------------------------------------------------------------------
# Shared AST helpers
# --------------------------------------------------------------------------


def _call_name(node: ast.Call) -> Optional[str]:
    """Trailing name of the called object: ``a.b.c()`` → ``c``."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _attr_chain(node: ast.expr) -> list[str]:
    """``a.b.c`` → ``["a", "b", "c"]`` (empty for non-name chains)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return []


# --------------------------------------------------------------------------
# MCS001 — storage encapsulation
# --------------------------------------------------------------------------


@register
class StorageEncapsulationRule(Rule):
    """Row storage and B-trees are engine internals.

    Every mutation must flow through ``db.engine``/``db.txn`` so it picks
    up locking, undo logging, WAL records and generation bumps.  A module
    outside ``repro.db`` that imports ``repro.db.storage`` or
    ``repro.db.btree`` is reaching past all four — runtime imports are
    forbidden (``TYPE_CHECKING``-only imports are fine).
    """

    id = "MCS001"
    name = "storage-encapsulation"
    invariant = (
        "only repro.db itself may import the storage/btree internals; all "
        "other mutation goes through the engine's locked, logged statement path"
    )
    exempt_modules = ("repro.db",)

    _FORBIDDEN = ("repro.db.storage", "repro.db.btree")

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            target: Optional[str] = None
            if isinstance(node, ast.ImportFrom):
                mod = node.module or ""
                if mod in self._FORBIDDEN:
                    target = mod
                elif mod == "repro.db":
                    for alias in node.names:
                        if alias.name in ("storage", "btree"):
                            target = f"repro.db.{alias.name}"
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in self._FORBIDDEN:
                        target = alias.name
            if target is None or module.in_type_checking_block(node):
                continue
            yield self.finding(
                module,
                node,
                f"imports engine internal {target!r}; mutate through "
                "db.engine/db.txn so locking, undo, WAL and generation "
                "bumps all apply",
            )


# --------------------------------------------------------------------------
# MCS002 — generation bump on every committed write path
# --------------------------------------------------------------------------


@register
class GenerationBumpRule(Rule):
    """Commits must invalidate the read caches before locks drop.

    Any function that publishes WAL records (``wal_commit``) is a commit
    path; it must bump the ``GenerationMap`` *after* the commit call (and
    therefore before the write-lock release that makes the new rows
    readable).  Missing the bump makes every strict-consistency cache a
    stale-read machine.
    """

    id = "MCS002"
    name = "generation-bump-after-commit"
    invariant = (
        "every function calling wal_commit() must bump GenerationMap "
        "afterwards, while the commit's write locks are still held"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            commit_lines: list[int] = []
            bump_lines: list[int] = []
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                name = _call_name(node)
                if name == "wal_commit":
                    commit_lines.append(node.lineno)
                elif name == "_bump_generations":
                    bump_lines.append(node.lineno)
                elif name == "bump":
                    chain = _attr_chain(node.func)
                    if len(chain) >= 2 and chain[-2] == "generations":
                        bump_lines.append(node.lineno)
            if not commit_lines:
                continue
            last_commit = max(commit_lines)
            if not any(line > last_commit for line in bump_lines):
                yield self.finding(
                    module,
                    func,
                    f"{func.name}() calls wal_commit() but never bumps "
                    "GenerationMap afterwards; committed writes would stay "
                    "invisible to cache invalidation",
                )


# --------------------------------------------------------------------------
# MCS003 — mid-transaction cache bypass discipline
# --------------------------------------------------------------------------


@register
class CacheConnThreadingRule(Rule):
    """Shared-cache lookups must thread the live connection.

    ``CatalogCache`` decides per-lookup whether to bypass — a connection
    mid-transaction that already wrote table T must not hit or populate
    entries depending on T (its uncommitted rows are visible to nobody
    else).  That decision needs the connection: passing ``None`` (or
    nothing) disables the discipline and reintroduces the torn-read bug
    the bypass exists to prevent.
    """

    id = "MCS003"
    name = "cache-bypass-discipline"
    invariant = (
        "CatalogCache.lookup_* callers must pass the executing Connection, "
        "never None, so the written_tables bypass can trigger"
    )
    exempt_modules = ("repro.cache",)

    _LOOKUPS = ("lookup_attr_def", "lookup_object_id", "lookup_query")

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name == "_lookup" and isinstance(node.func, ast.Attribute):
                chain = _attr_chain(node.func)
                if chain[:1] != ["self"]:
                    yield self.finding(
                        module,
                        node,
                        "calls the private CatalogCache._lookup; use the "
                        "typed lookup_* entry points",
                    )
                continue
            if name not in self._LOOKUPS:
                continue
            conn_arg: Optional[ast.expr] = node.args[0] if node.args else None
            for kw in node.keywords:
                if kw.arg == "conn":
                    conn_arg = kw.value
            # A Connection is never a literal: a constant in the conn
            # slot means the argument was omitted and something else
            # shifted into its place (or None was passed outright).
            if conn_arg is None or isinstance(conn_arg, ast.Constant):
                yield self.finding(
                    module,
                    node,
                    f"{name}() without the executing Connection: the "
                    "mid-transaction written_tables bypass cannot trigger, "
                    "so uncommitted state could leak through the shared cache",
                )


# --------------------------------------------------------------------------
# MCS004 — centralized fault table
# --------------------------------------------------------------------------


@register
class FaultTableRule(Rule):
    """``MCS.*`` fault codes live in exactly one place.

    The wire contract is the table in ``repro.core.errors``
    (``fault_code_for`` / ``exception_from_fault``).  A fault-code string
    literal minted anywhere else is a code the client cannot map back to
    a typed error — it surfaces as a bare ``MCSError`` and drifts the
    moment the table changes.
    """

    id = "MCS004"
    name = "centralized-fault-table"
    invariant = (
        "MCS.* fault-code literals may appear only in repro.core.errors; "
        "handlers raise typed errors or reference <Error>.fault_code"
    )
    exempt_modules = ("repro.core.errors",)

    _CODE = re.compile(r"^MCS\.[A-Za-z][A-Za-z0-9_]*$")

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and self._CODE.match(node.value)
            ):
                yield self.finding(
                    module,
                    node,
                    f"ad-hoc fault code {node.value!r}; add it to the "
                    "repro.core.errors table and reference the error "
                    "class's fault_code instead",
                )


# --------------------------------------------------------------------------
# MCS005 — declared metric names only
# --------------------------------------------------------------------------

_METRIC_FACTORIES = (
    "counter",
    "gauge",
    "histogram",
    "_obs_counter",
    "_obs_gauge",
    "_obs_histogram",
)

_METRIC_NAME_RE = re.compile(METRIC_NAME_PATTERN)


def iter_metric_declarations(tree: ast.Module) -> Iterator[tuple[int, str]]:
    """Yield ``(line, name)`` for every literal metric-family creation."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if _call_name(node) not in _METRIC_FACTORIES:
            continue
        if not node.args:
            continue
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            yield node.lineno, first.value


@register
class MetricRegistryRule(Rule):
    """Every emitted metric name must be declared.

    ``/metrics``, the SOAP ``stats`` call and the bench reports key on
    the names in ``repro.obs.metric_names.DECLARED_METRICS``.  A call
    site minting an undeclared (or mis-shaped) name adds an unreviewed
    series that no dashboard will ever query — the classic /metrics
    drift.
    """

    id = "MCS005"
    name = "declared-metric-names"
    invariant = (
        "metric families must use declared mcs_* names from "
        "repro.obs.metric_names (no undeclared or mis-shaped series)"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        for line, name in iter_metric_declarations(module.tree):
            if not _METRIC_NAME_RE.match(name):
                yield Finding(
                    file=module.relpath,
                    line=line,
                    rule_id=self.id,
                    message=(
                        f"metric name {name!r} does not match "
                        f"{METRIC_NAME_PATTERN!r}"
                    ),
                )
            elif name not in DECLARED_METRICS:
                yield Finding(
                    file=module.relpath,
                    line=line,
                    rule_id=self.id,
                    message=(
                        f"metric name {name!r} is not declared in "
                        "repro.obs.metric_names.DECLARED_METRICS"
                    ),
                )


# --------------------------------------------------------------------------
# MCS006 — no new callers of the deprecated query shims
# --------------------------------------------------------------------------


@register
class DeprecatedQueryShimRule(Rule):
    """The fluent ``query()`` API replaced the 2003-era shims.

    ``simple_query`` and ``query_files_by_attributes`` survive only as
    ``DeprecationWarning`` wrappers for wire compatibility.  In-repo
    code must build an ``ObjectQuery`` — new callers of the shims are
    how a deprecation stops being one.
    """

    id = "MCS006"
    name = "no-deprecated-query-shims"
    invariant = (
        "no in-repo calls to the deprecated simple_query/"
        "query_files_by_attributes shims; build an ObjectQuery instead"
    )

    _SHIMS = ("simple_query", "query_files_by_attributes")

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = _call_name(node)
                if name in self._SHIMS:
                    yield self.finding(
                        module,
                        node,
                        f"call to deprecated shim {name}(); use the fluent "
                        "ObjectQuery/query() API",
                    )


# --------------------------------------------------------------------------
# MCS007 — lock acquisition stays inside the engine
# --------------------------------------------------------------------------


@register
class LockDisciplineRule(Rule):
    """Raw lock acquisition is a deadlock looking for a reviewer.

    The engine kills lock-order deadlocks structurally: ``LockManager``
    acquires every statement's locks in sorted order, and transactions
    pre-declare read→write upgrades via ``lock_tables``.  Code outside
    ``repro.db`` calling ``acquire_read``/``acquire_write`` directly
    sits outside that ordering — exactly the class of bug the runtime
    sanitizer exists to catch.
    """

    id = "MCS007"
    name = "lock-acquisition-discipline"
    invariant = (
        "RWLock.acquire_read/acquire_write may be called only inside "
        "repro.db (LockManager ordering) and the sanitizer instrumentation"
    )
    exempt_modules = ("repro.db", "repro.analysis.sanitizer")

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("acquire_read", "acquire_write")
            ):
                yield self.finding(
                    module,
                    node,
                    f"direct {node.func.attr}() outside the engine bypasses "
                    "LockManager's sorted acquisition order",
                )


# --------------------------------------------------------------------------
# MCS008 — structured logging, not stdout
# --------------------------------------------------------------------------


@register
class StructuredLoggingRule(Rule):
    """Library code logs through ``repro.obs.log``, never ``print``.

    Server-side stdout is invisible to operators; the structured logger
    carries request ids and renders as JSON.  ``print`` belongs only to
    the user-facing CLI and the bench report renderer.
    """

    id = "MCS008"
    name = "structured-logging"
    invariant = (
        "no print() in library code; use repro.obs.log (print is CLI/"
        "bench-report only)"
    )
    only_modules = ("repro",)
    exempt_modules = (
        "repro.cli",
        "repro.bench.report",
        "repro.bench.__main__",
        "repro.analysis",
    )

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.finding(
                    module,
                    node,
                    "print() in library code; route through repro.obs.log "
                    "so output carries request context",
                )


# --------------------------------------------------------------------------
# MCS009 — transport failures must be handled, not swallowed
# --------------------------------------------------------------------------


def _names_in_handler_type(node: Optional[ast.expr]) -> list[str]:
    """Exception-class names an ``except`` clause catches (last attr part)."""
    if node is None:
        return []
    if isinstance(node, ast.Tuple):
        names: list[str] = []
        for element in node.elts:
            names.extend(_names_in_handler_type(element))
        return names
    chain = _attr_chain(node)
    return [chain[-1]] if chain else []


@register
class SwallowedTransportFaultRule(Rule):
    """``except TransportError: pass`` turns a failure into silence.

    The resilience layer (repro.resilience) exists so transport failures
    are retried, recorded, or surfaced as partial results.  A handler
    that catches TransportError and does nothing hides exactly the
    events the chaos lane asserts are survivable — the operator sees a
    healthy system while writes vanish.
    """

    id = "MCS009"
    name = "no-swallowed-transport-faults"
    invariant = (
        "except TransportError handlers must retry, record, or re-raise "
        "— a body of pass/continue swallows the failure"
    )

    _SILENT = (ast.Pass, ast.Continue)

    def _swallows(self, body: list[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, self._SILENT):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue  # docstring or bare ``...``
            return False
        return True

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                if "TransportError" not in _names_in_handler_type(handler.type):
                    continue
                if self._swallows(handler.body):
                    yield self.finding(
                        module,
                        handler,
                        "TransportError caught and discarded; retry via "
                        "RetryPolicy, record the failure, or re-raise",
                    )


# --------------------------------------------------------------------------
# MCS010 — request dispatch and ship paths must execute under a span
# --------------------------------------------------------------------------


@register
class UnspannedDispatchRule(Rule):
    """Cross-process work must be visible to ``mcs trace``.

    The distributed waterfall is only trustworthy if every hop records a
    span: the SOAP server's operation dispatch, each federation member
    subquery, each replication shipment, and each soft-state update
    tick.  A hop without a span is a hole in every assembled trace — its
    retries, faults and latency silently vanish from the one tool
    operators use to explain an incident.
    """

    id = "MCS010"
    name = "dispatch-under-span"
    invariant = (
        "SOAP request dispatch (SoapDispatcher.dispatch, shared by the "
        "threaded and asyncio front ends) and the federation/replication/"
        "RLS ship paths must run inside a `with span(...)` block so "
        "cross-process traces have no holes"
    )

    #: (class name or None for any, method name) pairs that must span.
    _TARGETS = frozenset(
        {
            ("FederatedMCS", "_subquery"),
            ("Replica", "_ship"),
            ("PeriodicUpdater", "tick"),
            ("SoapDispatcher", "dispatch"),
        }
    )

    @staticmethod
    def _opens_span(func: ast.FunctionDef) -> bool:
        for node in ast.walk(func):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            for item in node.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call) and _call_name(expr) in (
                    "span",
                    "_span",
                ):
                    return True
        return False

    def check(self, module: Module) -> Iterator[Finding]:
        class_of: dict[ast.AST, Optional[str]] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                for child in node.body:
                    class_of[child] = node.name
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            owner = class_of.get(node)
            if (owner, node.name) not in self._TARGETS and (
                None,
                node.name,
            ) not in self._TARGETS:
                continue
            if not self._opens_span(node):
                where = f"{owner}.{node.name}" if owner else node.name
                yield self.finding(
                    module,
                    node,
                    f"{where} dispatches cross-process work without opening "
                    "a span; wrap the body in `with span(...)` so the hop "
                    "appears in assembled traces",
                )


# --------------------------------------------------------------------------
# MCS011 — no blocking calls inside coroutine code
# --------------------------------------------------------------------------


@register
class BlockingInCoroutineRule(Rule):
    """One blocking call in a coroutine stalls every connection.

    The asyncio front end multiplexes thousands of connections on one
    event loop; anything that blocks the loop — ``time.sleep``, a
    synchronous ``open``/``socket`` dial, an ``RWLock`` acquisition —
    freezes all of them at once.  Blocking work belongs on the worker
    pool (``run_in_executor``); coroutines await ``asyncio.sleep`` and
    the stream APIs.  Nested ``def``/``lambda`` bodies are excluded:
    they are how work is handed to the executor.
    """

    id = "MCS011"
    name = "no-blocking-in-coroutine"
    invariant = (
        "coroutine bodies must not call time.sleep, synchronous open/"
        "socket I/O, or RWLock acquire_read/acquire_write — blocking "
        "work goes through run_in_executor, waiting through asyncio.sleep"
    )

    #: Attribute-chain suffixes of known loop-blocking calls.
    _BLOCKING_CHAINS = (
        ("time", "sleep"),
        ("socket", "socket"),
        ("socket", "create_connection"),
        ("socket", "create_server"),
    )
    #: Attribute names that block regardless of the receiver.
    _BLOCKING_ATTRS = ("acquire_read", "acquire_write")

    @staticmethod
    def _iter_coroutine_nodes(func: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
        """Nodes executed *by the coroutine itself* — nested function and
        lambda bodies run elsewhere (typically on the executor) and are
        each checked on their own if they are coroutines."""
        stack: list[ast.AST] = list(func.body)
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _blocking_call(self, node: ast.Call) -> Optional[str]:
        if isinstance(node.func, ast.Name) and node.func.id == "open":
            return "open()"
        chain = _attr_chain(node.func)
        if not chain:
            return None
        if chain[-1] in self._BLOCKING_ATTRS:
            return f"{chain[-1]}()"
        for suffix in self._BLOCKING_CHAINS:
            if tuple(chain[-len(suffix):]) == suffix:
                return ".".join(suffix) + "()"
        return None

    def check(self, module: Module) -> Iterator[Finding]:
        for func in ast.walk(module.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            for node in self._iter_coroutine_nodes(func):
                if not isinstance(node, ast.Call):
                    continue
                what = self._blocking_call(node)
                if what is not None:
                    yield self.finding(
                        module,
                        node,
                        f"blocking {what} inside coroutine {func.name}(); "
                        "it stalls the event loop for every connection — "
                        "use asyncio equivalents or run_in_executor",
                    )


# --------------------------------------------------------------------------
# Registry cross-checks (used by tests, not a per-file rule)
# --------------------------------------------------------------------------


def collect_metric_names(paths: Sequence[str | Path]) -> dict[str, list[tuple[str, int]]]:
    """All literal metric names under *paths* → their (file, line) sites.

    The other direction of MCS005: tests compare the returned key set
    against ``DECLARED_METRICS`` to flag stale declarations no call site
    emits any more.
    """
    from repro.analysis.lint import iter_python_files, load_module

    sites: dict[str, list[tuple[str, int]]] = {}
    for root, file in iter_python_files([Path(p) for p in paths]):
        module = load_module(root, file)
        for line, name in iter_metric_declarations(module.tree):
            sites.setdefault(name, []).append((module.relpath, line))
    return sites
