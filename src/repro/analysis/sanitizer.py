"""Runtime lock-order sanitizer for the engine's RWLock/txn layer.

The engine avoids deadlock *structurally*: ``LockManager.acquire`` takes
every statement's table locks in sorted name order, and bulk
transactions pre-declare their full lock set (``lock_tables``) so no
read→write upgrade happens mid-transaction.  Those disciplines only hold
as long as every code path keeps following them — which is exactly what
this sanitizer checks while tests run, the way TSan checks a C++ build.

When installed it wraps :meth:`RWLock.acquire_read` /
:meth:`RWLock.acquire_write` / :meth:`RWLock.release` and maintains:

* a **per-thread hold stack** — which locks this thread currently holds
  (reentrancy-counted, so upgrades and re-entries don't self-report);
* a global **lock-order graph** — an edge ``A → B`` is recorded the
  first time any thread acquires ``B`` while holding ``A``.

Before an acquisition is allowed to block, the sanitizer checks whether
adding its edges would close a cycle in the order graph.  A cycle means
two code paths take the same locks in opposite orders — a deadlock that
needs only the right interleaving to fire — and raises
:class:`LockOrderViolation` with both orders spelled out, *without*
waiting for the actual deadlock.  Lock *timeouts* observed while the
sanitizer is active are reported too (:func:`timeouts_observed`), since
under sorted acquisition a timeout usually is a masked ordering bug.

Usage::

    from repro.analysis import sanitizer

    with sanitizer.enabled():
        ...                      # run the concurrency-sensitive code

or process-wide via the environment: setting ``REPRO_SANITIZER=1``
before ``import repro`` installs it for the whole run (the
``pytest -m sanitizer`` lane re-runs the bulk/cache stress suites that
way).  Overhead is one dict lookup plus one mutex per acquisition —
fine for tests, not for production serving.
"""

from __future__ import annotations

import contextlib
import os
import threading
from typing import Any, Iterator, Optional

from repro.db import txn as _txn
from repro.db.errors import LockTimeoutError


class LockOrderViolation(RuntimeError):
    """Two code paths acquire the same locks in contradictory orders."""

    def __init__(self, message: str, cycle: tuple[str, ...] = ()) -> None:
        super().__init__(message)
        self.cycle = cycle


class _Holds(threading.local):
    """Per-thread reentrancy-counted set of held lock keys."""

    def __init__(self) -> None:
        self.counts: dict[int, int] = {}
        self.order: list[int] = []  # acquisition order, for reporting


class LockOrderSanitizer:
    """The order graph plus the RWLock instrumentation hooks."""

    def __init__(self) -> None:
        self._guard = threading.Lock()
        #: id(lock) → set of id(lock) acquired later by some thread.
        self._edges: dict[int, set[int]] = {}
        #: id(lock) → human name, for reports (ids are stable while the
        #: lock object is referenced by the graph's keeper below).
        self._names: dict[int, str] = {}
        #: Keep instrumented locks alive so ids can't be recycled into
        #: false edges.
        self._pins: dict[int, Any] = {}
        self._holds = _Holds()
        self._violations = 0
        self._timeouts = 0

    # -- bookkeeping ---------------------------------------------------------

    def _key(self, lock: Any) -> int:
        key = id(lock)
        if key not in self._names:
            name = getattr(lock, "name", "") or f"<anonymous-{key:#x}>"
            self._names[key] = name
            self._pins[key] = lock
        return key

    def _name_path(self, path: tuple[int, ...]) -> tuple[str, ...]:
        return tuple(self._names.get(k, "?") for k in path)

    def _find_path(self, src: int, dst: int) -> Optional[tuple[int, ...]]:
        """DFS: a path src → … → dst in the order graph, or None."""
        stack: list[tuple[int, tuple[int, ...]]] = [(src, (src,))]
        seen = {src}
        while stack:
            node, path = stack.pop()
            if node == dst:
                return path
            for nxt in self._edges.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, path + (nxt,)))
        return None

    # -- the checks ----------------------------------------------------------

    def before_acquire(self, lock: Any) -> None:
        """Record + verify ordering before *lock* may be waited on."""
        holds = self._holds
        with self._guard:
            key = self._key(lock)
            if holds.counts.get(key):
                return  # reentrant re-acquire / upgrade of a held lock
            for held in holds.counts:
                # Would edge held → key close a cycle?  A path key → held
                # means some thread acquired `held` (or a chain towards
                # it) *after* `key` — the opposite order.
                path = self._find_path(key, held)
                if path is not None:
                    self._violations += 1
                    cycle = self._name_path(path + (key,))
                    raise LockOrderViolation(
                        "lock-order inversion: acquiring "
                        f"{self._names[key]!r} while holding "
                        f"{self._names[held]!r}, but the established order "
                        f"is {' -> '.join(self._name_path(path))}; "
                        "cycle: " + " -> ".join(cycle),
                        cycle=cycle,
                    )
            for held in holds.counts:
                self._edges.setdefault(held, set()).add(key)

    def after_acquire(self, lock: Any) -> None:
        holds = self._holds
        with self._guard:
            key = self._key(lock)
            count = holds.counts.get(key, 0)
            holds.counts[key] = count + 1
            if count == 0:
                holds.order.append(key)

    def on_release(self, lock: Any) -> None:
        holds = self._holds
        with self._guard:
            key = id(lock)
            count = holds.counts.get(key, 0)
            if count <= 1:
                holds.counts.pop(key, None)
                if key in holds.order:
                    holds.order.remove(key)
            else:
                holds.counts[key] = count - 1

    def on_timeout(self, lock: Any) -> None:
        with self._guard:
            self._timeouts += 1

    # -- introspection -------------------------------------------------------

    def held_by_current_thread(self) -> tuple[str, ...]:
        with self._guard:
            return self._name_path(tuple(self._holds.order))

    def order_graph(self) -> dict[str, set[str]]:
        """Name-keyed copy of the observed order graph."""
        with self._guard:
            return {
                self._names[src]: {self._names[dst] for dst in dsts}
                for src, dsts in self._edges.items()
            }

    @property
    def violations(self) -> int:
        return self._violations

    @property
    def timeouts_observed(self) -> int:
        return self._timeouts

    def reset(self) -> None:
        with self._guard:
            self._edges.clear()
            self._names.clear()
            self._pins.clear()
            self._violations = 0
            self._timeouts = 0


# --------------------------------------------------------------------------
# Installation: wrap RWLock's methods process-wide
# --------------------------------------------------------------------------

_install_guard = threading.Lock()
_active: Optional[LockOrderSanitizer] = None
_originals: dict[str, Any] = {}


def active() -> Optional[LockOrderSanitizer]:
    """The installed sanitizer, or None."""
    return _active


def install(sanitizer: Optional[LockOrderSanitizer] = None) -> LockOrderSanitizer:
    """Instrument :class:`repro.db.txn.RWLock` process-wide (idempotent)."""
    global _active
    with _install_guard:
        if _active is not None:
            return _active
        san = sanitizer if sanitizer is not None else LockOrderSanitizer()
        _originals["acquire_read"] = _txn.RWLock.acquire_read
        _originals["acquire_write"] = _txn.RWLock.acquire_write
        _originals["release"] = _txn.RWLock.release

        def acquire_read(self: Any, owner: Any, timeout: float) -> None:
            san.before_acquire(self)
            try:
                _originals["acquire_read"](self, owner, timeout)
            except LockTimeoutError:
                san.on_timeout(self)
                raise
            san.after_acquire(self)

        def acquire_write(self: Any, owner: Any, timeout: float) -> None:
            san.before_acquire(self)
            try:
                _originals["acquire_write"](self, owner, timeout)
            except LockTimeoutError:
                san.on_timeout(self)
                raise
            san.after_acquire(self)

        def release(self: Any, owner: Any, write: bool) -> None:
            _originals["release"](self, owner, write)
            san.on_release(self)

        _txn.RWLock.acquire_read = acquire_read  # type: ignore[method-assign]
        _txn.RWLock.acquire_write = acquire_write  # type: ignore[method-assign]
        _txn.RWLock.release = release  # type: ignore[method-assign]
        _active = san
        return san


def uninstall() -> None:
    """Restore the pristine RWLock methods (idempotent)."""
    global _active
    with _install_guard:
        if _active is None:
            return
        _txn.RWLock.acquire_read = _originals.pop("acquire_read")  # type: ignore[method-assign]
        _txn.RWLock.acquire_write = _originals.pop("acquire_write")  # type: ignore[method-assign]
        _txn.RWLock.release = _originals.pop("release")  # type: ignore[method-assign]
        _active = None


@contextlib.contextmanager
def enabled() -> Iterator[LockOrderSanitizer]:
    """Context manager: install on entry, uninstall on exit."""
    san = install()
    try:
        yield san
    finally:
        uninstall()


ENV_FLAG = "REPRO_SANITIZER"


def install_from_env() -> Optional[LockOrderSanitizer]:
    """Install iff ``REPRO_SANITIZER`` is set to a truthy value."""
    if os.environ.get(ENV_FLAG, "") in ("1", "true", "yes", "on"):
        return install()
    return None
