"""Earth System Grid (ESG) integration (§6.2).

ESG metadata follows the netCDF convention, is carried as XML, and is
complemented by Dublin Core elements.  Loading it into the MCS requires
"shredding" the XML into individual attribute values — the workflow this
package reproduces:

* :mod:`repro.esg.dublincore` — the 15 Dublin Core elements as MCS
  user-defined attributes;
* :mod:`repro.esg.netcdf` — netCDF-convention XML metadata documents
  (writer, parser, synthetic generator);
* :mod:`repro.esg.shredder` — XML → MCS attribute shredding.
"""

from repro.esg.dublincore import DUBLIN_CORE_ELEMENTS, register_dublin_core
from repro.esg.netcdf import DatasetMetadata, VariableMetadata, generate_dataset
from repro.esg.shredder import ESGShredder

__all__ = [
    "DUBLIN_CORE_ELEMENTS",
    "register_dublin_core",
    "DatasetMetadata",
    "VariableMetadata",
    "generate_dataset",
    "ESGShredder",
]
