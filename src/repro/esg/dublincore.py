"""Dublin Core metadata elements as MCS user-defined attributes.

"ESG scientists also stored general metadata using the Dublin Core schema
from the digital library community" (§6.2).  The 15 classic elements are
registered with a ``dc_`` prefix.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.errors import DuplicateObjectError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.client import MCSClient

DUBLIN_CORE_ELEMENTS = (
    "title",
    "creator",
    "subject",
    "description",
    "publisher",
    "contributor",
    "date",
    "type",
    "format",
    "identifier",
    "source",
    "language",
    "relation",
    "coverage",
    "rights",
)

PREFIX = "dc_"


def dc_attribute(element: str) -> str:
    """MCS attribute name for a Dublin Core element."""
    if element not in DUBLIN_CORE_ELEMENTS:
        raise ValueError(f"not a Dublin Core element: {element!r}")
    return PREFIX + element


def register_dublin_core(client: "MCSClient") -> int:
    """Define all 15 Dublin Core attributes; returns how many were new.

    The ``date`` element is a date; everything else is a string.
    """
    created = 0
    for element in DUBLIN_CORE_ELEMENTS:
        value_type = "date" if element == "date" else "string"
        try:
            client.define_attribute(
                dc_attribute(element),
                value_type,
                description=f"Dublin Core element '{element}'",
            )
            created += 1
        except DuplicateObjectError:
            pass
    return created
