"""netCDF-convention XML metadata documents.

ESG climate data carries netCDF-style metadata: global attributes about
the dataset (model, experiment, institution, temporal coverage) plus
per-variable attributes (standard name, units, cell methods).  This
module models those documents, renders/parses the XML form ESG shipped,
and generates synthetic climate-model datasets for experiments.
"""

from __future__ import annotations

import datetime as _dt
import random
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass
class VariableMetadata:
    """One netCDF variable and its attributes."""

    name: str
    standard_name: str
    units: str
    attributes: dict[str, str] = field(default_factory=dict)


@dataclass
class DatasetMetadata:
    """One ESG dataset: global attributes + variables."""

    dataset_id: str
    global_attributes: dict[str, Any] = field(default_factory=dict)
    variables: list[VariableMetadata] = field(default_factory=list)

    # -- XML form -----------------------------------------------------------

    def to_xml(self) -> bytes:
        root = ET.Element("dataset", {"id": self.dataset_id})
        globals_el = ET.SubElement(root, "globalAttributes")
        for key, value in self.global_attributes.items():
            attr = ET.SubElement(globals_el, "attribute", {"name": key})
            if isinstance(value, _dt.date):
                attr.set("type", "date")
                attr.text = value.isoformat()
            elif isinstance(value, float):
                attr.set("type", "float")
                attr.text = repr(value)
            elif isinstance(value, int):
                attr.set("type", "int")
                attr.text = str(value)
            else:
                attr.set("type", "string")
                attr.text = str(value)
        variables_el = ET.SubElement(root, "variables")
        for variable in self.variables:
            var_el = ET.SubElement(
                variables_el,
                "variable",
                {
                    "name": variable.name,
                    "standard_name": variable.standard_name,
                    "units": variable.units,
                },
            )
            for key, value in variable.attributes.items():
                attr = ET.SubElement(var_el, "attribute", {"name": key})
                attr.text = value
        return ET.tostring(root, encoding="utf-8")

    @classmethod
    def from_xml(cls, data: bytes) -> "DatasetMetadata":
        root = ET.fromstring(data)
        dataset = cls(dataset_id=root.get("id", ""))
        globals_el = root.find("globalAttributes")
        if globals_el is not None:
            for attr in globals_el:
                name = attr.get("name", "")
                kind = attr.get("type", "string")
                text = attr.text or ""
                value: Any = text
                if kind == "int":
                    value = int(text)
                elif kind == "float":
                    value = float(text)
                elif kind == "date":
                    value = _dt.date.fromisoformat(text)
                dataset.global_attributes[name] = value
        variables_el = root.find("variables")
        if variables_el is not None:
            for var_el in variables_el:
                variable = VariableMetadata(
                    name=var_el.get("name", ""),
                    standard_name=var_el.get("standard_name", ""),
                    units=var_el.get("units", ""),
                )
                for attr in var_el:
                    variable.attributes[attr.get("name", "")] = attr.text or ""
                dataset.variables.append(variable)
        return dataset


# --------------------------------------------------------------------------
# Synthetic ESG data
# --------------------------------------------------------------------------

_MODELS = ("CCSM2", "PCM", "CSM1", "HadCM3", "ECHAM4")
_EXPERIMENTS = ("control", "20c3m", "a2-scenario", "b1-scenario", "spinup")
_INSTITUTIONS = ("NCAR", "LLNL", "ORNL", "LANL", "ANL")
_VARIABLE_POOL = (
    VariableMetadata("TS", "surface_temperature", "K"),
    VariableMetadata("PS", "surface_air_pressure", "Pa"),
    VariableMetadata("PRECT", "precipitation_flux", "kg m-2 s-1"),
    VariableMetadata("CLDTOT", "cloud_area_fraction", "1"),
    VariableMetadata("U10", "eastward_wind", "m s-1"),
    VariableMetadata("QFLX", "water_evaporation_flux", "kg m-2 s-1"),
)


def generate_dataset(index: int, seed: int = 0) -> DatasetMetadata:
    """Deterministic synthetic ESG dataset #index."""
    rng = random.Random((seed << 20) ^ index)
    model = rng.choice(_MODELS)
    experiment = rng.choice(_EXPERIMENTS)
    year0 = rng.randrange(1870, 2000)
    years = rng.choice((10, 25, 50, 100))
    dataset = DatasetMetadata(
        dataset_id=f"esg.{model}.{experiment}.run{index:05d}",
        global_attributes={
            "model": model,
            "experiment": experiment,
            "institution": rng.choice(_INSTITUTIONS),
            "run_number": index,
            "start_date": _dt.date(year0, 1, 1),
            "years_simulated": years,
            "resolution_degrees": rng.choice((0.5, 1.0, 2.0, 2.8)),
            "calendar": "noleap",
        },
    )
    n_vars = rng.randrange(2, 5)
    for variable in rng.sample(_VARIABLE_POOL, n_vars):
        dataset.variables.append(
            VariableMetadata(
                variable.name,
                variable.standard_name,
                variable.units,
                attributes={"cell_methods": rng.choice(("time: mean", "time: max"))},
            )
        )
    return dataset
