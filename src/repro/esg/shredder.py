"""Shredding ESG XML metadata into MCS attributes.

"Then we parsed or shredded the XML metadata files to extract individual
attribute values and stored these" (§6.2).  The shredder:

* auto-defines MCS user attributes for every global attribute it meets
  (prefixed ``esg_``) plus variable presence flags (``var_<name>``),
* optionally maps a subset onto Dublin Core elements,
* registers one logical file per dataset, inside a per-model collection.

The paper notes the mapping is "cumbersome and slow" — each previously
unseen attribute needs a definition round trip, and each dataset expands
into many attribute writes.  That cost structure is preserved.
"""

from __future__ import annotations

import datetime as _dt
from typing import Any, Optional

from repro.core.client import MCSClient
from repro.core.errors import DuplicateObjectError
from repro.esg.dublincore import dc_attribute, register_dublin_core
from repro.esg.netcdf import DatasetMetadata

PREFIX = "esg_"


class ESGShredder:
    """Loads netCDF-convention XML metadata into an MCS."""

    def __init__(self, client: MCSClient, use_dublin_core: bool = True) -> None:
        self.client = client
        self.use_dublin_core = use_dublin_core
        self._defined: set[str] = set()
        if use_dublin_core:
            register_dublin_core(client)

    # -- attribute definition -------------------------------------------------

    def _ensure_defined(self, name: str, value: Any) -> None:
        if name in self._defined:
            return
        if isinstance(value, bool):
            value_type = "int"
        elif isinstance(value, int):
            value_type = "int"
        elif isinstance(value, float):
            value_type = "float"
        elif isinstance(value, _dt.datetime):
            value_type = "datetime"
        elif isinstance(value, _dt.date):
            value_type = "date"
        else:
            value_type = "string"
        try:
            self.client.define_attribute(
                name, value_type, description="shredded from ESG XML"
            )
        except DuplicateObjectError:
            pass
        self._defined.add(name)

    # -- loading ---------------------------------------------------------------

    def shred_xml(self, xml_data: bytes, collection: Optional[str] = None) -> str:
        """Parse one XML document and load it; returns the logical name."""
        return self.shred(DatasetMetadata.from_xml(xml_data), collection)

    def shred(self, dataset: DatasetMetadata, collection: Optional[str] = None) -> str:
        attributes: dict[str, Any] = {}
        for key, value in dataset.global_attributes.items():
            name = PREFIX + key
            coerced = value if not isinstance(value, bool) else int(value)
            self._ensure_defined(name, coerced)
            attributes[name] = coerced
        for variable in dataset.variables:
            flag = f"var_{variable.name}"
            self._ensure_defined(flag, 1)
            attributes[flag] = 1
            units_attr = f"units_{variable.name}"
            self._ensure_defined(units_attr, variable.units)
            attributes[units_attr] = variable.units
        if self.use_dublin_core:
            attributes[dc_attribute("title")] = dataset.dataset_id
            attributes[dc_attribute("type")] = "climate-model-output"
            publisher = dataset.global_attributes.get("institution")
            if publisher:
                attributes[dc_attribute("publisher")] = str(publisher)
            start = dataset.global_attributes.get("start_date")
            if isinstance(start, _dt.date):
                attributes[dc_attribute("date")] = start

        target_collection = collection
        if target_collection is None:
            model = dataset.global_attributes.get("model", "unknown")
            target_collection = f"esg-{model}"
        try:
            self.client.create_collection(
                target_collection, description="ESG datasets"
            )
        except DuplicateObjectError:
            pass
        try:
            self.client.create_logical_file(
                dataset.dataset_id,
                data_type="netcdf",
                collection=target_collection,
                attributes=attributes,
            )
        except DuplicateObjectError:
            self.client.set_attributes("file", dataset.dataset_id, attributes)
        return dataset.dataset_id

    def shred_many(self, datasets: list[DatasetMetadata]) -> list[str]:
        return [self.shred(d) for d in datasets]
