"""repro.obs — metrics, tracing, and structured logging.

The observability substrate for every layer of the MCS reproduction:

* :mod:`repro.obs.metrics` — thread-safe counters/gauges/histograms
  (lock-free per-thread shards), a process-wide ``MetricsRegistry``,
  Prometheus text rendering, and snapshot pretty-printing;
* :mod:`repro.obs.trace` — nested spans with request-id propagation
  (contextvars in-process, a SOAP header across the wire);
* :mod:`repro.obs.log` — stdlib logging with a JSON formatter that
  stamps the current request id on every record.

Metric name convention: ``mcs_<layer>_<what>_<unit>`` with layers
``db``, ``soap``, ``catalog``, ``repl`` — see docs/INTERNALS.md
("Observability") for the full name and label inventory.

Everything is stdlib-only and can be disabled process-wide with
``set_enabled(False)`` or ``REPRO_OBS_DISABLED=1``.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    OBS,
    counter,
    enabled,
    format_snapshot,
    gauge,
    get_registry,
    histogram,
    render_prometheus,
    set_enabled,
)
from repro.obs.trace import (
    current_request_id,
    format_trace,
    new_request_id,
    recent_spans,
    span,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "OBS",
    "counter",
    "current_request_id",
    "enabled",
    "format_snapshot",
    "format_trace",
    "gauge",
    "get_registry",
    "histogram",
    "new_request_id",
    "recent_spans",
    "render_prometheus",
    "set_enabled",
    "span",
]
