"""repro.obs — metrics, tracing, profiling, SLOs, and structured logging.

The observability substrate for every layer of the MCS reproduction:

* :mod:`repro.obs.metrics` — thread-safe counters/gauges/histograms
  (lock-free per-thread shards), a process-wide ``MetricsRegistry``,
  Prometheus text rendering, and snapshot pretty-printing;
* :mod:`repro.obs.trace` — distributed spans with trace/span/parent ids,
  request-id propagation (contextvars in-process, SOAP headers across
  the wire), annotations, a bounded span ring, waterfall rendering and
  Chrome-trace / JSONL exporters;
* :mod:`repro.obs.profiler` — a wall-clock sampling profiler over
  ``sys._current_frames()`` with folded-stack (flamegraph) output;
* :mod:`repro.obs.slo` — sliding-window SLI tracking with multi-window
  error-budget burn rates behind ``/healthz``–``/readyz``;
* :mod:`repro.obs.log` — stdlib logging with a JSON formatter that
  stamps the current request id on every record.

Metric name convention: ``mcs_<layer>_<what>_<unit>`` with layers
``db``, ``soap``, ``catalog``, ``repl`` — see docs/INTERNALS.md
("Observability") for the full name and label inventory.

Everything is stdlib-only and can be disabled process-wide with
``set_enabled(False)`` or ``REPRO_OBS_DISABLED=1``; span recording alone
toggles with ``trace.set_tracing_enabled`` / ``REPRO_TRACE_DISABLED=1``.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    OBS,
    counter,
    enabled,
    format_snapshot,
    gauge,
    get_registry,
    histogram,
    render_prometheus,
    set_enabled,
)
from repro.obs.profiler import SamplingProfiler
from repro.obs.slo import SLO, SLObjective, SLOTracker, format_slo
from repro.obs.trace import (
    annotate,
    assemble_trace,
    current_request_id,
    current_span,
    current_traceparent,
    format_trace,
    format_waterfall,
    new_request_id,
    recent_spans,
    set_tracing_enabled,
    span,
    to_chrome_trace,
    to_jsonl,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "OBS",
    "SLO",
    "SLObjective",
    "SLOTracker",
    "SamplingProfiler",
    "annotate",
    "assemble_trace",
    "counter",
    "current_request_id",
    "current_span",
    "current_traceparent",
    "enabled",
    "format_slo",
    "format_snapshot",
    "format_trace",
    "format_waterfall",
    "gauge",
    "get_registry",
    "histogram",
    "new_request_id",
    "recent_spans",
    "render_prometheus",
    "set_enabled",
    "set_tracing_enabled",
    "span",
    "to_chrome_trace",
    "to_jsonl",
]
