"""Stdlib-only wall-clock sampling profiler.

A daemon thread samples every live thread's Python stack via
``sys._current_frames()`` on a fixed interval and folds the stacks into
``module:function`` counts — the input format flamegraph tooling eats
(``flamegraph.pl``, speedscope, inferno).  No instrumentation, no
``sys.settrace`` slowdown: the profiled code runs untouched and the
profiler's own cost is *measured*, not guessed (see
:attr:`SamplingProfiler.overhead_fraction`).

Activation paths:

* programmatic — ``with SamplingProfiler(interval_s=0.005): ...``;
* per-endpoint — ``GET /profile?seconds=1`` on the SOAP server runs a
  bounded capture and returns the folded stacks as text (the ``mcs
  profile`` CLI wraps this);
* environment — ``REPRO_PROFILE=<seconds>`` makes ``mcs serve`` run one
  capture at startup and write it to ``REPRO_PROFILE_OUT`` (default
  ``mcs-profile.folded``).
"""

from __future__ import annotations

import os
import sys
import threading
import time
from collections import Counter as _TallyCounter
from typing import Optional

from repro.obs.metrics import counter as _obs_counter

_SAMPLES = _obs_counter(
    "mcs_profile_samples_total",
    "Stack samples captured by the wall-clock sampling profiler",
)

#: Frames whose module path contains these fragments are the profiler's
#: own machinery and are elided from captured stacks.
_SELF_MODULES = ("repro/obs/profiler",)


def _frame_label(frame) -> str:
    code = frame.f_code
    module = code.co_filename
    # Compress the path to its last two components: enough to identify
    # the module without leaking absolute build paths into reports.
    parts = module.replace("\\", "/").rsplit("/", 2)
    short = "/".join(parts[-2:]) if len(parts) > 1 else module
    return f"{short}:{code.co_name}"


class SamplingProfiler:
    """Samples all threads' stacks on an interval; folds them for flamegraphs."""

    def __init__(self, interval_s: float = 0.005) -> None:
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        self.interval_s = interval_s
        self.samples: _TallyCounter = _TallyCounter()
        self.sample_count = 0
        self._sampling_time = 0.0
        self._started_at: Optional[float] = None
        self._elapsed = 0.0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already running")
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        self._stop.set()
        if self._thread is not None:
            self._thread.join(5)
            self._thread = None
        if self._started_at is not None:
            self._elapsed += time.perf_counter() - self._started_at
            self._started_at = None
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # -- sampling ------------------------------------------------------------

    def _loop(self) -> None:
        own_tid = threading.get_ident()
        while not self._stop.wait(self.interval_s):
            self._sample_once(own_tid)

    def _sample_once(self, own_tid: int) -> None:
        t0 = time.perf_counter()
        frames = sys._current_frames()
        tallies: list[tuple[str, ...]] = []
        for tid, frame in frames.items():
            if tid == own_tid:
                continue
            stack: list[str] = []
            while frame is not None:
                filename = frame.f_code.co_filename.replace("\\", "/")
                if any(part in filename for part in _SELF_MODULES):
                    stack.clear()  # a stack mid-profiler call is all noise
                    break
                stack.append(_frame_label(frame))
                frame = frame.f_back
            if stack:
                tallies.append(tuple(reversed(stack)))
        with self._lock:
            for stack_key in tallies:
                self.samples[stack_key] += 1
            self.sample_count += 1
            self._sampling_time += time.perf_counter() - t0
        _SAMPLES.inc()

    # -- results -------------------------------------------------------------

    @property
    def overhead_fraction(self) -> float:
        """Measured share of wall time the sampler itself consumed."""
        elapsed = self._elapsed
        if self._started_at is not None:
            elapsed += time.perf_counter() - self._started_at
        if elapsed <= 0:
            return 0.0
        with self._lock:
            return self._sampling_time / elapsed

    def folded(self) -> str:
        """Folded-stack output: ``frame;frame;frame count`` per line."""
        with self._lock:
            items = sorted(self.samples.items(), key=lambda kv: (-kv[1], kv[0]))
        return "\n".join(f"{';'.join(stack)} {count}" for stack, count in items)

    def report(self) -> str:
        """Folded stacks plus a trailing self-overhead comment line."""
        body = self.folded()
        meta = (
            f"# samples={self.sample_count} interval_s={self.interval_s} "
            f"self_overhead={self.overhead_fraction:.4%}"
        )
        return f"{body}\n{meta}" if body else meta


def capture(seconds: float, interval_s: float = 0.005) -> SamplingProfiler:
    """Run a bounded capture and return the stopped profiler."""
    profiler = SamplingProfiler(interval_s=interval_s).start()
    time.sleep(max(seconds, 0.0))
    return profiler.stop()


def run_from_env(environ=None) -> Optional[str]:
    """Honor ``REPRO_PROFILE=<seconds>``: capture once, write folded output.

    Returns the output path when a capture ran, else None.  Used by
    ``mcs serve`` so a server can be profiled without code changes.
    """
    env = environ if environ is not None else os.environ
    spec = env.get("REPRO_PROFILE")
    if not spec:
        return None
    try:
        seconds = float(spec)
    except ValueError:
        return None
    profiler = capture(seconds)
    out_path = env.get("REPRO_PROFILE_OUT", "mcs-profile.folded")
    with open(out_path, "w", encoding="utf-8") as fh:
        fh.write(profiler.report() + "\n")
    return out_path
