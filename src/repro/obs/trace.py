"""Distributed spans and request-id propagation.

A *span* times one named unit of work (``with span("db.execute",
sql=...)``); spans nest via :mod:`contextvars`, so a span opened inside
another records the outer span as its parent.  Three correlation tokens
ride every span:

* **request id** — minted at the outermost span (normally the client
  call), carried across threads by ``contextvars`` and across the wire
  in the SOAP ``<Header><RequestId>`` element;
* **trace id** — one id for the whole distributed request tree, minted
  at the root span and carried across the wire in the SOAP
  ``<Header><TraceParent>`` element (``trace_id;span_id``);
* **span id / parent span id** — process-unique string ids linking every
  span to its parent, *including across the socket*: the server restores
  the client's ``TraceParent`` via :func:`set_remote_context`, so the
  server-side dispatch span parents onto the client's call span and
  ``mcs trace <request_id>`` can assemble one cross-process waterfall.

Spans also accumulate *annotations* — free-form event strings appended
by the resilience layer (retry attempt, breaker state), the idempotency
cache (replay served) and the fault-injection engine (injected fault id)
via :func:`annotate` — so a chaos run is fully explainable from its
trace alone.

Finished spans land in two places: a duration histogram per span name
(``mcs_span_seconds{name=...}``) and a bounded in-memory ring readable
via :func:`recent_spans` (evictions counted by
``mcs_obs_spans_dropped_total``).  The ring is served over HTTP by the
SOAP server's ``GET /spans`` collection endpoint; :func:`format_trace`,
:func:`format_waterfall`, :func:`to_chrome_trace` and :func:`to_jsonl`
render or export an assembled trace.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from contextvars import ContextVar
from typing import Any, Iterable, Optional, Sequence

from repro.obs.metrics import OBS, counter, histogram

_request_id: ContextVar[Optional[str]] = ContextVar("repro_obs_request_id", default=None)
#: The innermost open span *object* (annotations need more than its id).
_current_span: ContextVar[Optional["span"]] = ContextVar("repro_obs_span", default=None)
#: Remote parent restored from the wire: ``(trace_id, parent_span_id)``.
_remote_parent: ContextVar[Optional[tuple[str, Optional[str]]]] = ContextVar(
    "repro_obs_remote_parent", default=None
)

_ids = itertools.count(1)
_rid_counter = itertools.count(1)
_PID = os.getpid()
_rid_prefix = f"{_PID:x}-{threading.get_ident() & 0xFFFF:x}"
_sid_prefix = f"{_PID:x}s"
_tid_prefix = f"{_PID:x}t"

SPAN_RING_SIZE = 512
_finished: deque = deque(maxlen=SPAN_RING_SIZE)

_SPAN_SECONDS = histogram(
    "mcs_span_seconds",
    "Duration of named spans across every instrumented layer",
    labels=("name",),
)
_SPANS_DROPPED = counter(
    "mcs_obs_spans_dropped_total",
    "Finished spans evicted from the bounded in-memory ring",
)
# Per-name histogram children, resolved once — spans are hot-path.
# Hits stay lock-free; the guard covers the one-time insert (MCS015).
_span_hist: dict = {}
_span_hist_guard = threading.Lock()


class _TracingSwitch:
    """Span recording on/off, independent of the wider OBS switch.

    Metrics stay live when tracing is off — this is the knob the
    ``sweep_tracing_ablation`` benchmark toggles to isolate what the span
    machinery itself costs on the SOAP path.
    """

    __slots__ = ("enabled",)

    def __init__(self, enabled: bool) -> None:
        self.enabled = enabled


TRACING = _TracingSwitch(
    os.environ.get("REPRO_TRACE_DISABLED", "") not in ("1", "true", "yes")
)


def set_tracing_enabled(flag: bool) -> None:
    TRACING.enabled = bool(flag)


def _hist_for(name: str):
    child = _span_hist.get(name)
    if child is None:
        with _span_hist_guard:
            child = _span_hist.get(name)
            if child is None:
                child = _span_hist[name] = _SPAN_SECONDS.labels(name)
    return child


def new_request_id() -> str:
    """Mint a process-unique request id (cheap: no entropy pool)."""
    return f"{_rid_prefix}-{next(_rid_counter):x}"


def new_trace_id() -> str:
    """Mint a process-unique trace id for a new root span."""
    return f"{_tid_prefix}{next(_ids):x}"


def current_request_id() -> Optional[str]:
    return _request_id.get()


def current_span() -> Optional["span"]:
    """The innermost open span on this thread's context, if any."""
    return _current_span.get()


def has_active_span() -> bool:
    """True when a span is already open on this thread's context."""
    return _current_span.get() is not None


def set_request_id(request_id: Optional[str]):
    """Bind the contextvar; returns a token for ``reset_request_id``."""
    return _request_id.set(request_id)


def reset_request_id(token) -> None:
    _request_id.reset(token)


# -- wire context (the TraceParent SOAP header) ------------------------------


def current_traceparent() -> Optional[str]:
    """Wire form of the active trace context: ``trace_id;span_id``.

    What a client stamps into the outgoing ``<TraceParent>`` header so
    the server's dispatch span parents onto the in-flight client span.
    """
    s = _current_span.get()
    if s is not None and s.trace_id is not None:
        return f"{s.trace_id};{s.span_id}"
    remote = _remote_parent.get()
    if remote is not None:
        return f"{remote[0]};{remote[1]}" if remote[1] else remote[0]
    return None


def parse_traceparent(value: str) -> tuple[str, Optional[str]]:
    """``trace_id;span_id`` → ``(trace_id, parent_span_id)``."""
    trace_id, _, parent = value.partition(";")
    return trace_id.strip(), (parent.strip() or None)


def set_remote_context(traceparent: Optional[str]):
    """Adopt a remote parent for spans opened on this context.

    Server-side: bind the ``TraceParent`` header for the duration of the
    request so the next root-level span links to the caller's span.
    Returns a token for :func:`reset_remote_context`.
    """
    if traceparent is None:
        return _remote_parent.set(None)
    return _remote_parent.set(parse_traceparent(traceparent))


def reset_remote_context(token) -> None:
    _remote_parent.reset(token)


# -- the span itself ---------------------------------------------------------


class span:
    """Context manager timing one unit of work.

    Class-based (not ``@contextmanager``) to keep per-entry overhead at a
    couple of attribute writes.  When observability (or tracing alone) is
    disabled, the enter/exit pair does nothing but one flag check each.
    """

    __slots__ = (
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "trace_id",
        "request_id",
        "ts",
        "duration",
        "error",
        "annotations",
        "_start",
        "_span_token",
        "_rid_token",
    )

    def __init__(self, name: str, **attrs: Any) -> None:
        self.name = name
        self.attrs = attrs
        self.span_id: Optional[str] = None
        self.parent_id: Optional[str] = None
        self.trace_id: Optional[str] = None
        self.request_id: Optional[str] = None
        self.ts: Optional[float] = None
        self.duration: Optional[float] = None
        self.error: Optional[str] = None
        self.annotations: list[str] = []
        self._rid_token = None

    def __enter__(self) -> "span":
        if not (OBS.enabled and TRACING.enabled):
            self._start = None
            return self
        self.span_id = f"{_sid_prefix}{next(_ids):x}"
        parent = _current_span.get()
        if parent is not None:
            self.parent_id = parent.span_id
            self.trace_id = parent.trace_id
        else:
            remote = _remote_parent.get()
            if remote is not None:
                self.trace_id, self.parent_id = remote
            else:
                self.trace_id = new_trace_id()
        rid = _request_id.get()
        if rid is None:
            rid = new_request_id()
            self._rid_token = _request_id.set(rid)
        self.request_id = rid
        self._span_token = _current_span.set(self)
        self.ts = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._start is None:
            return
        self.duration = time.perf_counter() - self._start
        _current_span.reset(self._span_token)
        if self._rid_token is not None:
            _request_id.reset(self._rid_token)
            self._rid_token = None
        _hist_for(self.name).observe(self.duration)
        if exc_type is not None:
            self.error = exc_type.__name__
        # Append the span object itself; the dict view is built lazily in
        # recent_spans() so the hot path pays one deque append, not a
        # ten-key dict construction.  The length check races benignly:
        # drop accounting may be off by the number of in-flight appends,
        # never wildly wrong, and costs no lock.
        ring = _finished
        if len(ring) >= (ring.maxlen or SPAN_RING_SIZE):
            _SPANS_DROPPED.inc()
        ring.append(self)

    def annotate(self, message: str) -> None:
        """Append a free-form event to this span."""
        self.annotations.append(message)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "request_id": self.request_id,
            "pid": _PID,
            "ts": self.ts,
            "duration": self.duration,
            "error": self.error,
            "attrs": self.attrs,
            "annotations": list(self.annotations),
        }


def annotate(message: str) -> bool:
    """Append *message* to the innermost open span, if any.

    The hook the resilience layer, the idempotency cache and the
    fault-injection engine use to stamp events (retry attempt, breaker
    state, replay served, injected fault id) onto whatever span is in
    flight; returns False (and does nothing) when no span is open.
    """
    s = _current_span.get()
    if s is None:
        return False
    s.annotations.append(message)
    return True


# -- the bounded ring --------------------------------------------------------


def set_span_ring_size(size: int) -> None:
    """Resize the finished-span ring, keeping the most recent entries."""
    global _finished
    if size < 1:
        raise ValueError("span ring size must be >= 1")
    _finished = deque(_finished, maxlen=size)


def span_ring_capacity() -> int:
    return _finished.maxlen or SPAN_RING_SIZE


def recent_spans(
    request_id: Optional[str] = None,
    name: Optional[str] = None,
    trace_id: Optional[str] = None,
) -> list[dict[str, Any]]:
    """Finished spans from the in-memory ring, oldest first."""
    out = [s.to_dict() for s in list(_finished)]
    if request_id is not None:
        out = [s for s in out if s["request_id"] == request_id]
    if trace_id is not None:
        out = [s for s in out if s["trace_id"] == trace_id]
    if name is not None:
        out = [s for s in out if s["name"] == name]
    return out


def clear_spans() -> None:
    _finished.clear()


# -- trace assembly and rendering -------------------------------------------


def assemble_trace(spans: Sequence[dict[str, Any]]) -> dict[str, Any]:
    """Organize collected span dicts into a tree, flagging orphans.

    Returns ``{"spans", "roots", "orphans", "children"}`` where *roots*
    are spans with no parent at all, *orphans* have a parent id that is
    missing from the collection (an incomplete trace — some process's
    ring evicted it or was never scraped), and *children* maps span id →
    child spans sorted by start timestamp.
    """
    known = {s["span_id"] for s in spans}
    children: dict[Optional[str], list[dict[str, Any]]] = {}
    roots: list[dict[str, Any]] = []
    orphans: list[dict[str, Any]] = []
    for s in sorted(spans, key=lambda s: (s.get("ts") or 0.0)):
        parent = s.get("parent_id")
        if parent is None:
            roots.append(s)
        elif parent not in known:
            orphans.append(s)
        children.setdefault(parent, []).append(s)
    return {
        "spans": list(spans),
        "roots": roots,
        "orphans": orphans,
        "children": children,
    }


def _span_suffix(node: dict[str, Any]) -> str:
    attrs = " ".join(f"{k}={v!r}" for k, v in (node.get("attrs") or {}).items())
    notes = "".join(f" [{a}]" for a in node.get("annotations") or ())
    mark = " !" if node.get("error") else ""
    return f"{' ' + attrs if attrs else ''}{notes}{mark}"


def format_trace(
    request_id: str, spans: Optional[Sequence[dict[str, Any]]] = None
) -> str:
    """Render one request's spans as an indented tree (for debugging)."""
    if spans is None:
        spans = recent_spans(request_id=request_id)
    tree = assemble_trace(spans)
    lines = [f"trace {request_id}"]

    def walk(node: dict, depth: int) -> None:
        lines.append(
            f"{'  ' * depth}- {node['name']} {node['duration'] * 1e3:.3f}ms"
            f"{_span_suffix(node)}"
        )
        for child in tree["children"].get(node["span_id"], []):
            walk(child, depth + 1)

    for root in tree["roots"] + tree["orphans"]:
        walk(root, 1)
    return "\n".join(lines)


def format_waterfall(
    spans: Sequence[dict[str, Any]], title: str = "trace"
) -> str:
    """Render collected spans as a time-aligned cross-process waterfall.

    Spans from any number of processes (merged local + ``GET /spans``
    scrapes) are aligned on the earliest wall-clock start; each line
    shows the offset window, the owning pid, and the span's attrs,
    annotations and error mark.  Orphaned subtrees are flagged so an
    incomplete collection is visible instead of silently flattened.
    """
    if not spans:
        return f"{title}: no spans"
    tree = assemble_trace(spans)
    t0 = min(s.get("ts") or 0.0 for s in spans)
    lines = [f"waterfall {title} ({len(spans)} spans)"]

    def walk(node: dict, depth: int, orphan: bool) -> None:
        start = ((node.get("ts") or t0) - t0) * 1e3
        dur = (node.get("duration") or 0.0) * 1e3
        flag = " (orphan)" if orphan else ""
        lines.append(
            f"  [{start:9.3f}ms +{dur:9.3f}ms] pid={node.get('pid', '?')} "
            f"{'  ' * depth}{node['name']}{_span_suffix(node)}{flag}"
        )
        for child in tree["children"].get(node["span_id"], []):
            walk(child, depth + 1, False)

    for root in tree["roots"]:
        walk(root, 0, False)
    for orphan in tree["orphans"]:
        walk(orphan, 0, True)
    return "\n".join(lines)


# -- exporters ---------------------------------------------------------------


def to_chrome_trace(spans: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Export span dicts as chrome://tracing's Trace Event JSON.

    Complete ("X") events with microsecond timestamps; load the dumped
    JSON in chrome://tracing or https://ui.perfetto.dev to inspect the
    cross-process waterfall visually.
    """
    events = []
    for s in spans:
        events.append(
            {
                "name": s["name"],
                "cat": "mcs",
                "ph": "X",
                "ts": (s.get("ts") or 0.0) * 1e6,
                "dur": (s.get("duration") or 0.0) * 1e6,
                "pid": s.get("pid", 0),
                "tid": 0,
                "args": {
                    "span_id": s.get("span_id"),
                    "parent_id": s.get("parent_id"),
                    "trace_id": s.get("trace_id"),
                    "request_id": s.get("request_id"),
                    "attrs": s.get("attrs") or {},
                    "annotations": s.get("annotations") or [],
                    "error": s.get("error"),
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def to_jsonl(spans: Iterable[dict[str, Any]]) -> str:
    """One JSON object per line — the append-friendly archive format."""
    return "\n".join(json.dumps(s, sort_keys=True, default=str) for s in spans)
