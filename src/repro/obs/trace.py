"""Lightweight spans and request-id propagation.

A *span* times one named unit of work (``with span("db.execute",
sql=...)``); spans nest via :mod:`contextvars`, so a span opened inside
another records the outer span as its parent.  The *request id* is a
correlation token minted at the outermost span (normally the client
call) and carried:

* across threads within a process by ``contextvars``;
* across the wire in a SOAP ``<Header><RequestId>`` element
  (see :mod:`repro.soap.envelope`), restored server-side for the
  duration of the request so every span and log line on both sides of
  the socket shares one id.

Finished spans land in two places: a duration histogram per span name
(``mcs_span_seconds{name=...}``), and a bounded in-memory ring readable
via :func:`recent_spans` — enough to reconstruct a trace tree for recent
requests without any external collector.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from contextvars import ContextVar
from typing import Any, Optional

from repro.obs.metrics import OBS, histogram

_request_id: ContextVar[Optional[str]] = ContextVar("repro_obs_request_id", default=None)
_current_span: ContextVar[Optional[int]] = ContextVar("repro_obs_span", default=None)

_span_ids = itertools.count(1)
_rid_counter = itertools.count(1)
_rid_prefix = f"{os.getpid():x}-{threading.get_ident() & 0xFFFF:x}"

SPAN_RING_SIZE = 512
_finished: deque = deque(maxlen=SPAN_RING_SIZE)

_SPAN_SECONDS = histogram(
    "mcs_span_seconds",
    "Duration of named spans across every instrumented layer",
    labels=("name",),
)
# Per-name histogram children, resolved once — spans are hot-path.
_span_hist: dict = {}


def _hist_for(name: str):
    child = _span_hist.get(name)
    if child is None:
        child = _span_hist[name] = _SPAN_SECONDS.labels(name)
    return child


def new_request_id() -> str:
    """Mint a process-unique request id (cheap: no entropy pool)."""
    return f"{_rid_prefix}-{next(_rid_counter):x}"


def current_request_id() -> Optional[str]:
    return _request_id.get()


def has_active_span() -> bool:
    """True when a span is already open on this thread's context."""
    return _current_span.get() is not None


def set_request_id(request_id: Optional[str]):
    """Bind the contextvar; returns a token for ``reset_request_id``."""
    return _request_id.set(request_id)


def reset_request_id(token) -> None:
    _request_id.reset(token)


class span:
    """Context manager timing one unit of work.

    Class-based (not ``@contextmanager``) to keep per-entry overhead at a
    couple of attribute writes.  When observability is disabled the
    enter/exit pair does nothing but one flag check.
    """

    __slots__ = (
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "request_id",
        "duration",
        "error",
        "_start",
        "_span_token",
        "_rid_token",
    )

    def __init__(self, name: str, **attrs: Any) -> None:
        self.name = name
        self.attrs = attrs
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None
        self.request_id: Optional[str] = None
        self.duration: Optional[float] = None
        self.error: Optional[str] = None
        self._rid_token = None

    def __enter__(self) -> "span":
        if not OBS.enabled:
            self._start = None
            return self
        self.span_id = next(_span_ids)
        self.parent_id = _current_span.get()
        rid = _request_id.get()
        if rid is None:
            rid = new_request_id()
            self._rid_token = _request_id.set(rid)
        self.request_id = rid
        self._span_token = _current_span.set(self.span_id)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._start is None:
            return
        self.duration = time.perf_counter() - self._start
        _current_span.reset(self._span_token)
        if self._rid_token is not None:
            _request_id.reset(self._rid_token)
            self._rid_token = None
        _hist_for(self.name).observe(self.duration)
        if exc_type is not None:
            self.error = exc_type.__name__
        # Append the span object itself; the dict view is built lazily in
        # recent_spans() so the hot path pays one deque append, not a
        # seven-key dict construction.
        _finished.append(self)


def recent_spans(
    request_id: Optional[str] = None, name: Optional[str] = None
) -> list[dict[str, Any]]:
    """Finished spans from the in-memory ring, oldest first."""
    out = [
        {
            "name": s.name,
            "span_id": s.span_id,
            "parent_id": s.parent_id,
            "request_id": s.request_id,
            "duration": s.duration,
            "error": s.error,
            "attrs": s.attrs,
        }
        for s in list(_finished)
    ]
    if request_id is not None:
        out = [s for s in out if s["request_id"] == request_id]
    if name is not None:
        out = [s for s in out if s["name"] == name]
    return out


def clear_spans() -> None:
    _finished.clear()


def format_trace(request_id: str) -> str:
    """Render one request's spans as an indented tree (for debugging)."""
    spans = recent_spans(request_id=request_id)
    by_parent: dict[Optional[int], list[dict]] = {}
    for s in spans:
        by_parent.setdefault(s["parent_id"], []).append(s)
    known_ids = {s["span_id"] for s in spans}
    roots = [s for s in spans if s["parent_id"] not in known_ids]
    lines = [f"trace {request_id}"]

    def walk(node: dict, depth: int) -> None:
        attrs = " ".join(f"{k}={v!r}" for k, v in node["attrs"].items())
        mark = " !" if node["error"] else ""
        lines.append(
            f"{'  ' * depth}- {node['name']} {node['duration'] * 1e3:.3f}ms"
            f"{' ' + attrs if attrs else ''}{mark}"
        )
        for child in by_parent.get(node["span_id"], []):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 1)
    return "\n".join(lines)
