"""The declared metric-name registry.

Every metric family the process may emit — through ``/metrics``, the
SOAP ``stats`` call, or bench reports — must be declared here, under the
``mcs_`` prefix.  The declaration is what dashboards, alerts and the
paper-reproduction reports key on, so drift in either direction is a
bug:

* a call site minting a name that is **not** declared silently adds an
  unreviewed series to ``/metrics`` (lint rule ``MCS005`` catches it);
* a declared name **no** call site emits any more is a dashboard query
  that will never match again (``tests/analysis`` cross-checks the
  declared set against the scanned tree).

Keep the set sorted; add the declaration in the same commit as the call
site.
"""

from __future__ import annotations

#: Regex every emitted metric name must match.
METRIC_NAME_PATTERN = r"^mcs_[a-z][a-z0-9_]*$"

DECLARED_METRICS: frozenset[str] = frozenset(
    {
        # -- asyncio front end (repro.aserve) -----------------------------
        "mcs_aserve_connections_open",
        "mcs_aserve_connections_total",
        "mcs_aserve_inflight_requests",
        "mcs_aserve_parse_errors_total",
        "mcs_aserve_pipeline_depth",
        "mcs_aserve_scan_total",
        "mcs_aserve_template_responses_total",
        # -- cache (repro.cache) ------------------------------------------
        "mcs_cache_hit_ratio",
        "mcs_cache_invalidations_total",
        "mcs_cache_requests_total",
        # -- circuit breakers (repro.resilience.breaker) ------------------
        "mcs_breaker_rejections_total",
        "mcs_breaker_state",
        "mcs_breaker_transitions_total",
        # -- catalog / service (repro.core) -------------------------------
        "mcs_catalog_authz_seconds",
        "mcs_catalog_bulk_batch_size",
        "mcs_catalog_bulk_item_seconds",
        "mcs_catalog_bulk_items_total",
        "mcs_catalog_calls_total",
        "mcs_catalog_op_seconds",
        # -- database engine (repro.db) -----------------------------------
        "mcs_db_index_probes_total",
        "mcs_db_lock_timeouts_total",
        "mcs_db_lock_wait_seconds",
        "mcs_db_parse_seconds",
        "mcs_db_plan_seconds",
        "mcs_db_statement_seconds",
        "mcs_db_stmt_cache_total",
        "mcs_db_wal_append_seconds",
        "mcs_db_wal_appends_total",
        "mcs_db_wal_bytes_total",
        "mcs_db_wal_fsyncs_total",
        "mcs_db_wal_records_total",
        # -- fault injection (repro.faults) -------------------------------
        "mcs_faults_injected_total",
        # -- MQL + attribute secondary indexes (repro.mql) ----------------
        "mcs_index_intersections_total",
        "mcs_index_stats_updates_total",
        "mcs_mql_leaves_total",
        "mcs_mql_parse_seconds",
        "mcs_mql_plan_cache_total",
        "mcs_mql_queries_total",
        # -- profiler (repro.obs.profiler) --------------------------------
        "mcs_profile_samples_total",
        # -- replication (repro.db.replication) ---------------------------
        "mcs_repl_apply_seconds",
        "mcs_repl_batches_applied_total",
        "mcs_repl_batches_shipped_total",
        "mcs_repl_lag_batches",
        # -- retries (repro.resilience.retry) -----------------------------
        "mcs_retry_attempts_total",
        "mcs_retry_backoff_seconds",
        # -- sharding (repro.shard) ---------------------------------------
        "mcs_shard_2pc_total",
        "mcs_shard_merge_seconds",
        "mcs_shard_ops_total",
        # -- SLOs (repro.obs.slo) -----------------------------------------
        "mcs_slo_burn_rate",
        "mcs_slo_error_budget_remaining",
        "mcs_slo_events_total",
        # -- SOAP stack (repro.soap) --------------------------------------
        "mcs_soap_bulk_batch_size",
        "mcs_soap_bulk_items_total",
        "mcs_soap_client_keepalive_reuse_total",
        "mcs_soap_client_reconnects_total",
        "mcs_soap_client_requests_total",
        "mcs_soap_codec_seconds",
        "mcs_soap_faults_total",
        "mcs_soap_idempotent_replays_total",
        "mcs_soap_queue_depth",
        "mcs_soap_queue_wait_seconds",
        "mcs_soap_request_seconds",
        "mcs_soap_requests_total",
        "mcs_soap_worker_saturation_total",
        # -- tracing (repro.obs.trace) ------------------------------------
        "mcs_obs_spans_dropped_total",
        "mcs_span_seconds",
    }
)
