"""Service-level objectives: sliding windows, error budgets, burn rates.

An :class:`SLObjective` states what "good" means for an operation — a
success-ratio target plus a latency threshold (a slow success is a bad
event, exactly like an error).  The :class:`SLOTracker` records every
request into per-operation sliding windows and computes **multi-window
burn rates**: how fast the error budget (``1 - target``) is being spent
over a fast window (paging signal — a sudden cliff) and a slow window
(ticket signal — a simmering regression).  A burn rate of 1.0 spends
exactly the budget; the conventional fast-burn page threshold is ~14
(spending a month of budget in ~2 days).

Surfaced three ways by the SOAP server: ``GET /slo`` (JSON snapshot,
pretty-printed by ``mcs slo``), ``GET /readyz`` (503 while the fast
window is burning past the threshold) and the ``mcs_slo_*`` gauge
families on ``/metrics``.

Objectives are configurable per operation — constructor arguments or the
``REPRO_SLO`` environment spec (see :meth:`SLObjective.parse_spec`)::

    REPRO_SLO="query=0.999@0.050;*=0.99@0.250"

reads "queries: 99.9% good under 50 ms; everything else: 99% under
250 ms".
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.obs.metrics import OBS, counter as _obs_counter, gauge as _obs_gauge

_SLO_EVENTS = _obs_counter(
    "mcs_slo_events_total",
    "Requests recorded against an SLO, by operation and good/bad outcome",
    labels=("operation", "outcome"),
)
_SLO_BURN = _obs_gauge(
    "mcs_slo_burn_rate",
    "Error-budget burn rate per operation and window (1.0 = on budget)",
    labels=("operation", "window"),
)
_SLO_BUDGET = _obs_gauge(
    "mcs_slo_error_budget_remaining",
    "Share of the slow-window error budget still unspent, per operation",
    labels=("operation",),
)

#: Fast-window burn rate above which ``/readyz`` reports not-ready.  The
#: classic page threshold: budget for the whole slow window spent ~14x
#: too fast.
DEFAULT_FAST_BURN_THRESHOLD = 14.0


@dataclass(frozen=True)
class SLObjective:
    """What "good" means for one operation (or the ``*`` default)."""

    target: float = 0.99
    """Required good-event ratio (0 < target < 1)."""
    latency_s: float = 0.250
    """A success slower than this is a *bad* event (latency SLI)."""
    fast_window_s: float = 60.0
    slow_window_s: float = 3600.0

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ValueError("SLO target must be in (0, 1)")
        if self.latency_s <= 0:
            raise ValueError("latency threshold must be positive")
        if self.fast_window_s >= self.slow_window_s:
            raise ValueError("fast window must be shorter than the slow window")

    @property
    def budget(self) -> float:
        return 1.0 - self.target

    @staticmethod
    def parse_spec(spec: str) -> dict[str, "SLObjective"]:
        """Parse ``op=target@latency_s[/fast/slow];...`` into objectives.

        ``*`` is the default objective applied to unlisted operations::

            query=0.999@0.050;*=0.99@0.250/30/900
        """
        objectives: dict[str, SLObjective] = {}
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            op, _, rhs = clause.partition("=")
            op = op.strip()
            if not op or not rhs:
                raise ValueError(f"malformed SLO clause {clause!r}")
            target_part, _, latency_part = rhs.partition("@")
            kwargs: dict[str, float] = {"target": float(target_part)}
            if latency_part:
                latency, *windows = latency_part.split("/")
                kwargs["latency_s"] = float(latency)
                if windows:
                    kwargs["fast_window_s"] = float(windows[0])
                if len(windows) > 1:
                    kwargs["slow_window_s"] = float(windows[1])
            objectives[op] = SLObjective(**kwargs)
        return objectives


class _OpWindow:
    """Sliding window of (timestamp, good) events for one operation."""

    __slots__ = ("events", "lock")

    def __init__(self, max_events: int) -> None:
        self.events: deque[tuple[float, bool]] = deque(maxlen=max_events)
        self.lock = threading.Lock()

    def record(self, now: float, good: bool) -> None:
        with self.lock:
            self.events.append((now, good))

    def counts(self, now: float, window_s: float) -> tuple[int, int]:
        """(total, bad) inside ``[now - window_s, now]``."""
        cutoff = now - window_s
        total = bad = 0
        with self.lock:
            for ts, good in reversed(self.events):
                if ts < cutoff:
                    break
                total += 1
                if not good:
                    bad += 1
        return total, bad


class SLOTracker:
    """Per-operation sliding-window SLI tracking and burn-rate math."""

    def __init__(
        self,
        objectives: Optional[dict[str, SLObjective]] = None,
        clock: Callable[[], float] = time.monotonic,
        max_events_per_op: int = 8192,
        fast_burn_threshold: float = DEFAULT_FAST_BURN_THRESHOLD,
    ) -> None:
        self.objectives = dict(objectives or {})
        self.objectives.setdefault("*", SLObjective())
        self.clock = clock
        self.max_events_per_op = max_events_per_op
        self.fast_burn_threshold = fast_burn_threshold
        self._windows: dict[str, _OpWindow] = {}
        self._lock = threading.Lock()

    def configure(self, objectives: dict[str, SLObjective]) -> None:
        """Replace the objective table (the ``*`` default is preserved)."""
        merged = {"*": self.objectives["*"], **objectives}
        self.objectives = merged

    def objective_for(self, operation: str) -> SLObjective:
        return self.objectives.get(operation) or self.objectives["*"]

    def _window(self, operation: str) -> _OpWindow:
        window = self._windows.get(operation)
        if window is None:
            with self._lock:
                window = self._windows.get(operation)
                if window is None:
                    window = _OpWindow(self.max_events_per_op)
                    self._windows[operation] = window
        return window

    # -- recording -----------------------------------------------------------

    def record(self, operation: str, duration_s: float, ok: bool) -> None:
        """Record one request outcome against the operation's objective."""
        objective = self.objective_for(operation)
        good = ok and duration_s <= objective.latency_s
        self._window(operation).record(self.clock(), good)
        if OBS.enabled:
            _SLO_EVENTS.labels(operation, "good" if good else "bad").inc()

    # -- burn-rate math ------------------------------------------------------

    def burn_rate(self, operation: str, window_s: float) -> float:
        """Budget-normalized bad-event rate over the trailing window.

        0 = no bad events; 1.0 = spending exactly the error budget;
        >1 = overspending.  With no traffic in the window, 0.
        """
        objective = self.objective_for(operation)
        total, bad = self._window(operation).counts(self.clock(), window_s)
        if total == 0:
            return 0.0
        return (bad / total) / objective.budget

    def status(self, operation: str) -> dict[str, Any]:
        """Full SLI/burn/budget readout for one operation."""
        objective = self.objective_for(operation)
        now = self.clock()
        window = self._window(operation)
        fast_total, fast_bad = window.counts(now, objective.fast_window_s)
        slow_total, slow_bad = window.counts(now, objective.slow_window_s)
        fast_burn = (
            (fast_bad / fast_total) / objective.budget if fast_total else 0.0
        )
        slow_burn = (
            (slow_bad / slow_total) / objective.budget if slow_total else 0.0
        )
        # Budget spent so far in the slow window, as a share of the whole
        # window's allowance; clamped — you cannot have less than none.
        budget_remaining = max(0.0, 1.0 - slow_burn)
        # The burn rate tops out at 1/budget (100% bad events), so for a
        # loose objective the page threshold may be unreachable; clamp it
        # so total failure always counts as breaching.
        threshold = min(self.fast_burn_threshold, 1.0 / objective.budget)
        return {
            "objective": {
                "target": objective.target,
                "latency_s": objective.latency_s,
                "fast_window_s": objective.fast_window_s,
                "slow_window_s": objective.slow_window_s,
            },
            "fast": {"total": fast_total, "bad": fast_bad, "burn_rate": fast_burn},
            "slow": {"total": slow_total, "bad": slow_bad, "burn_rate": slow_burn},
            "budget_remaining": budget_remaining,
            "breaching": fast_burn >= threshold and slow_burn >= 1.0,
        }

    def snapshot(self) -> dict[str, Any]:
        """Status for every operation seen; refreshes the slo gauges."""
        with self._lock:
            operations = sorted(self._windows)
        out: dict[str, Any] = {
            "fast_burn_threshold": self.fast_burn_threshold,
            "operations": {},
        }
        for operation in operations:
            status = self.status(operation)
            out["operations"][operation] = status
            if OBS.enabled:
                _SLO_BURN.labels(operation, "fast").set(
                    status["fast"]["burn_rate"]
                )
                _SLO_BURN.labels(operation, "slow").set(
                    status["slow"]["burn_rate"]
                )
                _SLO_BUDGET.labels(operation).set(status["budget_remaining"])
        return out

    def healthy(self) -> bool:
        """Readiness: no operation is multi-window-breaching its objective.

        Breach requires *both* windows over threshold — the fast window
        past the page threshold (it is really happening now) and the slow
        window past 1.0 (it is not just a blip) — the standard
        multi-window guard against flapping readiness.
        """
        with self._lock:
            operations = sorted(self._windows)
        return not any(self.status(op)["breaching"] for op in operations)

    def reset(self) -> None:
        with self._lock:
            self._windows.clear()


def format_slo(snapshot: dict[str, Any]) -> str:
    """Human-oriented rendering of :meth:`SLOTracker.snapshot` output."""
    operations = snapshot.get("operations", {})
    if not operations:
        return "no SLO traffic recorded"
    lines = [
        f"{'operation':<24} {'target':>7} {'fast burn':>9} {'slow burn':>9} "
        f"{'budget left':>11}  state"
    ]
    for op, status in operations.items():
        state = "BREACH" if status["breaching"] else "ok"
        lines.append(
            f"{op:<24} {status['objective']['target']:>7.4f} "
            f"{status['fast']['burn_rate']:>9.2f} "
            f"{status['slow']['burn_rate']:>9.2f} "
            f"{status['budget_remaining']:>10.0%}  {state}"
        )
    return "\n".join(lines)


#: The process-wide tracker the SOAP server records into; objectives are
#: taken from ``REPRO_SLO`` when set.
def _tracker_from_env() -> SLOTracker:
    import os

    spec = os.environ.get("REPRO_SLO")
    objectives = SLObjective.parse_spec(spec) if spec else None
    return SLOTracker(objectives)


SLO = _tracker_from_env()
