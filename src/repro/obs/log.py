"""Structured logging: stdlib ``logging`` with a JSON formatter.

Every record formats to one JSON object per line, automatically stamped
with the current request id (from :mod:`repro.obs.trace` contextvars) so
log lines correlate with spans and metrics without threading ids through
call signatures.

Usage::

    from repro.obs import log
    logger = log.get_logger("repro.soap.access")
    logger.debug("request", extra={"operation": "query", "status": 200})

Handlers are opt-in: :func:`configure` attaches one JSON handler to the
``repro`` logger hierarchy (idempotent).  Without it, records propagate
to whatever the application configured — the library never hijacks the
root logger.
"""

from __future__ import annotations

import datetime as _dt
import json
import logging
from typing import Any, Optional

from repro.obs import trace

# logging.LogRecord attributes that are bookkeeping, not user payload.
_RESERVED = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


class JsonFormatter(logging.Formatter):
    """One JSON object per record: ts, level, logger, event, request_id,
    plus any ``extra=`` fields the call site supplied."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": _dt.datetime.fromtimestamp(record.created).isoformat(
                timespec="microseconds"
            ),
            "level": record.levelname,
            "logger": record.name,
            "event": record.getMessage(),
        }
        request_id = trace.current_request_id()
        if request_id is not None:
            payload["request_id"] = request_id
        for key, value in record.__dict__.items():
            if key not in _RESERVED and not key.startswith("_"):
                payload[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy."""
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


_configured_handler: Optional[logging.Handler] = None


def configure(level: int = logging.INFO, stream: Any = None) -> logging.Handler:
    """Attach one JSON handler to the ``repro`` logger (idempotent)."""
    global _configured_handler
    root = logging.getLogger("repro")
    if _configured_handler is not None:
        root.setLevel(level)
        _configured_handler.setLevel(level)
        return _configured_handler
    handler = logging.StreamHandler(stream)
    handler.setFormatter(JsonFormatter())
    handler.setLevel(level)
    root.addHandler(handler)
    root.setLevel(level)
    _configured_handler = handler
    return handler


def unconfigure() -> None:
    """Detach the handler installed by :func:`configure` (for tests)."""
    global _configured_handler
    if _configured_handler is not None:
        logging.getLogger("repro").removeHandler(_configured_handler)
        _configured_handler = None
