"""Thread-safe, dependency-free metrics: counters, gauges, histograms.

Design goals, in order: (1) negligible hot-path cost — the engine calls
these per statement and per index probe, and the instrumentation budget
for the Figure 6 sweep is <3%; (2) no locks on the write path; (3) a
single process-wide registry whose snapshot can travel through the SOAP
``stats`` call and the ``/metrics`` endpoint.

The write path is lock-free via *per-thread shards*: each thread owns a
private cell (plain Python object attributes, mutated only by that
thread), so increments are just ``cell.value += n`` with no
synchronization.  Readers merge all shards; a read races benignly with
in-flight increments (it may miss the very last tick, never corrupt).
The only lock is taken once per (thread, metric) pair, at shard creation.

Metric *families* carry label names; ``family.labels(operation="query")``
returns (and caches) the child series for those label values.  Call
sites on hot paths should hold the child directly.

Everything can be switched off: ``set_enabled(False)`` (or the
``REPRO_OBS_DISABLED=1`` environment variable) makes timing call sites
skip their clock reads.  Counters still count — their cost is a few
hundred nanoseconds — but code may consult ``OBS.enabled`` to skip any
work it considers too expensive for a disabled run.
"""

from __future__ import annotations

import bisect
import math
import os
import threading
from typing import Any, Iterable, Optional, Sequence

# Latency bucket boundaries (seconds).  Chosen to resolve both the
# microsecond-scale engine internals (index probes, parses) and the
# millisecond-scale SOAP round trips the paper's figures measure.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.000005,
    0.00001,
    0.000025,
    0.00005,
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class _Switch:
    """Process-wide on/off flag, readable as a plain attribute."""

    __slots__ = ("enabled",)

    def __init__(self, enabled: bool) -> None:
        self.enabled = enabled


OBS = _Switch(os.environ.get("REPRO_OBS_DISABLED", "") not in ("1", "true", "yes"))


def set_enabled(flag: bool) -> None:
    """Globally enable/disable timing instrumentation."""
    OBS.enabled = bool(flag)


def enabled() -> bool:
    return OBS.enabled


# --------------------------------------------------------------------------
# Series (one labeled child of a family)
# --------------------------------------------------------------------------


class _CounterCell:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0


class Counter:
    """Monotonic counter; lock-free per-thread shards merged on read."""

    __slots__ = ("_local", "_shards", "_lock")

    def __init__(self) -> None:
        self._local = threading.local()
        self._shards: list[_CounterCell] = []
        self._lock = threading.Lock()

    def _cell(self) -> _CounterCell:
        cell = _CounterCell()
        with self._lock:
            self._shards.append(cell)
        self._local.cell = cell
        return cell

    def inc(self, n: int = 1) -> None:
        cell = getattr(self._local, "cell", None)
        if cell is None:
            cell = self._cell()
        cell.value += n

    @property
    def value(self) -> int:
        with self._lock:
            shards = list(self._shards)
        return sum(cell.value for cell in shards)

    def reset(self) -> None:
        with self._lock:
            for cell in self._shards:
                cell.value = 0

    def collect(self) -> Any:
        return self.value


class Gauge:
    """A point-in-time value (queue depth, lag).  Writes take a lock —
    gauges live off the hot path."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, n: float = 1) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: float = 1) -> None:
        with self._lock:
            self._value -= n

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        self.set(0.0)

    def collect(self) -> Any:
        return self.value


class _HistogramCell:
    __slots__ = ("counts", "count", "total")

    def __init__(self, nbuckets: int) -> None:
        self.counts = [0] * nbuckets  # per-bucket (non-cumulative)
        self.count = 0
        self.total = 0.0


class Histogram:
    """Fixed-boundary histogram; per-thread shards merged on read.

    ``boundaries[i]`` is the *inclusive* upper edge of bucket ``i``; one
    extra overflow bucket catches everything above the last edge.
    """

    __slots__ = ("boundaries", "_local", "_shards", "_lock")

    def __init__(self, boundaries: Sequence[float] = DEFAULT_BUCKETS) -> None:
        edges = tuple(float(b) for b in boundaries)
        if not edges or any(b <= a for b, a in zip(edges[1:], edges)):
            raise ValueError("histogram boundaries must be strictly increasing")
        self.boundaries = edges
        self._local = threading.local()
        self._shards: list[_HistogramCell] = []
        self._lock = threading.Lock()

    def _cell(self) -> _HistogramCell:
        cell = _HistogramCell(len(self.boundaries) + 1)
        with self._lock:
            self._shards.append(cell)
        self._local.cell = cell
        return cell

    def observe(self, value: float) -> None:
        cell = getattr(self._local, "cell", None)
        if cell is None:
            cell = self._cell()
        idx = bisect.bisect_left(self.boundaries, value)
        cell.counts[idx] += 1
        cell.count += 1
        cell.total += value

    def reset(self) -> None:
        with self._lock:
            for cell in self._shards:
                cell.counts = [0] * (len(self.boundaries) + 1)
                cell.count = 0
                cell.total = 0.0

    def collect(self) -> dict[str, Any]:
        """Merged view: {"count", "sum", "buckets": [per-bucket counts]}."""
        with self._lock:
            shards = list(self._shards)
        counts = [0] * (len(self.boundaries) + 1)
        count = 0
        total = 0.0
        for cell in shards:
            snapshot = list(cell.counts)  # racy but element-atomic
            for i, c in enumerate(snapshot):
                counts[i] += c
            count += cell.count
            total += cell.total
        return {"count": count, "sum": total, "buckets": counts}

    # -- derived statistics --------------------------------------------------

    def quantile(self, q: float, collected: Optional[dict] = None) -> float:
        """Estimate the q-quantile by linear interpolation within buckets."""
        data = collected if collected is not None else self.collect()
        count = data["count"]
        if count == 0:
            return 0.0
        target = q * count
        edges = self.boundaries
        seen = 0
        for i, c in enumerate(data["buckets"]):
            if seen + c >= target and c > 0:
                lo = edges[i - 1] if i > 0 else 0.0
                hi = edges[i] if i < len(edges) else edges[-1]
                frac = (target - seen) / c
                return lo + (hi - lo) * frac
            seen += c
        return edges[-1]

    def mean(self, collected: Optional[dict] = None) -> float:
        data = collected if collected is not None else self.collect()
        return data["sum"] / data["count"] if data["count"] else 0.0


# --------------------------------------------------------------------------
# Families and the registry
# --------------------------------------------------------------------------

_KINDS = ("counter", "gauge", "histogram")


class MetricFamily:
    """A named metric plus its labeled children."""

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(label_names)
        self.buckets = tuple(buckets)
        self._children: dict[tuple, Any] = {}
        self._lock = threading.Lock()
        if not self.label_names:
            self._default = self._make()
            self._children[()] = self._default
        else:
            self._default = None

    def _make(self) -> Any:
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(self.buckets)

    def labels(self, *values: Any, **kwargs: Any) -> Any:
        """Child series for the given label values (cached)."""
        if kwargs:
            if values:
                raise ValueError("pass label values positionally or by name, not both")
            values = tuple(kwargs[name] for name in self.label_names)
        key = tuple(str(v) for v in values)
        if len(key) != len(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}, got {key!r}"
            )
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._make()
                    self._children[key] = child
        return child

    # Unlabeled convenience: family acts as its sole child.

    def inc(self, n: int = 1) -> None:
        self._default.inc(n)

    def observe(self, value: float) -> None:
        self._default.observe(value)

    def set(self, value: float) -> None:
        self._default.set(value)

    def dec(self, n: float = 1) -> None:
        self._default.dec(n)

    @property
    def value(self) -> Any:
        return self._default.value

    def mean(self) -> float:
        return self._default.mean()

    def quantile(self, q: float) -> float:
        return self._default.quantile(q)

    def series(self) -> list[tuple[tuple, Any]]:
        with self._lock:
            return sorted(self._children.items())

    def reset(self) -> None:
        with self._lock:
            children = list(self._children.values())
        for child in children:
            child.reset()


class MetricsRegistry:
    """Singleton-per-process home for metric families."""

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        label_names: Sequence[str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}"
                )
            return family
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(name, kind, help, label_names, buckets)
                self._families[name] = family
            return family

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._family(name, "counter", help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._family(name, "gauge", help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        return self._family(name, "histogram", help, labels, buckets)

    def families(self) -> list[MetricFamily]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def reset(self) -> None:
        """Zero every series in place (cached child references stay valid)."""
        for family in self.families():
            family.reset()

    # -- export ----------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """JSON-able view of every family, for SOAP transport and reports.

        Shape::

            {name: {"type": ..., "help": ..., "labels": [...],
                    "series": [{"labels": {...}, "value": ...}  # counter/gauge
                               {"labels": {...}, "count": N, "sum": S,
                                "buckets": [...], "le": [...]}]}}  # histogram
        """
        out: dict[str, Any] = {}
        for family in self.families():
            series = []
            for key, child in family.series():
                entry: dict[str, Any] = {
                    "labels": dict(zip(family.label_names, key))
                }
                if family.kind == "histogram":
                    entry.update(child.collect())
                    entry["le"] = list(family.buckets)
                else:
                    entry["value"] = child.collect()
                series.append(entry)
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "labels": list(family.label_names),
                "series": series,
            }
        return out


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _REGISTRY


def counter(name: str, help: str = "", labels: Sequence[str] = ()) -> MetricFamily:
    return _REGISTRY.counter(name, help, labels)


def gauge(name: str, help: str = "", labels: Sequence[str] = ()) -> MetricFamily:
    return _REGISTRY.gauge(name, help, labels)


def histogram(
    name: str,
    help: str = "",
    labels: Sequence[str] = (),
    buckets: Sequence[float] = DEFAULT_BUCKETS,
) -> MetricFamily:
    return _REGISTRY.histogram(name, help, labels, buckets)


# --------------------------------------------------------------------------
# Text rendering
# --------------------------------------------------------------------------


def _fmt_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_str(names: Iterable[str], values: Iterable[str], extra: str = "") -> str:
    parts = [f'{n}="{_fmt_label_value(v)}"' for n, v in zip(names, values)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _fmt_float(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """Render every family in the Prometheus text exposition format."""
    registry = registry if registry is not None else _REGISTRY
    lines: list[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for key, child in family.series():
            labels = _label_str(family.label_names, key)
            if family.kind == "histogram":
                data = child.collect()
                cumulative = 0
                for edge, bucket_count in zip(family.buckets, data["buckets"]):
                    cumulative += bucket_count
                    le = _label_str(
                        family.label_names, key, f'le="{_fmt_float(edge)}"'
                    )
                    lines.append(f"{family.name}_bucket{le} {cumulative}")
                le = _label_str(family.label_names, key, 'le="+Inf"')
                lines.append(f"{family.name}_bucket{le} {data['count']}")
                lines.append(f"{family.name}_sum{labels} {data['sum']!r}")
                lines.append(f"{family.name}_count{labels} {data['count']}")
            else:
                value = child.collect()
                lines.append(f"{family.name}{labels} {value}")
    return "\n".join(lines) + "\n"


# --------------------------------------------------------------------------
# Snapshot pretty-printing (the `mcs stats` surface)
# --------------------------------------------------------------------------


def _series_name(name: str, labels: dict[str, str]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


def _hist_line(entry: dict[str, Any]) -> str:
    count = entry["count"]
    if not count:
        return "count=0"
    mean = entry["sum"] / count
    edges = entry["le"]
    # Recompute p50/p95 from the bucket counts.
    def quantile(q: float) -> float:
        target = q * count
        seen = 0
        for i, c in enumerate(entry["buckets"]):
            if seen + c >= target and c > 0:
                lo = edges[i - 1] if i > 0 else 0.0
                hi = edges[i] if i < len(edges) else edges[-1]
                return lo + (hi - lo) * ((target - seen) / c)
            seen += c
        return edges[-1]

    return (
        f"count={count}  mean={mean * 1e3:.3f}ms  "
        f"p50={quantile(0.5) * 1e3:.3f}ms  p95={quantile(0.95) * 1e3:.3f}ms"
    )


def format_snapshot(snapshot: dict[str, Any], include_empty: bool = False) -> str:
    """Human-readable rendering of :meth:`MetricsRegistry.snapshot`."""
    lines: list[str] = []
    for name in sorted(snapshot):
        family = snapshot[name]
        rendered: list[str] = []
        for entry in family["series"]:
            label = _series_name(name, entry.get("labels", {}))
            if family["type"] == "histogram":
                if entry["count"] or include_empty:
                    rendered.append(f"  {label}  {_hist_line(entry)}")
            else:
                if entry["value"] or include_empty:
                    value = entry["value"]
                    if isinstance(value, float) and not value.is_integer():
                        rendered.append(f"  {label} = {value:.6g}")
                    else:
                        rendered.append(f"  {label} = {int(value)}")
        if rendered:
            lines.append(f"{name} ({family['type']})")
            lines.extend(rendered)
    return "\n".join(lines)
