"""RLS client: the two-step replica lookup of the Giggle framework."""

from __future__ import annotations

from typing import Mapping, Optional

from repro.rls.lrc import LocalReplicaCatalog
from repro.rls.rli import ReplicaLocationIndex


class RLSClient:
    """Resolves logical names to physical replicas via RLI + LRCs.

    ``lrcs`` maps LRC ids to catalog handles (in a real deployment these
    would be remote endpoints; the interface is identical).
    """

    def __init__(
        self,
        rli: ReplicaLocationIndex,
        lrcs: Mapping[str, LocalReplicaCatalog],
    ) -> None:
        self.rli = rli
        self.lrcs = dict(lrcs)

    def lookup(self, logical_name: str) -> dict[str, list[str]]:
        """All replicas of a logical name: {lrc_id: [pfn, ...]}.

        Queries the RLI for candidates, then sub-queries each candidate
        LRC; Bloom false positives are filtered here because the LRC
        answers authoritatively.
        """
        out: dict[str, list[str]] = {}
        for lrc_id in self.rli.candidate_lrcs(logical_name):
            lrc = self.lrcs.get(lrc_id)
            if lrc is None:
                continue
            replicas = lrc.lookup(logical_name)
            if replicas:
                out[lrc_id] = replicas
        return out

    def best_replica(self, logical_name: str) -> Optional[str]:
        """A single physical name, or None when unreplicated (first by
        sorted order — site selection policy is the caller's job)."""
        replicas = self.lookup(logical_name)
        for lrc_id in sorted(replicas):
            if replicas[lrc_id]:
                return replicas[lrc_id][0]
        return None

    def refresh_all(self) -> None:
        """Push a fresh soft-state update from every LRC (test/demo aid)."""
        for lrc in self.lrcs.values():
            self.rli.receive_update(lrc.make_update())
