"""Replica Location Index: soft-state index over many LRCs."""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.rls.softstate import SoftStateUpdate

DEFAULT_TIMEOUT = 60.0


class ReplicaLocationIndex:
    """Answers "which LRCs *might* hold this logical name?".

    State expires ``timeout`` seconds after the last update from an LRC —
    the Giggle soft-state design: a crashed LRC silently ages out instead
    of serving stale mappings forever.
    """

    def __init__(
        self,
        rli_id: str = "rli",
        timeout: float = DEFAULT_TIMEOUT,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rli_id = rli_id
        self.timeout = timeout
        self._clock = clock
        self._lock = threading.Lock()
        # lrc_id -> (update, received_at)
        self._state: dict[str, tuple[SoftStateUpdate, float]] = {}

    def receive_update(self, update: SoftStateUpdate) -> bool:
        """Accept a soft-state update; stale sequence numbers are dropped."""
        with self._lock:
            current = self._state.get(update.lrc_id)
            if current is not None and current[0].sequence >= update.sequence:
                return False
            self._state[update.lrc_id] = (update, self._clock())
            return True

    def candidate_lrcs(self, logical_name: str) -> list[str]:
        """LRC ids that might hold the name (Bloom summaries may yield
        false positives; never false negatives within the timeout)."""
        now = self._clock()
        out: list[str] = []
        with self._lock:
            for lrc_id, (update, received) in self._state.items():
                if now - received > self.timeout:
                    continue
                if update.might_contain(logical_name):
                    out.append(lrc_id)
        return sorted(out)

    def expire(self) -> int:
        """Drop aged-out state; returns how many LRCs were expired."""
        now = self._clock()
        with self._lock:
            stale = [
                lrc_id
                for lrc_id, (_, received) in self._state.items()
                if now - received > self.timeout
            ]
            for lrc_id in stale:
                del self._state[lrc_id]
        return len(stale)

    def known_lrcs(self) -> list[str]:
        with self._lock:
            return sorted(self._state)
