"""Replica Location Service (RLS) substrate.

A faithful miniature of the Giggle framework [4] that the paper federates
the MCS with (Figure 2):

* :class:`~repro.rls.lrc.LocalReplicaCatalog` (LRC) — consistent mappings
  from logical file names to physical file names at one site;
* :class:`~repro.rls.rli.ReplicaLocationIndex` (RLI) — an index over many
  LRCs, maintained by periodic *soft-state* updates (optionally
  compressed as Bloom filters) that expire if not refreshed;
* :class:`~repro.rls.client.RLSClient` — the two-step lookup a Grid
  client performs: RLI → candidate LRCs → physical names.
"""

from repro.rls.lrc import LocalReplicaCatalog
from repro.rls.rli import ReplicaLocationIndex
from repro.rls.softstate import BloomFilter, SoftStateUpdate
from repro.rls.client import RLSClient

__all__ = [
    "LocalReplicaCatalog",
    "ReplicaLocationIndex",
    "BloomFilter",
    "SoftStateUpdate",
    "RLSClient",
]
