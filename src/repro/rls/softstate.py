"""Soft-state update payloads for LRC → RLI propagation.

Giggle [4] sends either full name lists or Bloom-filter summaries; the
RLI treats both as soft state that expires unless refreshed.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Iterable, Optional


class BloomFilter:
    """A standard k-hash Bloom filter over logical names."""

    def __init__(self, capacity: int, error_rate: float = 0.01) -> None:
        if capacity < 1:
            capacity = 1
        if not 0 < error_rate < 1:
            raise ValueError("error_rate must be in (0, 1)")
        self.capacity = capacity
        self.error_rate = error_rate
        bits = int(-capacity * math.log(error_rate) / (math.log(2) ** 2))
        self.num_bits = max(8, bits)
        self.num_hashes = max(1, round(self.num_bits / capacity * math.log(2)))
        self._bits = bytearray((self.num_bits + 7) // 8)
        self.count = 0

    def _positions(self, item: str) -> Iterable[int]:
        digest = hashlib.sha256(item.encode()).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:16], "big") | 1
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % self.num_bits

    def add(self, item: str) -> None:
        for pos in self._positions(item):
            self._bits[pos // 8] |= 1 << (pos % 8)
        self.count += 1

    def __contains__(self, item: str) -> bool:
        return all(
            self._bits[pos // 8] & (1 << (pos % 8)) for pos in self._positions(item)
        )

    def update(self, items: Iterable[str]) -> None:
        for item in items:
            self.add(item)

    @property
    def saturation(self) -> float:
        """Fraction of bits set (diagnostic: >0.5 means degraded accuracy)."""
        set_bits = sum(bin(b).count("1") for b in self._bits)
        return set_bits / self.num_bits

    def to_bytes(self) -> bytes:
        return bytes(self._bits)

    @classmethod
    def from_items(cls, items: list[str], error_rate: float = 0.01) -> "BloomFilter":
        bloom = cls(len(items) or 1, error_rate)
        bloom.update(items)
        return bloom


@dataclass
class SoftStateUpdate:
    """One LRC → RLI update: either a full name list or a Bloom summary."""

    lrc_id: str
    sequence: int
    full_list: Optional[list[str]] = None
    bloom: Optional[BloomFilter] = None

    def __post_init__(self) -> None:
        if (self.full_list is None) == (self.bloom is None):
            raise ValueError("exactly one of full_list / bloom must be given")

    def might_contain(self, logical_name: str) -> bool:
        if self.full_list is not None:
            return logical_name in self._as_set()
        assert self.bloom is not None
        return logical_name in self.bloom

    def _as_set(self) -> set[str]:
        cached = getattr(self, "_set_cache", None)
        if cached is None:
            cached = set(self.full_list or ())
            object.__setattr__(self, "_set_cache", cached)
        return cached

    @property
    def payload_size(self) -> int:
        """Approximate wire size in bytes (for the compression trade-off)."""
        if self.full_list is not None:
            return sum(len(n) + 1 for n in self.full_list)
        assert self.bloom is not None
        return len(self.bloom.to_bytes())
