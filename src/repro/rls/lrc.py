"""Local Replica Catalog: consistent LFN → PFN mappings at one site."""

from __future__ import annotations

import threading
from typing import Iterable, Optional

from repro.rls.softstate import BloomFilter, SoftStateUpdate


class LocalReplicaCatalog:
    """Mappings from logical file names to physical replicas at one site.

    Thread-safe; intended to be registered with one or more
    :class:`~repro.rls.rli.ReplicaLocationIndex` instances which it feeds
    with periodic soft-state updates.
    """

    def __init__(self, lrc_id: str, compression: bool = False) -> None:
        self.lrc_id = lrc_id
        self.compression = compression
        self._mappings: dict[str, set[str]] = {}
        self._lock = threading.Lock()
        self._sequence = 0

    # -- mutation ----------------------------------------------------------

    def add_mapping(self, logical_name: str, physical_name: str) -> None:
        with self._lock:
            self._mappings.setdefault(logical_name, set()).add(physical_name)

    def add_mappings(self, pairs: Iterable[tuple[str, str]]) -> None:
        with self._lock:
            for logical_name, physical_name in pairs:
                self._mappings.setdefault(logical_name, set()).add(physical_name)

    def remove_mapping(self, logical_name: str, physical_name: str) -> bool:
        with self._lock:
            replicas = self._mappings.get(logical_name)
            if replicas is None or physical_name not in replicas:
                return False
            replicas.discard(physical_name)
            if not replicas:
                del self._mappings[logical_name]
            return True

    def remove_logical(self, logical_name: str) -> bool:
        with self._lock:
            return self._mappings.pop(logical_name, None) is not None

    # -- lookup --------------------------------------------------------------

    def lookup(self, logical_name: str) -> list[str]:
        with self._lock:
            return sorted(self._mappings.get(logical_name, ()))

    def has(self, logical_name: str) -> bool:
        with self._lock:
            return logical_name in self._mappings

    def logical_names(self) -> list[str]:
        with self._lock:
            return sorted(self._mappings)

    def __len__(self) -> int:
        with self._lock:
            return len(self._mappings)

    # -- soft state -------------------------------------------------------------

    def make_update(self) -> SoftStateUpdate:
        """Build the next soft-state update for an RLI."""
        with self._lock:
            names = list(self._mappings)
            self._sequence += 1
            sequence = self._sequence
        if self.compression:
            return SoftStateUpdate(
                self.lrc_id, sequence, bloom=BloomFilter.from_items(names)
            )
        return SoftStateUpdate(self.lrc_id, sequence, full_list=names)
